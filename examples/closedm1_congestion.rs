//! Congestion scenario (the paper's Figure 8 motivation): a ClosedM1
//! design pushed to high utilization develops routing hotspots; the
//! vertical-M1-aware optimizer relieves them by converting upper-layer
//! routes into free direct vertical M1 routes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example closedm1_congestion
//! ```

use vm1_core::{Vm1Config, Vm1Optimizer};
use vm1_flow::{build_testcase, measure, FlowConfig};
use vm1_netlist::generator::DesignProfile;
use vm1_tech::CellArch;

fn main() {
    println!("util    #DRV orig   #DRV opt    #dM1 orig   #dM1 opt");
    for util in [0.78, 0.82] {
        let flow = FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1)
            .with_scale(0.025)
            .with_utilization(util)
            .with_seed(3);
        let mut tc = build_testcase(&flow);
        let cfg = Vm1Config::closedm1();

        let (init, _) = measure(&tc, &cfg);
        let _ = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
        let (fin, _) = measure(&tc, &cfg);

        println!(
            "{:>4.0}% {:>10} {:>10} {:>11} {:>10}",
            util * 100.0,
            init.drvs,
            fin.drvs,
            init.dm1,
            fin.dm1
        );
    }
    println!();
    println!("Direct vertical M1 routes are 'free' routing resource for ClosedM1: more dM1");
    println!("means fewer M2+ detours, which is what relieves the congestion hotspots.");
}
