//! Quickstart: build a small ClosedM1 design, optimize it for direct
//! vertical M1 routing, and print the before/after metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vm1_core::{ParamSet, Vm1Config};
use vm1_flow::{build_testcase, optimize_and_measure, FlowConfig};
use vm1_netlist::generator::DesignProfile;
use vm1_tech::CellArch;

fn main() {
    // 1. Build a testcase: synthetic aes-like netlist on the ClosedM1
    //    7.5-track library, placed and timing-calibrated.
    let flow = FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1)
        .with_scale(0.03)
        .with_seed(1);
    let mut tc = build_testcase(&flow);
    println!(
        "design {}: {} instances, {} nets, utilization {:.0}%",
        tc.design.name(),
        tc.design.num_insts(),
        tc.design.num_nets(),
        tc.design.utilization() * 100.0
    );

    // 2. Configure the optimizer with the paper's preferred settings
    //    (α = 1200, square windows, perturb-then-flip schedule).
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(4.0, 4, 1)]);

    // 3. Measure → optimize → re-route → measure.
    let row = optimize_and_measure(&mut tc, &cfg);

    println!();
    println!("                         Init        Final");
    println!(
        "#dM1                {:>9}    {:>9}  ({:.1}x)",
        row.init.dm1,
        row.fin.dm1,
        row.dm1_ratio()
    );
    println!(
        "alignable pairs     {:>9}    {:>9}",
        row.init.alignments, row.fin.alignments
    );
    println!(
        "M1 WL (um)          {:>9.1}    {:>9.1}",
        row.init.m1_wl.to_um(),
        row.fin.m1_wl.to_um()
    );
    println!(
        "#via12              {:>9}    {:>9}  ({:+.1}%)",
        row.init.via12,
        row.fin.via12,
        row.via12_delta_pct()
    );
    println!(
        "HPWL (um)           {:>9.1}    {:>9.1}  ({:+.1}%)",
        row.init.hpwl.to_um(),
        row.fin.hpwl.to_um(),
        row.hpwl_delta_pct()
    );
    println!(
        "routed WL (um)      {:>9.1}    {:>9.1}  ({:+.1}%)",
        row.init.rwl.to_um(),
        row.fin.rwl.to_um(),
        row.rwl_delta_pct()
    );
    println!(
        "WNS (ns)            {:>9.3}    {:>9.3}",
        row.init.wns_ns, row.fin.wns_ns
    );
    println!(
        "power (mW)          {:>9.3}    {:>9.3}",
        row.init.power_mw, row.fin.power_mw
    );
    println!("optimizer runtime   {:>9} ms", row.runtime_ms);
}
