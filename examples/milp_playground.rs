//! Peek inside the MILP: build the paper's formulation for one window of
//! a real design, print its size, solve it with both the MILP
//! branch-and-bound and the exact DFS solver, and verify they agree.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example milp_playground
//! ```

use vm1_core::milp::{build_milp, extract_assignment, warm_start};
use vm1_core::problem::{Overrides, WindowProblem};
use vm1_core::solver::dfs_solve;
use vm1_core::window::Window;
use vm1_core::Vm1Config;
use vm1_milp::{solve, SolveParams};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_place::{place, PlaceConfig, RowMap};
use vm1_tech::{CellArch, Library};

fn main() {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut design = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(250)
        .generate(&lib, 11);
    place(&mut design, &PlaceConfig::default(), 11);

    let cfg = Vm1Config::closedm1();
    let rowmap = RowMap::build(&design);
    let window = Window {
        site0: 0,
        row0: 0,
        w_sites: design.sites_per_row.min(40),
        h_rows: design.num_rows.min(4),
    };
    let movable: Vec<_> =
        WindowProblem::movable_in_window(&design, &rowmap, &window, &Overrides::new())
            .into_iter()
            .take(6)
            .collect();
    let prob = WindowProblem::build(
        &design,
        &rowmap,
        window,
        &movable,
        3,
        1,
        false,
        &cfg,
        &Overrides::new(),
    );

    println!("window problem:");
    println!("  movable cells : {}", prob.cells.len());
    println!(
        "  candidates    : {}",
        prob.cells.iter().map(|c| c.cands.len()).sum::<usize>()
    );
    println!("  local nets    : {}", prob.nets.len());
    println!("  d_pq pairs    : {}", prob.pairs.len());

    let (model, vars) = build_milp(&prob);
    println!("\nMILP (constraints (1)-(9) of the paper):");
    println!("  variables     : {}", model.num_vars());
    println!("  constraints   : {}", model.num_constraints());

    let cur = prob.current_assign();
    let params = SolveParams {
        warm_start: Some(warm_start(&prob, &model, &vars, &cur)),
        ..SolveParams::default()
    };
    let sol = solve(&model, &params);
    println!("  status        : {:?}", sol.status);
    println!("  B&B nodes     : {}", sol.nodes);
    println!("  objective     : {:.1}", sol.objective);

    let milp_assign = extract_assignment(&vars, &sol.values);
    let dfs_assign = dfs_solve(&prob, 1_000_000);
    println!("\ncross-check:");
    println!("  input placement objective : {:.1}", prob.eval(&cur));
    println!(
        "  MILP solution objective   : {:.1}",
        prob.eval(&milp_assign)
    );
    println!(
        "  DFS  solution objective   : {:.1}",
        prob.eval(&dfs_assign)
    );
    assert!((prob.eval(&milp_assign) - prob.eval(&dfs_assign)).abs() < 1e-6);
    println!("  MILP and DFS agree on the optimum ✓");
}
