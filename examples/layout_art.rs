//! Visual intuition: render a small ClosedM1 placement before and after
//! the vertical-M1 optimization. `#` = occupied sites, `|` = an M1 track
//! column carrying an alignable pin pair (a potential direct vertical M1
//! route). Watch the `|` columns multiply.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example layout_art
//! ```

use vm1_core::{count_alignments, ParamSet, Vm1Config, Vm1Optimizer};
use vm1_flow::viz::render_placement;
use vm1_flow::{build_testcase, FlowConfig};
use vm1_netlist::generator::DesignProfile;
use vm1_tech::CellArch;

fn main() {
    let flow = FlowConfig::new(DesignProfile::M0, CellArch::ClosedM1)
        .with_scale(0.012)
        .with_seed(2);
    let mut tc = build_testcase(&flow);
    let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 4, 1)]);

    println!(
        "before ({} alignable pairs):",
        count_alignments(&tc.design, &cfg)
    );
    println!("{}", render_placement(&tc.design, &cfg, 100));

    let _ = Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);

    println!(
        "after  ({} alignable pairs):",
        count_alignments(&tc.design, &cfg)
    );
    println!("{}", render_placement(&tc.design, &cfg, 100));
}
