//! OpenM1 scenario: pins live on M0, so a direct vertical M1 route needs
//! *horizontally overlapping* pin shapes rather than exact track
//! alignment. The optimizer maximizes both the number of overlapping
//! pairs and the total overlap length (objective (10) with the ε term).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example openm1_overlap
//! ```

use vm1_core::{overlap_stats, ParamSet, Vm1Config};
use vm1_flow::{build_testcase, optimize_and_measure, FlowConfig};
use vm1_netlist::generator::DesignProfile;
use vm1_tech::CellArch;

fn main() {
    let flow = FlowConfig::new(DesignProfile::M0, CellArch::OpenM1)
        .with_scale(0.03)
        .with_seed(5);
    let mut tc = build_testcase(&flow);

    let cfg = Vm1Config::openm1().with_sequence(vec![ParamSet::new(4.0, 4, 1)]);
    let (pairs_before, ov_before) = overlap_stats(&tc.design, &cfg);
    let row = optimize_and_measure(&mut tc, &cfg);
    let (pairs_after, ov_after) = overlap_stats(&tc.design, &cfg);

    println!("OpenM1 overlap optimization on {}:", tc.design.name());
    println!("  overlapping pin pairs : {pairs_before} -> {pairs_after}");
    println!(
        "  total overlap beyond delta : {:.2} um -> {:.2} um",
        ov_before.to_um(),
        ov_after.to_um()
    );
    println!(
        "  #dM1 (V01-V01 routes)      : {} -> {} ",
        row.init.dm1, row.fin.dm1
    );
    println!(
        "  routed WL                  : {:.1} um -> {:.1} um ({:+.1}%)",
        row.init.rwl.to_um(),
        row.fin.rwl.to_um(),
        row.rwl_delta_pct()
    );
    println!();
    println!("Compared to ClosedM1, the improvement is smaller — exactly the paper's");
    println!("ExptB-2 observation: OpenM1 dM1 routes can block access to other pins,");
    println!("so the router already behaves like a conventional flow shifted down a layer.");
}
