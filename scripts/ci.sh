#!/usr/bin/env bash
# Workspace CI gate: formatting, lints, build, tests.
#
# Everything here works fully offline — the workspace's only external
# dev-dependencies (proptest, criterion) are local shim crates, so no
# registry access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== analyze: determinism & concurrency lints (vm1-analyze) =="
# Runs before the test suite: AST-level rules D1-D5 over every library
# source, with the waived inventory pinned to scripts/analyze-baseline.txt.
cargo run -q -p vm1-analyze -- --root . --baseline scripts/analyze-baseline.txt

echo "== cargo test =="
cargo test -q

echo "== audit: source lint (wrapper over vm1-analyze) =="
scripts/lint

echo "== audit: debug-assertion test pass (placement checkpoints active) =="
# [profile.test] keeps debug assertions on, so the suite above already
# exercises every debug_checkpoint; this re-runs just the audit-layer
# crates explicitly so a checkpoint regression fails the stage by name.
cargo test -q -p vm1-milp -p vm1-place -p vm1-core audit

echo "== audit: vm1dp --audit on a generated smoke design =="
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    gen --profile m0 --scale 0.2 --seed 7 -o "$smoke_dir/smoke.def"
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    opt -i "$smoke_dir/smoke.def" -o "$smoke_dir/smoke_opt.def" --audit
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    audit -i "$smoke_dir/smoke_opt.def"

echo "== determinism: vm1dp opt bit-identical across thread counts =="
# The scheduler contract: placements and every telemetry counter are
# invariant under --threads/--sched; only stage times and the scheduler
# gauges may differ. Diff the counter sections of two runs.
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    gen --profile m0 --scale 0.05 --seed 11 -o "$smoke_dir/det.def"
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    opt -i "$smoke_dir/det.def" -o "$smoke_dir/det_t1.def" \
    --threads 1 --metrics-out "$smoke_dir/det_t1.csv" > /dev/null
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    opt -i "$smoke_dir/det.def" -o "$smoke_dir/det_t8.def" \
    --threads 8 --sched worksteal --metrics-out "$smoke_dir/det_t8.csv" > /dev/null
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    opt -i "$smoke_dir/det.def" -o "$smoke_dir/det_t8s.def" \
    --threads 8 --sched staticchunk --metrics-out "$smoke_dir/det_t8s.csv" > /dev/null
diff "$smoke_dir/det_t1.def" "$smoke_dir/det_t8.def"
diff "$smoke_dir/det_t1.def" "$smoke_dir/det_t8s.def"
# The CSV is "name,value" lines: stage times end in "_ms" and scheduler
# gauges start with "sched_" — both legitimately run-dependent; every
# remaining line is a deterministic counter.
counters() { grep -Ev '(_ms,|^sched_)' "$1"; }
diff <(counters "$smoke_dir/det_t1.csv") <(counters "$smoke_dir/det_t8.csv")
diff <(counters "$smoke_dir/det_t1.csv") <(counters "$smoke_dir/det_t8s.csv")
echo "determinism OK"

echo "== certify: proof-carrying MILP solves on a generated micro design =="
# Under --audit every branch-and-bound window solve records an
# optimality certificate that the exact-rational checker (vm1-certify)
# must accept; a rejected certificate exits 6. MILP solves are ~100x
# slower than DFS, so this stage uses a dedicated micro design rather
# than the audit smoke above.
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    gen --profile m0 --scale 0.002 --seed 7 -o "$smoke_dir/micro.def"
cargo run --release -q -p vm1-flow --bin vm1dp -- \
    opt --audit --solver milp -i "$smoke_dir/micro.def" -o "$smoke_dir/micro_opt.def"

echo "CI OK"
