#!/usr/bin/env bash
# Workspace CI gate: formatting, lints, build, tests.
#
# Everything here works fully offline — the workspace's only external
# dev-dependencies (proptest, criterion) are local shim crates, so no
# registry access is needed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q

echo "CI OK"
