use std::fmt;

/// Standard-cell architecture, per Figure 1 of the paper.
///
/// The architecture determines where cell pins live and whether inter-row
/// vertical M1 routing is possible:
///
/// | Architecture | Signal pins | Inter-row M1? | dM1 condition |
/// |---|---|---|---|
/// | [`Conv12T`](CellArch::Conv12T) | short M1 | no (M1 PG rails) | — |
/// | [`ClosedM1`](CellArch::ClosedM1) | 1-D vertical M1 @ site pitch | yes | pins x-**aligned** |
/// | [`OpenM1`](CellArch::OpenM1) | horizontal M0 | yes | pins x-**overlapped** |
///
/// # Examples
///
/// ```
/// use vm1_tech::CellArch;
///
/// assert!(CellArch::ClosedM1.allows_inter_row_m1());
/// assert!(!CellArch::Conv12T.allows_inter_row_m1());
/// assert!(CellArch::ClosedM1.requires_exact_alignment());
/// assert!(!CellArch::OpenM1.requires_exact_alignment());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CellArch {
    /// Conventional 12-track cells with M1 power/ground rails.
    Conv12T,
    /// ClosedM1 7.5-track cells: vertical M1 pins including boundary
    /// VDD/VSS pins connected to M2 rails by V12.
    #[default]
    ClosedM1,
    /// OpenM1 7.5-track cells: pins on M0, M1 essentially open.
    OpenM1,
}

impl CellArch {
    /// All architectures.
    pub const ALL: [CellArch; 3] = [CellArch::Conv12T, CellArch::ClosedM1, CellArch::OpenM1];

    /// Whether the architecture leaves M1 available for routing between
    /// placement rows at all.
    #[must_use]
    pub fn allows_inter_row_m1(self) -> bool {
        !matches!(self, CellArch::Conv12T)
    }

    /// Whether a direct vertical M1 connection requires the two pins to sit
    /// on exactly the same M1 track (ClosedM1), as opposed to merely having
    /// horizontally overlapping shapes (OpenM1).
    #[must_use]
    pub fn requires_exact_alignment(self) -> bool {
        matches!(self, CellArch::ClosedM1)
    }

    /// Number of routing tracks per placement row (the "12T"/"7.5T" in the
    /// architecture names, rounded to the usable integer count).
    #[must_use]
    pub fn tracks_per_row(self) -> i64 {
        match self {
            CellArch::Conv12T => 12,
            CellArch::ClosedM1 | CellArch::OpenM1 => 7, // 7.5T, 7 usable
        }
    }
}

impl fmt::Display for CellArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellArch::Conv12T => write!(f, "Conv12T"),
            CellArch::ClosedM1 => write!(f, "ClosedM1"),
            CellArch::OpenM1 => write!(f, "OpenM1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_row_m1_rules() {
        assert!(!CellArch::Conv12T.allows_inter_row_m1());
        assert!(CellArch::ClosedM1.allows_inter_row_m1());
        assert!(CellArch::OpenM1.allows_inter_row_m1());
    }

    #[test]
    fn alignment_requirements() {
        assert!(CellArch::ClosedM1.requires_exact_alignment());
        assert!(!CellArch::OpenM1.requires_exact_alignment());
        assert!(!CellArch::Conv12T.requires_exact_alignment());
    }

    #[test]
    fn track_counts() {
        assert_eq!(CellArch::Conv12T.tracks_per_row(), 12);
        assert_eq!(CellArch::ClosedM1.tracks_per_row(), 7);
    }

    #[test]
    fn display_names() {
        assert_eq!(CellArch::OpenM1.to_string(), "OpenM1");
    }
}
