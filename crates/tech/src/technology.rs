use crate::CellArch;
use vm1_geom::Dbu;

/// Per-layer and device electrical parameters used by the timing and power
/// models (values are representative of a 7 nm-class stack; units are
/// kΩ/nm, fF/nm, kΩ, fF, V so that R·C comes out in picoseconds).
#[derive(Clone, Debug)]
pub struct ElectricalParams {
    /// Wire resistance per nanometre, per layer (kΩ/nm).
    pub layer_res: [f64; 5],
    /// Wire capacitance per nanometre, per layer (fF/nm).
    pub layer_cap: [f64; 5],
    /// Resistance of a single via cut (kΩ).
    pub via_res: f64,
    /// Capacitance of a single via cut (fF).
    pub via_cap: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Average switching-activity factor used by the power model.
    pub activity: f64,
}

impl Default for ElectricalParams {
    fn default() -> ElectricalParams {
        ElectricalParams {
            // Lower layers are thinner and more resistive.
            layer_res: [6e-4, 4e-4, 3e-4, 2.2e-4, 1.6e-4],
            layer_cap: [2.2e-4, 2.0e-4, 1.9e-4, 1.8e-4, 1.8e-4],
            via_res: 0.02,
            via_cap: 0.05,
            vdd: 0.7,
            activity: 0.15,
        }
    }
}

/// Process/technology description shared by every tool in the flow.
///
/// The key geometric facts (paper §1.1): the placement-site width equals the
/// M1 pitch, so ClosedM1 pins of vertically aligned cells land on the same
/// M1 track; the row height is `tracks_per_row + 0.5` M2 pitches.
///
/// # Examples
///
/// ```
/// use vm1_tech::{CellArch, Technology};
/// use vm1_geom::Dbu;
///
/// let tech = Technology::for_arch(CellArch::ClosedM1);
/// assert_eq!(tech.site_width, Dbu(48));
/// assert_eq!(tech.row_height, Dbu(360)); // 7.5 tracks * 48 nm
/// assert_eq!(tech.site_to_x(10), Dbu(480));
/// assert_eq!(tech.x_to_site(Dbu(485)), 10);
/// ```
#[derive(Clone, Debug)]
pub struct Technology {
    /// Standard-cell architecture the library implements.
    pub arch: CellArch,
    /// Placement-site width == M1 routing pitch (nm).
    pub site_width: Dbu,
    /// Placement-row height (nm).
    pub row_height: Dbu,
    /// Maximum vertical span of a direct vertical M1 route, in rows
    /// (the paper's γ; "we use γ = 3").
    pub gamma: i64,
    /// Minimum required pin overlap for a dM1 in the OpenM1 architecture
    /// (the paper's δ).
    pub delta: Dbu,
    /// For OpenM1 designs, the pitch (in sites) of the vertical M1 power
    /// staples that connect M0 and M2 VDD/VSS (paper footnote 1); those M1
    /// tracks are blocked for signal routing. `None` for other
    /// architectures.
    pub pdn_staple_pitch_sites: Option<i64>,
    /// Electrical constants for timing/power estimation.
    pub electrical: ElectricalParams,
}

impl Technology {
    /// Builds the default technology for a given cell architecture.
    #[must_use]
    pub fn for_arch(arch: CellArch) -> Technology {
        let site_width = Dbu(48);
        let row_height = match arch {
            CellArch::Conv12T => Dbu(576),                     // 12 tracks
            CellArch::ClosedM1 | CellArch::OpenM1 => Dbu(360), // 7.5 tracks
        };
        Technology {
            arch,
            site_width,
            row_height,
            gamma: 3,
            delta: Dbu(24),
            pdn_staple_pitch_sites: match arch {
                CellArch::OpenM1 => Some(16),
                _ => None,
            },
            electrical: ElectricalParams::default(),
        }
    }

    /// X coordinate of the left edge of site `site` (sites count from the
    /// core-area origin).
    #[must_use]
    pub fn site_to_x(&self, site: i64) -> Dbu {
        self.site_width * site
    }

    /// Site index containing x coordinate `x` (floor division).
    #[must_use]
    pub fn x_to_site(&self, x: Dbu) -> i64 {
        x.nm().div_euclid(self.site_width.nm())
    }

    /// Y coordinate of the bottom edge of row `row`.
    #[must_use]
    pub fn row_to_y(&self, row: i64) -> Dbu {
        self.row_height * row
    }

    /// Row index containing y coordinate `y` (floor division).
    #[must_use]
    pub fn y_to_row(&self, y: Dbu) -> i64 {
        y.nm().div_euclid(self.row_height.nm())
    }

    /// Center x of the M1 track in site `site`.
    #[must_use]
    pub fn track_center_x(&self, site: i64) -> Dbu {
        self.site_to_x(site) + self.site_width / 2
    }

    /// Maximum dM1 vertical span in nanometres (γ · H).
    #[must_use]
    pub fn gamma_span(&self) -> Dbu {
        self.row_height * self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_heights_by_arch() {
        assert_eq!(Technology::for_arch(CellArch::Conv12T).row_height, Dbu(576));
        assert_eq!(
            Technology::for_arch(CellArch::ClosedM1).row_height,
            Dbu(360)
        );
        assert_eq!(Technology::for_arch(CellArch::OpenM1).row_height, Dbu(360));
    }

    #[test]
    fn site_round_trip() {
        let t = Technology::for_arch(CellArch::ClosedM1);
        for s in [0, 1, 5, 100] {
            assert_eq!(t.x_to_site(t.site_to_x(s)), s);
            assert_eq!(t.x_to_site(t.site_to_x(s) + Dbu(47)), s);
            assert_eq!(t.x_to_site(t.site_to_x(s) + Dbu(48)), s + 1);
        }
    }

    #[test]
    fn row_round_trip_negative_safe() {
        let t = Technology::for_arch(CellArch::ClosedM1);
        assert_eq!(t.y_to_row(Dbu(-1)), -1);
        assert_eq!(t.y_to_row(Dbu(0)), 0);
        assert_eq!(t.y_to_row(Dbu(359)), 0);
        assert_eq!(t.y_to_row(Dbu(360)), 1);
    }

    #[test]
    fn gamma_span_is_three_rows_by_default() {
        let t = Technology::for_arch(CellArch::ClosedM1);
        assert_eq!(t.gamma_span(), Dbu(1080));
    }

    #[test]
    fn track_centers_are_on_site_pitch() {
        let t = Technology::for_arch(CellArch::OpenM1);
        assert_eq!(t.track_center_x(0), Dbu(24));
        assert_eq!(t.track_center_x(3) - t.track_center_x(2), t.site_width);
    }
}
