use std::fmt;

/// Preferred routing direction of a metal layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerDir {
    /// Wires run left–right.
    Horizontal,
    /// Wires run bottom–top.
    Vertical,
}

/// Metal layers of the simplified sub-10nm back-end stack.
///
/// M0 is the complementary layer *below* M1 used for in-cell routing and,
/// in the OpenM1 architecture, for the cell pins themselves (paper §1.1).
/// Directions alternate starting from horizontal M0, so M1 is the vertical
/// layer whose direct (single-segment) use the paper's optimization
/// maximizes.
///
/// # Examples
///
/// ```
/// use vm1_tech::{Layer, LayerDir};
///
/// assert_eq!(Layer::M1.dir(), LayerDir::Vertical);
/// assert_eq!(Layer::M2.dir(), LayerDir::Horizontal);
/// assert_eq!(Layer::M1.above(), Some(Layer::M2));
/// assert_eq!(Layer::M0.below(), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Local interconnect below M1 (horizontal).
    M0,
    /// First mask metal (vertical) — the layer of interest.
    M1,
    /// Second metal (horizontal).
    M2,
    /// Third metal (vertical).
    M3,
    /// Fourth metal (horizontal).
    M4,
}

impl Layer {
    /// All layers, bottom-up.
    pub const ALL: [Layer; 5] = [Layer::M0, Layer::M1, Layer::M2, Layer::M3, Layer::M4];

    /// Number of layers in the stack.
    pub const COUNT: usize = 5;

    /// Index of the layer (0 for M0 … 4 for M4).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Layer from its index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= Layer::COUNT`.
    #[must_use]
    pub fn from_index(idx: usize) -> Layer {
        Layer::ALL[idx]
    }

    /// Preferred routing direction.
    #[must_use]
    pub fn dir(self) -> LayerDir {
        if self.index().is_multiple_of(2) {
            LayerDir::Horizontal
        } else {
            LayerDir::Vertical
        }
    }

    /// Next layer up, if any.
    #[must_use]
    pub fn above(self) -> Option<Layer> {
        Layer::ALL.get(self.index() + 1).copied()
    }

    /// Next layer down, if any.
    #[must_use]
    pub fn below(self) -> Option<Layer> {
        self.index().checked_sub(1).map(Layer::from_index)
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_alternates() {
        assert_eq!(Layer::M0.dir(), LayerDir::Horizontal);
        assert_eq!(Layer::M1.dir(), LayerDir::Vertical);
        assert_eq!(Layer::M2.dir(), LayerDir::Horizontal);
        assert_eq!(Layer::M3.dir(), LayerDir::Vertical);
        assert_eq!(Layer::M4.dir(), LayerDir::Horizontal);
    }

    #[test]
    fn stack_navigation() {
        assert_eq!(Layer::M0.above(), Some(Layer::M1));
        assert_eq!(Layer::M4.above(), None);
        assert_eq!(Layer::M0.below(), None);
        assert_eq!(Layer::M3.below(), Some(Layer::M2));
    }

    #[test]
    fn index_round_trips() {
        for l in Layer::ALL {
            assert_eq!(Layer::from_index(l.index()), l);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Layer::M1.to_string(), "M1");
        assert_eq!(Layer::M4.to_string(), "M4");
    }
}
