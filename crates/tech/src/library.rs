use crate::{
    CellArch, CellTiming, Function, Layer, MacroCell, MacroPin, PinDir, PinShape, Technology,
};
use vm1_geom::{Point, Rect};

/// A standard-cell library: a [`Technology`] plus the set of
/// [`MacroCell`]s generated for one [`CellArch`].
///
/// # Examples
///
/// ```
/// use vm1_tech::{CellArch, Library};
///
/// let lib = Library::synthetic_7nm(CellArch::OpenM1);
/// assert!(lib.cells().len() >= 12);
/// let dff = lib.cell_by_name("DFF_X1").unwrap();
/// assert!(dff.function.is_sequential());
/// ```
#[derive(Clone, Debug)]
pub struct Library {
    tech: Technology,
    cells: Vec<MacroCell>,
}

/// `(function, drive, width_sites)` for every generated cell.
const CELL_SPECS: &[(Function, u8, i64)] = &[
    (Function::Inv, 1, 4),
    (Function::Inv, 2, 5),
    (Function::Buf, 1, 5),
    (Function::Buf, 2, 6),
    (Function::Nand2, 1, 5),
    (Function::Nor2, 1, 5),
    (Function::And2, 1, 6),
    (Function::Or2, 1, 6),
    (Function::Aoi21, 1, 6),
    (Function::Oai21, 1, 6),
    (Function::Xor2, 1, 7),
    (Function::Xnor2, 1, 7),
    (Function::Mux2, 1, 7),
    (Function::Dff, 1, 10),
];

impl Library {
    /// Generates the synthetic 7 nm-class library for `arch`.
    ///
    /// The generated cells reproduce the architecture properties of the
    /// paper's Figure 1; see the crate docs for the mapping.
    #[must_use]
    pub fn synthetic_7nm(arch: CellArch) -> Library {
        let tech = Technology::for_arch(arch);
        let cells = CELL_SPECS
            .iter()
            .map(|&(function, drive, width_sites)| build_cell(&tech, function, drive, width_sites))
            .collect();
        Library { tech, cells }
    }

    /// The library's technology.
    #[must_use]
    pub fn tech(&self) -> &Technology {
        &self.tech
    }

    /// The cell architecture of the library.
    #[must_use]
    pub fn arch(&self) -> CellArch {
        self.tech.arch
    }

    /// All cells.
    #[must_use]
    pub fn cells(&self) -> &[MacroCell] {
        &self.cells
    }

    /// Looks up a cell by name.
    #[must_use]
    pub fn cell_by_name(&self, name: &str) -> Option<&MacroCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Index of a cell by name.
    #[must_use]
    pub fn cell_index(&self, name: &str) -> Option<usize> {
        self.cells.iter().position(|c| c.name == name)
    }

    /// Cell at `index`.
    #[must_use]
    pub fn cell(&self, index: usize) -> &MacroCell {
        &self.cells[index]
    }

    /// Indices of combinational cells with exactly `n` signal inputs.
    #[must_use]
    pub fn combinational_with_inputs(&self, n: usize) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.function.is_sequential() && c.function.num_inputs() == n)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of sequential cells.
    #[must_use]
    pub fn sequential(&self) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.function.is_sequential())
            .map(|(i, _)| i)
            .collect()
    }
}

fn timing_for(function: Function, drive: u8, width_sites: i64) -> CellTiming {
    let (res, intrinsic) = match function {
        Function::Inv => (6.0, 4.0),
        Function::Buf => (5.0, 7.0),
        Function::Nand2 => (7.0, 6.0),
        Function::Nor2 => (7.0, 7.0),
        Function::And2 => (7.5, 8.0),
        Function::Or2 => (7.5, 8.0),
        Function::Aoi21 => (8.0, 9.0),
        Function::Oai21 => (8.0, 9.0),
        Function::Xor2 => (8.5, 12.0),
        Function::Xnor2 => (8.5, 12.0),
        Function::Mux2 => (8.0, 11.0),
        Function::Dff => (6.0, 25.0),
    };
    let scale = match drive {
        1 => 1.0,
        2 => 1.7,
        d => 1.0 + 0.7 * f64::from(d - 1),
    };
    CellTiming {
        drive_res: res / scale,
        intrinsic_ps: intrinsic * (1.0 - 0.1 * (scale - 1.0)).max(0.6),
        leakage_nw: width_sites as f64 * 1.5 * scale,
        internal_fj: width_sites as f64 * 0.4 * scale,
        setup_ps: if function.is_sequential() { 15.0 } else { 0.0 },
    }
}

fn cell_name(function: Function, drive: u8) -> String {
    format!("{function}_X{drive}")
}

/// Vertical M1 pin bar centred in site column `col` of the cell.
fn m1_pin_rect(tech: &Technology, col: i64, full_height: bool) -> Rect {
    let sw = tech.site_width.nm();
    let x0 = col * sw + sw / 2 - 6;
    let x1 = col * sw + sw / 2 + 6;
    let (y0, y1) = if full_height {
        (0, tech.row_height.nm())
    } else {
        (60, tech.row_height.nm() - 60)
    };
    Rect::from_nm(x0, y0, x1, y1)
}

/// Horizontal M0 pin segment spanning site columns `[c0, c1)`.
fn m0_pin_rect(tech: &Technology, c0: i64, c1: i64, band: i64) -> Rect {
    let sw = tech.site_width.nm();
    let x0 = c0 * sw + 8;
    let x1 = c1 * sw - 8;
    let y0 = 100 + band * 56;
    Rect::from_nm(x0, y0, x1, y0 + 14)
}

fn build_cell(tech: &Technology, function: Function, drive: u8, width_sites: i64) -> MacroCell {
    let width = tech.site_width * width_sites;
    let height = tech.row_height;
    let base_cap = 0.6
        * match drive {
            1 => 1.0,
            2 => 1.4,
            d => 1.0 + 0.4 * f64::from(d - 1),
        };

    let inputs = function.input_names();
    let out = function.output_name();
    let mut pins: Vec<MacroPin> = Vec::new();
    let mut m1_blockages: Vec<Rect> = Vec::new();

    match tech.arch {
        CellArch::ClosedM1 => {
            // Boundary VDD/VSS vertical M1 pins (full height, site columns
            // 0 and width-1), connected to M2 rails via V12 (paper Fig. 1b).
            pins.push(power_pin("VDD", Layer::M1, m1_pin_rect(tech, 0, true)));
            pins.push(power_pin(
                "VSS",
                Layer::M1,
                m1_pin_rect(tech, width_sites - 1, true),
            ));
            // Inputs occupy interior columns from the left; output sits at
            // the right interior column.
            for (i, name) in inputs.iter().enumerate() {
                let col = 1 + i as i64;
                pins.push(signal_pin(
                    name,
                    PinDir::In,
                    Layer::M1,
                    m1_pin_rect(tech, col, false),
                    pin_cap(name, base_cap),
                ));
            }
            pins.push(signal_pin(
                out,
                PinDir::Out,
                Layer::M1,
                m1_pin_rect(tech, width_sites - 2, false),
                0.0,
            ));
        }
        CellArch::OpenM1 => {
            // Pins are horizontal M0 segments (paper Fig. 1c); no M1 power
            // pins — the PDN staples are modeled at the technology level.
            for (i, name) in inputs.iter().enumerate() {
                let c0 = i as i64;
                let rect = m0_pin_rect(tech, c0, c0 + 2, (i % 2) as i64);
                pins.push(signal_pin(
                    name,
                    PinDir::In,
                    Layer::M0,
                    rect,
                    pin_cap(name, base_cap),
                ));
            }
            let rect = m0_pin_rect(tech, width_sites - 3, width_sites - 1, 2);
            pins.push(signal_pin(out, PinDir::Out, Layer::M0, rect, 0.0));
            // Complex cells carry an internal M1 strap like the ZN
            // connection in Fig. 1(c); it blocks one M1 track.
            if matches!(
                function,
                Function::Xor2 | Function::Xnor2 | Function::Mux2 | Function::Dff
            ) {
                m1_blockages.push(m1_pin_rect(tech, width_sites / 2, false));
            }
        }
        CellArch::Conv12T => {
            // Signal pins on M1, horizontal M1 PG rails across the full cell
            // width at top and bottom (paper Fig. 1a) — these block every
            // vertical M1 track through the row.
            for (i, name) in inputs.iter().enumerate() {
                let col = 1 + i as i64;
                pins.push(signal_pin(
                    name,
                    PinDir::In,
                    Layer::M1,
                    m1_pin_rect(tech, col, false),
                    pin_cap(name, base_cap),
                ));
            }
            pins.push(signal_pin(
                out,
                PinDir::Out,
                Layer::M1,
                m1_pin_rect(tech, width_sites - 2, false),
                0.0,
            ));
            let h = tech.row_height.nm();
            m1_blockages.push(Rect::from_nm(0, 0, width.nm(), 30));
            m1_blockages.push(Rect::from_nm(0, h - 30, width.nm(), h));
        }
    }

    MacroCell {
        name: cell_name(function, drive),
        function,
        drive,
        width_sites,
        width,
        height,
        pins,
        m1_blockages,
        timing: timing_for(function, drive, width_sites),
    }
}

fn pin_cap(name: &str, base: f64) -> f64 {
    if name == "CK" {
        base * 0.7
    } else {
        base
    }
}

fn signal_pin(name: &str, dir: PinDir, layer: Layer, rect: Rect, cap_ff: f64) -> MacroPin {
    MacroPin {
        name: name.to_owned(),
        dir,
        shape: PinShape { layer, rect },
        cap_ff,
    }
}

fn power_pin(name: &str, layer: Layer, rect: Rect) -> MacroPin {
    MacroPin {
        name: name.to_owned(),
        dir: PinDir::Power,
        shape: PinShape { layer, rect },
        cap_ff: 0.0,
    }
}

// Quiet the unused import when building without tests.
const _: fn() -> Point = || Point::ORIGIN;

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;

    #[test]
    fn every_arch_builds_full_library() {
        for arch in CellArch::ALL {
            let lib = Library::synthetic_7nm(arch);
            assert_eq!(lib.cells().len(), CELL_SPECS.len());
            assert_eq!(lib.arch(), arch);
            for cell in lib.cells() {
                assert!(cell.width_sites >= 4);
                assert_eq!(cell.width, lib.tech().site_width * cell.width_sites);
                assert_eq!(cell.height, lib.tech().row_height);
                // One output pin, the right number of inputs.
                assert_eq!(cell.pins.iter().filter(|p| p.dir == PinDir::Out).count(), 1);
                assert_eq!(
                    cell.pins.iter().filter(|p| p.dir == PinDir::In).count(),
                    cell.function.num_inputs()
                );
            }
        }
    }

    #[test]
    fn closedm1_pins_are_vertical_m1_on_site_pitch() {
        // Reproduces the Figure 1(b) properties.
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let tech = lib.tech();
        for cell in lib.cells() {
            for pin in cell.signal_pins() {
                assert_eq!(pin.shape.layer, Layer::M1);
                let r = pin.shape.rect;
                assert!(r.width() < r.height(), "1-D vertical shape");
                // Pin centre sits on a track centre (site pitch).
                let cx = pin.x_center(Orient::North, cell.width);
                let col = tech.x_to_site(cx);
                assert_eq!(cx, tech.track_center_x(col));
            }
            // Boundary power pins exist and sit at columns 0 and w-1.
            let vdd = cell.pin("VDD").unwrap();
            let vss = cell.pin("VSS").unwrap();
            assert_eq!(vdd.dir, PinDir::Power);
            assert_eq!(tech.x_to_site(vdd.x_center(Orient::North, cell.width)), 0);
            assert_eq!(
                tech.x_to_site(vss.x_center(Orient::North, cell.width)),
                cell.width_sites - 1
            );
        }
    }

    #[test]
    fn openm1_pins_are_horizontal_m0() {
        // Reproduces the Figure 1(c) properties.
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        for cell in lib.cells() {
            for pin in cell.signal_pins() {
                assert_eq!(pin.shape.layer, Layer::M0);
                let r = pin.shape.rect;
                assert!(r.width() > r.height(), "horizontal M0 segment");
            }
            // No M1 power pins.
            assert!(cell.pin("VDD").is_none());
        }
        // PDN staples are declared at technology level.
        assert_eq!(lib.tech().pdn_staple_pitch_sites, Some(16));
    }

    #[test]
    fn conv12t_blocks_every_m1_track() {
        // Reproduces the Figure 1(a) property: M1 PG rails prevent inter-row
        // vertical M1 everywhere.
        let lib = Library::synthetic_7nm(CellArch::Conv12T);
        let sw = lib.tech().site_width;
        for cell in lib.cells() {
            let blocked = cell.m1_blocked_cols(Orient::North, sw);
            let all: Vec<i64> = (0..cell.width_sites).collect();
            assert_eq!(blocked, all, "{} must block all cols", cell.name);
        }
    }

    #[test]
    fn closedm1_leaves_some_tracks_open() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let sw = lib.tech().site_width;
        // DFF is the widest cell; it must have free interior tracks.
        let dff = lib.cell_by_name("DFF_X1").unwrap();
        let blocked = dff.m1_blocked_cols(Orient::North, sw);
        assert!(blocked.len() < dff.width_sites as usize);
    }

    #[test]
    fn openm1_input_spans_overlap_across_cells() {
        // Input A of one cell and output of another must be able to overlap
        // horizontally when placed appropriately — sanity for dM1.
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let inv = lib.cell_by_name("INV_X1").unwrap();
        let a = inv.pin("A").unwrap().x_range(Orient::North, inv.width);
        let zn = inv.pin("ZN").unwrap().x_range(Orient::North, inv.width);
        assert!(a.len() >= lib.tech().delta);
        assert!(zn.len() >= lib.tech().delta);
    }

    #[test]
    fn drive_strength_scales_timing() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let x1 = lib.cell_by_name("INV_X1").unwrap();
        let x2 = lib.cell_by_name("INV_X2").unwrap();
        assert!(x2.timing.drive_res < x1.timing.drive_res);
        assert!(x2.timing.leakage_nw > x1.timing.leakage_nw);
        let a1 = x1.pin("A").unwrap().cap_ff;
        let a2 = x2.pin("A").unwrap().cap_ff;
        assert!(a2 > a1);
    }

    #[test]
    fn lookup_helpers() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        assert!(lib.cell_by_name("NAND2_X1").is_some());
        assert!(lib.cell_by_name("missing").is_none());
        let two_in = lib.combinational_with_inputs(2);
        assert!(two_in.len() >= 6);
        for i in two_in {
            assert_eq!(lib.cell(i).function.num_inputs(), 2);
        }
        assert_eq!(lib.sequential().len(), 1);
    }

    #[test]
    fn dff_clock_pin_has_reduced_cap() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let dff = lib.cell_by_name("DFF_X1").unwrap();
        let d = dff.pin("D").unwrap().cap_ff;
        let ck = dff.pin("CK").unwrap().cap_ff;
        assert!(ck < d);
        assert!(dff.timing.setup_ps > 0.0);
    }
}
