//! LEF-style export of the synthetic libraries.
//!
//! The paper's flow consumes LEF through OpenAccess; this module writes
//! the synthetic libraries in a compact LEF 5.7-flavoured text form so
//! the cell geometry can be inspected with standard viewers or diffed
//! across architecture variants. (Import is not needed — the libraries
//! are generated deterministically in-process.)

use crate::{Library, PinDir};
use std::fmt::Write as _;

/// Serializes the library as LEF-flavoured text.
///
/// Geometry is emitted in microns with the conventional
/// `UNITS DATABASE MICRONS 1000` header (1 DBU = 1 nm).
#[must_use]
pub fn write_lef(library: &Library) -> String {
    let tech = library.tech();
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.7 ;");
    let _ = writeln!(out, "BUSBITCHARS \"[]\" ;");
    let _ = writeln!(out, "DIVIDERCHAR \"/\" ;");
    let _ = writeln!(out, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS");
    let _ = writeln!(
        out,
        "SITE core\n  CLASS CORE ;\n  SIZE {:.3} BY {:.3} ;\nEND core",
        tech.site_width.nm() as f64 / 1000.0,
        tech.row_height.nm() as f64 / 1000.0
    );
    for cell in library.cells() {
        let _ = writeln!(out, "MACRO {}", cell.name);
        let _ = writeln!(out, "  CLASS CORE ;");
        let _ = writeln!(
            out,
            "  SIZE {:.3} BY {:.3} ;",
            cell.width.nm() as f64 / 1000.0,
            cell.height.nm() as f64 / 1000.0
        );
        let _ = writeln!(out, "  SYMMETRY X Y ;");
        let _ = writeln!(out, "  SITE core ;");
        for pin in &cell.pins {
            let dir = match pin.dir {
                PinDir::In => "INPUT",
                PinDir::Out => "OUTPUT",
                PinDir::Power => "INOUT",
            };
            let _ = writeln!(out, "  PIN {}", pin.name);
            let _ = writeln!(out, "    DIRECTION {dir} ;");
            if pin.dir == PinDir::Power {
                let use_kw = if pin.name.contains("DD") {
                    "POWER"
                } else {
                    "GROUND"
                };
                let _ = writeln!(out, "    USE {use_kw} ;");
            }
            let r = pin.shape.rect;
            let _ = writeln!(out, "    PORT");
            let _ = writeln!(out, "      LAYER {} ;", pin.shape.layer);
            let _ = writeln!(
                out,
                "        RECT {:.3} {:.3} {:.3} {:.3} ;",
                r.lo().x.nm() as f64 / 1000.0,
                r.lo().y.nm() as f64 / 1000.0,
                r.hi().x.nm() as f64 / 1000.0,
                r.hi().y.nm() as f64 / 1000.0
            );
            let _ = writeln!(out, "    END");
            let _ = writeln!(out, "  END {}", pin.name);
        }
        if !cell.m1_blockages.is_empty() {
            let _ = writeln!(out, "  OBS");
            let _ = writeln!(out, "      LAYER M1 ;");
            for blk in &cell.m1_blockages {
                let _ = writeln!(
                    out,
                    "        RECT {:.3} {:.3} {:.3} {:.3} ;",
                    blk.lo().x.nm() as f64 / 1000.0,
                    blk.lo().y.nm() as f64 / 1000.0,
                    blk.hi().x.nm() as f64 / 1000.0,
                    blk.hi().y.nm() as f64 / 1000.0
                );
            }
            let _ = writeln!(out, "  END");
        }
        let _ = writeln!(out, "END {}", cell.name);
    }
    let _ = writeln!(out, "END LIBRARY");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CellArch;

    #[test]
    fn emits_every_macro_and_pin() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let lef = write_lef(&lib);
        for cell in lib.cells() {
            assert!(lef.contains(&format!("MACRO {}", cell.name)));
            for pin in &cell.pins {
                assert!(lef.contains(&format!("PIN {}", pin.name)));
            }
        }
        assert!(lef.contains("DATABASE MICRONS 1000"));
        assert!(lef.ends_with("END LIBRARY\n"));
    }

    #[test]
    fn closedm1_power_pins_marked() {
        let lef = write_lef(&Library::synthetic_7nm(CellArch::ClosedM1));
        assert!(lef.contains("USE POWER"));
        assert!(lef.contains("USE GROUND"));
    }

    #[test]
    fn openm1_pins_on_m0_and_obstructions_present() {
        let lef = write_lef(&Library::synthetic_7nm(CellArch::OpenM1));
        assert!(lef.contains("LAYER M0"));
        assert!(lef.contains("OBS"), "internal M1 straps exported as OBS");
    }

    #[test]
    fn conv12t_exports_rail_obstructions() {
        let lef = write_lef(&Library::synthetic_7nm(CellArch::Conv12T));
        // Two rails per cell → at least 2 OBS rects.
        assert!(lef.matches("OBS").count() >= 1);
        assert!(lef.contains("SIZE 0.048 BY 0.576"), "12T site/row header");
    }

    #[test]
    fn deterministic_output() {
        let a = write_lef(&Library::synthetic_7nm(CellArch::ClosedM1));
        let b = write_lef(&Library::synthetic_7nm(CellArch::ClosedM1));
        assert_eq!(a, b);
    }
}
