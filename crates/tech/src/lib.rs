//! Technology model and synthetic standard-cell libraries for the vm1dp
//! workspace.
//!
//! The DAC 2017 paper evaluates three standard-cell architectures
//! (its Figure 1):
//!
//! * **conventional 12-track** — signal pins on M1, horizontal M1
//!   power/ground rails at the top and bottom of every cell, which block all
//!   inter-row vertical M1 routing (pin access happens on M2);
//! * **ClosedM1 7.5-track** — 1-D *vertical* M1 signal pins placed on a
//!   fixed pitch equal to the placement-site width, M1 VDD/VSS pins at the
//!   cell boundaries connected up to M2 rails, leaving the space between
//!   pins open for inter-row M1 routing;
//! * **OpenM1 7.5-track** — pins on the M0 layer (horizontal segments), M1
//!   almost completely unobstructed.
//!
//! The paper used proprietary 7 nm libraries from a technology consortium;
//! this crate generates *synthetic* libraries that reproduce exactly the
//! properties the detailed-placement optimization and the router care
//! about: pin layer/geometry per architecture, site-pitch M1 pin alignment,
//! M1 track blockage, plus simple timing and power parameters for the
//! reporting columns of the paper's Table 2.
//!
//! # Examples
//!
//! ```
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let inv = lib.cell_by_name("INV_X1").unwrap();
//! assert!(inv.width_sites >= 2);
//! // Every ClosedM1 signal pin is a vertical M1 shape.
//! for pin in inv.signal_pins() {
//!     assert_eq!(pin.shape.layer, vm1_tech::Layer::M1);
//! }
//! ```

#![warn(missing_docs)]

mod arch;
mod cell;
mod layer;
pub mod lef;
mod library;
mod technology;

pub use arch::CellArch;
pub use cell::{CellTiming, Function, MacroCell, MacroPin, PinDir, PinShape};
pub use layer::{Layer, LayerDir};
pub use library::Library;
pub use technology::{ElectricalParams, Technology};
