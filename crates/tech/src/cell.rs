use crate::Layer;
use std::fmt;
use vm1_geom::{Dbu, Interval, Orient, Rect};

/// Logical function of a standard cell, used by the netlist generator and
/// the timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Function {
    /// Inverter.
    Inv,
    /// Buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// AND-OR-invert 21.
    Aoi21,
    /// OR-AND-invert 21.
    Oai21,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// D flip-flop.
    Dff,
}

impl Function {
    /// Number of signal input pins.
    #[must_use]
    pub fn num_inputs(self) -> usize {
        match self {
            Function::Inv | Function::Buf => 1,
            Function::Nand2
            | Function::Nor2
            | Function::And2
            | Function::Or2
            | Function::Xor2
            | Function::Xnor2 => 2,
            Function::Aoi21 | Function::Oai21 | Function::Mux2 => 3,
            Function::Dff => 2, // D and CK
        }
    }

    /// Whether the cell is a sequential element.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, Function::Dff)
    }

    /// Names of the input pins, in canonical order.
    #[must_use]
    pub fn input_names(self) -> &'static [&'static str] {
        match self {
            Function::Inv | Function::Buf => &["A"],
            Function::Nand2
            | Function::Nor2
            | Function::And2
            | Function::Or2
            | Function::Xor2
            | Function::Xnor2 => &["A", "B"],
            Function::Aoi21 | Function::Oai21 => &["A", "B", "C"],
            Function::Mux2 => &["A", "B", "S"],
            Function::Dff => &["D", "CK"],
        }
    }

    /// Name of the output pin.
    #[must_use]
    pub fn output_name(self) -> &'static str {
        if self.is_sequential() {
            "Q"
        } else {
            "ZN"
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Function::Inv => "INV",
            Function::Buf => "BUF",
            Function::Nand2 => "NAND2",
            Function::Nor2 => "NOR2",
            Function::And2 => "AND2",
            Function::Or2 => "OR2",
            Function::Aoi21 => "AOI21",
            Function::Oai21 => "OAI21",
            Function::Xor2 => "XOR2",
            Function::Xnor2 => "XNOR2",
            Function::Mux2 => "MUX2",
            Function::Dff => "DFF",
        };
        write!(f, "{s}")
    }
}

/// Direction of a cell pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinDir {
    /// Signal input.
    In,
    /// Signal output.
    Out,
    /// Power/ground pin (blocks routing resources; carries no signal net).
    Power,
}

/// A single rectangular pin geometry, relative to the cell origin in the
/// un-flipped ([`Orient::North`]) orientation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PinShape {
    /// Layer the shape lives on (M1 for ClosedM1/conventional pins, M0 for
    /// OpenM1 pins).
    pub layer: Layer,
    /// Shape extent relative to the cell's lower-left corner.
    pub rect: Rect,
}

/// A pin of a [`MacroCell`].
#[derive(Clone, Debug)]
pub struct MacroPin {
    /// Pin name ("A", "ZN", "VDD", …).
    pub name: String,
    /// Signal direction.
    pub dir: PinDir,
    /// Physical shape of the pin.
    pub shape: PinShape,
    /// Input capacitance presented to the driving net (fF); zero for
    /// outputs and power pins.
    pub cap_ff: f64,
}

impl MacroPin {
    /// Cell-relative x-extent of the pin under `orient` for a cell of the
    /// given `width`.
    #[must_use]
    pub fn x_range(&self, orient: Orient, width: Dbu) -> Interval {
        let (lo, hi) = orient.apply_x_range(self.shape.rect.lo().x, self.shape.rect.hi().x, width);
        Interval::new(lo, hi)
    }

    /// Cell-relative x of the pin's access-point centre under `orient`.
    #[must_use]
    pub fn x_center(&self, orient: Orient, width: Dbu) -> Dbu {
        let r = self.x_range(orient, width);
        (r.lo() + r.hi()) / 2
    }

    /// Cell-relative y of the pin's access-point centre (flips do not move
    /// y).
    #[must_use]
    pub fn y_center(&self) -> Dbu {
        self.shape.rect.center().y
    }
}

/// Per-cell timing and power characterization (single-arc lumped model).
#[derive(Clone, Debug)]
pub struct CellTiming {
    /// Output drive resistance (kΩ).
    pub drive_res: f64,
    /// Intrinsic (unloaded) delay (ps); clk→q delay for flops.
    pub intrinsic_ps: f64,
    /// Leakage power (nW).
    pub leakage_nw: f64,
    /// Internal energy per output toggle (fJ).
    pub internal_fj: f64,
    /// Setup time for sequential cells (ps); zero otherwise.
    pub setup_ps: f64,
}

/// A standard-cell template ("macro" in LEF terminology).
#[derive(Clone, Debug)]
pub struct MacroCell {
    /// Cell name, e.g. `NAND2_X1`.
    pub name: String,
    /// Logical function.
    pub function: Function,
    /// Drive-strength index (1, 2, …).
    pub drive: u8,
    /// Width in placement sites.
    pub width_sites: i64,
    /// Width in nanometres (width_sites · site width).
    pub width: Dbu,
    /// Row height in nanometres.
    pub height: Dbu,
    /// All pins (signal + power).
    pub pins: Vec<MacroPin>,
    /// Additional M1 shapes that block routing but are not pins (e.g.
    /// internal straps in OpenM1 cells, PG rails in conventional cells).
    pub m1_blockages: Vec<Rect>,
    /// Timing/power data.
    pub timing: CellTiming,
}

impl MacroCell {
    /// Signal pins only (inputs and the output).
    pub fn signal_pins(&self) -> impl Iterator<Item = &MacroPin> {
        self.pins.iter().filter(|p| p.dir != PinDir::Power)
    }

    /// The output pin.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no output pin (never happens for generated
    /// libraries).
    #[must_use]
    pub fn output_pin(&self) -> &MacroPin {
        self.pins
            .iter()
            .find(|p| p.dir == PinDir::Out)
            .expect("cell has an output pin") // lint: allow(documented `# Panics` contract)
    }

    /// Looks up a pin by name.
    #[must_use]
    pub fn pin(&self, name: &str) -> Option<&MacroPin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Index of a signal pin by name within `pins`.
    #[must_use]
    pub fn pin_index(&self, name: &str) -> Option<usize> {
        self.pins.iter().position(|p| p.name == name)
    }

    /// Site columns (0-based, cell-relative) whose M1 track is blocked by
    /// this cell under `orient` — by M1 pins, M1 power pins, or M1
    /// blockages. The router cannot run inter-row vertical M1 through these
    /// columns, except at a pin column when connecting to that very pin.
    #[must_use]
    pub fn m1_blocked_cols(&self, orient: Orient, site_width: Dbu) -> Vec<i64> {
        let mut cols = Vec::new();
        let mut push_range = |lo: Dbu, hi: Dbu| {
            let c0 = lo.nm().div_euclid(site_width.nm());
            // hi is exclusive.
            let c1 = (hi.nm() - 1).div_euclid(site_width.nm());
            for c in c0..=c1.min(self.width_sites - 1) {
                if c >= 0 && !cols.contains(&c) {
                    cols.push(c);
                }
            }
        };
        for pin in &self.pins {
            if pin.shape.layer == Layer::M1 {
                let (lo, hi) =
                    orient.apply_x_range(pin.shape.rect.lo().x, pin.shape.rect.hi().x, self.width);
                push_range(lo, hi);
            }
        }
        for blk in &self.m1_blockages {
            let (lo, hi) = orient.apply_x_range(blk.lo().x, blk.hi().x, self.width);
            push_range(lo, hi);
        }
        cols.sort_unstable();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Point;

    fn pin(name: &str, dir: PinDir, layer: Layer, x0: i64, x1: i64) -> MacroPin {
        MacroPin {
            name: name.to_owned(),
            dir,
            shape: PinShape {
                layer,
                rect: Rect::new(Point::new(Dbu(x0), Dbu(60)), Point::new(Dbu(x1), Dbu(300))),
            },
            cap_ff: 0.6,
        }
    }

    fn test_cell() -> MacroCell {
        MacroCell {
            name: "T".into(),
            function: Function::Nand2,
            drive: 1,
            width_sites: 4,
            width: Dbu(192),
            height: Dbu(360),
            pins: vec![
                pin("A", PinDir::In, Layer::M1, 66, 78),      // col 1
                pin("B", PinDir::In, Layer::M1, 114, 126),    // col 2
                pin("ZN", PinDir::Out, Layer::M1, 162, 174),  // col 3
                pin("VDD", PinDir::Power, Layer::M1, 18, 30), // col 0
            ],
            m1_blockages: vec![],
            timing: CellTiming {
                drive_res: 7.0,
                intrinsic_ps: 6.0,
                leakage_nw: 5.0,
                internal_fj: 1.5,
                setup_ps: 0.0,
            },
        }
    }

    #[test]
    fn function_metadata() {
        assert_eq!(Function::Aoi21.num_inputs(), 3);
        assert_eq!(Function::Dff.input_names(), &["D", "CK"]);
        assert_eq!(Function::Dff.output_name(), "Q");
        assert_eq!(Function::Inv.output_name(), "ZN");
        assert!(Function::Dff.is_sequential());
        assert!(!Function::Xor2.is_sequential());
    }

    #[test]
    fn signal_pins_exclude_power() {
        let c = test_cell();
        let names: Vec<_> = c.signal_pins().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "ZN"]);
        assert_eq!(c.output_pin().name, "ZN");
    }

    #[test]
    fn pin_lookup() {
        let c = test_cell();
        assert!(c.pin("B").is_some());
        assert!(c.pin("nope").is_none());
        assert_eq!(c.pin_index("ZN"), Some(2));
    }

    #[test]
    fn pin_x_center_flips() {
        let c = test_cell();
        let a = c.pin("A").unwrap();
        assert_eq!(a.x_center(Orient::North, c.width), Dbu(72));
        // Flipped: 192 - 72 = 120.
        assert_eq!(a.x_center(Orient::FlippedNorth, c.width), Dbu(120));
        assert_eq!(a.y_center(), Dbu(180));
    }

    #[test]
    fn m1_blocked_cols_include_power_and_flip() {
        let c = test_cell();
        let sw = Dbu(48);
        assert_eq!(c.m1_blocked_cols(Orient::North, sw), vec![0, 1, 2, 3]);
        // Under flip, col k becomes width_sites-1-k, same set here (symmetric).
        assert_eq!(
            c.m1_blocked_cols(Orient::FlippedNorth, sw),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn m1_blockage_rects_block() {
        let mut c = test_cell();
        c.pins.truncate(1); // only pin A at col 1
        c.m1_blockages.push(Rect::from_nm(150, 0, 160, 360)); // col 3
        let cols = c.m1_blocked_cols(Orient::North, Dbu(48));
        assert_eq!(cols, vec![1, 3]);
    }
}
