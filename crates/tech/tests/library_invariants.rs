//! Property-style invariants of the synthetic libraries, across all
//! architectures: geometry containment, track discipline, and timing
//! sanity.

use vm1_geom::Orient;
use vm1_tech::{CellArch, Layer, Library, PinDir};

#[test]
fn pin_shapes_lie_inside_their_cells() {
    for arch in CellArch::ALL {
        let lib = Library::synthetic_7nm(arch);
        for cell in lib.cells() {
            for pin in &cell.pins {
                let r = pin.shape.rect;
                assert!(r.lo().x.nm() >= 0, "{}: {} left", cell.name, pin.name);
                assert!(r.lo().y.nm() >= 0, "{}: {} bottom", cell.name, pin.name);
                assert!(
                    r.hi().x <= cell.width,
                    "{}: {} right edge {} > width {}",
                    cell.name,
                    pin.name,
                    r.hi().x,
                    cell.width
                );
                assert!(r.hi().y <= cell.height, "{}: {} top", cell.name, pin.name);
            }
            for blk in &cell.m1_blockages {
                assert!(blk.hi().x <= cell.width, "{}: blockage", cell.name);
            }
        }
    }
}

#[test]
fn closedm1_signal_pins_use_distinct_columns() {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let tech = lib.tech();
    for cell in lib.cells() {
        let mut cols: Vec<i64> = cell
            .signal_pins()
            .map(|p| tech.x_to_site(p.x_center(Orient::North, cell.width)))
            .collect();
        cols.sort_unstable();
        let before = cols.len();
        cols.dedup();
        assert_eq!(cols.len(), before, "{}: shared pin column", cell.name);
        // And none on the boundary PG columns.
        for &c in &cols {
            assert!(c > 0 && c < cell.width_sites - 1, "{}: col {c}", cell.name);
        }
    }
}

#[test]
fn flip_maps_pins_within_cell() {
    for arch in CellArch::ALL {
        let lib = Library::synthetic_7nm(arch);
        for cell in lib.cells() {
            for pin in cell.signal_pins() {
                for orient in Orient::ALL {
                    let r = pin.x_range(orient, cell.width);
                    assert!(r.lo().nm() >= 0 && r.hi() <= cell.width);
                }
                // Flip is an involution on the centre position.
                let c0 = pin.x_center(Orient::North, cell.width);
                let c1 = pin.x_center(Orient::FlippedNorth, cell.width);
                assert_eq!(c0 + c1, cell.width, "{}: {}", cell.name, pin.name);
            }
        }
    }
}

#[test]
fn timing_parameters_are_physical() {
    for arch in CellArch::ALL {
        let lib = Library::synthetic_7nm(arch);
        for cell in lib.cells() {
            let t = &cell.timing;
            assert!(t.drive_res > 0.0, "{}", cell.name);
            assert!(t.intrinsic_ps > 0.0);
            assert!(t.leakage_nw > 0.0);
            assert!(t.internal_fj > 0.0);
            assert!(t.setup_ps >= 0.0);
            for pin in &cell.pins {
                match pin.dir {
                    PinDir::In => assert!(pin.cap_ff > 0.0, "{}:{}", cell.name, pin.name),
                    PinDir::Out | PinDir::Power => assert_eq!(pin.cap_ff, 0.0),
                }
            }
        }
    }
}

#[test]
fn architectures_share_logical_interface() {
    // Same cell set and pin names across architectures: a netlist maps to
    // any of the three libraries.
    let libs: Vec<Library> = CellArch::ALL
        .iter()
        .map(|&a| Library::synthetic_7nm(a))
        .collect();
    for (i, cell) in libs[0].cells().iter().enumerate() {
        for other in &libs[1..] {
            let peer = other.cell(i);
            assert_eq!(cell.name, peer.name);
            assert_eq!(cell.function, peer.function);
            let names: Vec<&str> = cell.signal_pins().map(|p| p.name.as_str()).collect();
            let peer_names: Vec<&str> = peer.signal_pins().map(|p| p.name.as_str()).collect();
            assert_eq!(names, peer_names, "{}", cell.name);
        }
    }
}

#[test]
fn pin_layers_match_architecture() {
    for arch in CellArch::ALL {
        let lib = Library::synthetic_7nm(arch);
        let expect = match arch {
            CellArch::OpenM1 => Layer::M0,
            _ => Layer::M1,
        };
        for cell in lib.cells() {
            for pin in cell.signal_pins() {
                assert_eq!(pin.shape.layer, expect, "{}:{}", cell.name, pin.name);
            }
        }
    }
}
