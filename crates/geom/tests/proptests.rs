//! Property-based tests of the geometric primitives.

use proptest::prelude::*;
use vm1_geom::{Dbu, Interval, Orient, Point, Rect};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-10_000i64..10_000, 0i64..5_000).prop_map(|(lo, len)| Interval::new(Dbu(lo), Dbu(lo + len)))
}

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (
        -10_000i64..10_000,
        -10_000i64..10_000,
        0i64..4_000,
        0i64..4_000,
    )
        .prop_map(|(x, y, w, h)| Rect::from_nm(x, y, x + w, y + h))
}

proptest! {
    #[test]
    fn overlap_commutes(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.overlap(b), b.overlap(a));
        prop_assert_eq!(a.overlap_len(b), b.overlap_len(a));
    }

    #[test]
    fn overlap_is_contained_in_both(a in interval_strategy(), b in interval_strategy()) {
        if let Some(o) = a.overlap(b) {
            prop_assert!(o.lo() >= a.lo() && o.hi() <= a.hi());
            prop_assert!(o.lo() >= b.lo() && o.hi() <= b.hi());
            prop_assert!(o.len() > Dbu(0));
        }
    }

    #[test]
    fn hull_contains_both(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(b);
        prop_assert!(h.lo() <= a.lo() && h.hi() >= a.hi());
        prop_assert!(h.lo() <= b.lo() && h.hi() >= b.hi());
    }

    #[test]
    fn shift_preserves_length(a in interval_strategy(), d in -5_000i64..5_000) {
        prop_assert_eq!(a.shifted(Dbu(d)).len(), a.len());
    }

    #[test]
    fn rect_intersection_symmetric(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert_eq!(a.intersects(b), b.intersects(a));
    }

    #[test]
    fn rect_intersection_within_hull(a in rect_strategy(), b in rect_strategy()) {
        let h = a.hull(b);
        if let Some(i) = a.intersection(b) {
            prop_assert!(h.lo().x <= i.lo().x && h.hi().x >= i.hi().x);
            prop_assert!(h.lo().y <= i.lo().y && h.hi().y >= i.hi().y);
            prop_assert!(i.area() > 0);
        }
    }

    #[test]
    fn manhattan_triangle_inequality(
        ax in -1000i64..1000, ay in -1000i64..1000,
        bx in -1000i64..1000, by in -1000i64..1000,
        cx in -1000i64..1000, cy in -1000i64..1000,
    ) {
        let a = Point::new(Dbu(ax), Dbu(ay));
        let b = Point::new(Dbu(bx), Dbu(by));
        let c = Point::new(Dbu(cx), Dbu(cy));
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c));
    }

    #[test]
    fn orient_apply_x_involution(off in 0i64..500, w in 500i64..1000) {
        let w = Dbu(w);
        let off = Dbu(off);
        let once = Orient::FlippedNorth.apply_x(off, w);
        prop_assert_eq!(Orient::FlippedNorth.apply_x(once, w), off);
        prop_assert_eq!(Orient::North.apply_x(off, w), off);
    }

    #[test]
    fn orient_range_preserves_length(lo in 0i64..200, len in 0i64..200, w in 500i64..1000) {
        let (a, b) = Orient::FlippedNorth.apply_x_range(Dbu(lo), Dbu(lo + len), Dbu(w));
        prop_assert_eq!(b - a, Dbu(len));
    }

    #[test]
    fn bounding_box_contains_all_points(
        pts in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 1..20)
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(Dbu(x), Dbu(y))).collect();
        let bb = Rect::bounding_box(points.iter().copied()).unwrap();
        for p in &points {
            prop_assert!(bb.lo().x <= p.x && p.x <= bb.hi().x);
            prop_assert!(bb.lo().y <= p.y && p.y <= bb.hi().y);
        }
    }
}
