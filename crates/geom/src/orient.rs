use crate::Dbu;
use std::fmt;

/// Placement orientation of a standard cell.
///
/// Row-based detailed placement uses two orientations per row parity: the
/// identity and the horizontal mirror ("flip about the y-axis"). The paper's
/// MILP includes a binary flip indicator `f_c` per cell (constraint (6));
/// flipping mirrors every pin x-offset inside the cell.
///
/// Vertical mirroring (row-parity `MX`) does not change pin x-coordinates
/// and therefore has no effect on vertical M1 alignment, so the workspace
/// models only the horizontally relevant pair.
///
/// # Examples
///
/// ```
/// use vm1_geom::{Dbu, Orient};
///
/// // A pin 10 nm from the left edge of a 48 nm-wide cell lands 38 nm from
/// // the left edge once the cell is flipped.
/// let x = Orient::FlippedNorth.apply_x(Dbu(10), Dbu(48));
/// assert_eq!(x, Dbu(38));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Orient {
    /// Identity orientation (`N` / `R0`).
    #[default]
    North,
    /// Mirrored about the y-axis (`FN` / `MY`).
    FlippedNorth,
}

impl Orient {
    /// Both orientations, in canonical order.
    pub const ALL: [Orient; 2] = [Orient::North, Orient::FlippedNorth];

    /// Whether this orientation mirrors the cell horizontally. This is the
    /// paper's binary flip indicator `f_c`.
    #[must_use]
    pub fn is_flipped(self) -> bool {
        matches!(self, Orient::FlippedNorth)
    }

    /// The opposite orientation.
    #[must_use]
    pub fn flipped(self) -> Orient {
        match self {
            Orient::North => Orient::FlippedNorth,
            Orient::FlippedNorth => Orient::North,
        }
    }

    /// Transforms a cell-relative x-offset given the cell `width`.
    ///
    /// For [`Orient::North`] the offset is unchanged; for
    /// [`Orient::FlippedNorth`] it becomes `width - offset`.
    #[must_use]
    pub fn apply_x(self, offset: Dbu, width: Dbu) -> Dbu {
        match self {
            Orient::North => offset,
            Orient::FlippedNorth => width - offset,
        }
    }

    /// Transforms a cell-relative x-interval `[lo, hi)` given the cell
    /// `width`, returning the transformed `(lo, hi)` pair (still ordered).
    #[must_use]
    pub fn apply_x_range(self, lo: Dbu, hi: Dbu, width: Dbu) -> (Dbu, Dbu) {
        match self {
            Orient::North => (lo, hi),
            Orient::FlippedNorth => (width - hi, width - lo),
        }
    }
}

impl fmt::Display for Orient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orient::North => write!(f, "N"),
            Orient::FlippedNorth => write!(f, "FN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        for o in Orient::ALL {
            assert_eq!(o.flipped().flipped(), o);
        }
        assert_ne!(Orient::North, Orient::North.flipped());
    }

    #[test]
    fn apply_x_identity_and_mirror() {
        let w = Dbu(100);
        assert_eq!(Orient::North.apply_x(Dbu(30), w), Dbu(30));
        assert_eq!(Orient::FlippedNorth.apply_x(Dbu(30), w), Dbu(70));
        // Mirroring twice restores the offset.
        let once = Orient::FlippedNorth.apply_x(Dbu(30), w);
        assert_eq!(Orient::FlippedNorth.apply_x(once, w), Dbu(30));
    }

    #[test]
    fn apply_x_range_stays_ordered() {
        let (lo, hi) = Orient::FlippedNorth.apply_x_range(Dbu(10), Dbu(30), Dbu(100));
        assert_eq!((lo, hi), (Dbu(70), Dbu(90)));
        assert!(lo <= hi);
    }

    #[test]
    fn is_flipped_matches_variant() {
        assert!(!Orient::North.is_flipped());
        assert!(Orient::FlippedNorth.is_flipped());
    }

    #[test]
    fn default_is_north() {
        assert_eq!(Orient::default(), Orient::North);
    }
}
