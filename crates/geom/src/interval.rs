use crate::Dbu;
use std::fmt;

/// A 1-D closed-open interval `[lo, hi)` in database units.
///
/// Intervals are the workhorse of the OpenM1 overlap computations: two
/// horizontal pin shapes can be connected by a direct vertical M1 segment
/// exactly when the projections of their shapes onto the x-axis overlap
/// (paper §1.1). [`Interval::overlap`] computes that projection
/// intersection.
///
/// # Examples
///
/// ```
/// use vm1_geom::{Dbu, Interval};
///
/// let pin_a = Interval::new(Dbu(0), Dbu(96));
/// let pin_b = Interval::new(Dbu(48), Dbu(144));
/// let ov = pin_a.overlap(pin_b).unwrap();
/// assert_eq!(ov, Interval::new(Dbu(48), Dbu(96)));
/// assert_eq!(ov.len(), Dbu(48));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Dbu,
    hi: Dbu,
}

impl Interval {
    /// Creates the interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`. Empty intervals (`lo == hi`) are allowed.
    #[must_use]
    pub fn new(lo: Dbu, hi: Dbu) -> Interval {
        assert!(lo <= hi, "Interval::new: lo {lo} > hi {hi}");
        Interval { lo, hi }
    }

    /// Lower (inclusive) bound.
    #[must_use]
    pub fn lo(self) -> Dbu {
        self.lo
    }

    /// Upper (exclusive) bound.
    #[must_use]
    pub fn hi(self) -> Dbu {
        self.hi
    }

    /// Length of the interval.
    #[must_use]
    pub fn len(self) -> Dbu {
        self.hi - self.lo
    }

    /// Whether the interval has zero length.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }

    /// Whether `x` lies inside `[lo, hi)`.
    #[must_use]
    pub fn contains(self, x: Dbu) -> bool {
        self.lo <= x && x < self.hi
    }

    /// The intersection with `other`, or `None` if they do not overlap
    /// with positive length.
    #[must_use]
    pub fn overlap(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Length of the overlap with `other` (zero when disjoint). This is
    /// the quantity `o_pq = b - a` of the paper's OpenM1 constraint (11),
    /// clamped at zero.
    #[must_use]
    pub fn overlap_len(self, other: Interval) -> Dbu {
        self.overlap(other).map_or(Dbu::ZERO, Interval::len)
    }

    /// Smallest interval containing both `self` and `other`.
    #[must_use]
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// The interval translated by `delta`.
    #[must_use]
    pub fn shifted(self, delta: Dbu) -> Interval {
        Interval {
            lo: self.lo + delta,
            hi: self.hi + delta,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> Interval {
        Interval::new(Dbu(lo), Dbu(hi))
    }

    #[test]
    fn basic_accessors() {
        let i = iv(2, 10);
        assert_eq!(i.lo(), Dbu(2));
        assert_eq!(i.hi(), Dbu(10));
        assert_eq!(i.len(), Dbu(8));
        assert!(!i.is_empty());
        assert!(iv(3, 3).is_empty());
    }

    #[test]
    fn contains_is_closed_open() {
        let i = iv(0, 10);
        assert!(i.contains(Dbu(0)));
        assert!(i.contains(Dbu(9)));
        assert!(!i.contains(Dbu(10)));
        assert!(!i.contains(Dbu(-1)));
    }

    #[test]
    fn overlap_cases() {
        assert_eq!(iv(0, 10).overlap(iv(5, 15)), Some(iv(5, 10)));
        assert_eq!(
            iv(0, 10).overlap(iv(10, 20)),
            None,
            "touching is not overlapping"
        );
        assert_eq!(iv(0, 10).overlap(iv(20, 30)), None);
        assert_eq!(iv(0, 10).overlap(iv(2, 8)), Some(iv(2, 8)), "containment");
        assert_eq!(iv(0, 10).overlap_len(iv(5, 15)), Dbu(5));
        assert_eq!(iv(0, 10).overlap_len(iv(12, 15)), Dbu(0));
    }

    #[test]
    fn hull_and_shift() {
        assert_eq!(iv(0, 5).hull(iv(8, 12)), iv(0, 12));
        assert_eq!(iv(0, 5).shifted(Dbu(10)), iv(10, 15));
        assert_eq!(iv(0, 5).shifted(Dbu(-3)), iv(-3, 2));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn inverted_interval_panics() {
        let _ = iv(5, 0);
    }

    #[test]
    fn overlap_is_commutative() {
        let a = iv(0, 10);
        let b = iv(4, 30);
        assert_eq!(a.overlap(b), b.overlap(a));
    }
}
