use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};

/// A layout coordinate or distance in database units (1 DBU = 1 nm).
///
/// `Dbu` is a transparent newtype over `i64` so that nanometer quantities
/// cannot silently mix with site counts, row indices, or track indices,
/// which are plain integers elsewhere in the workspace.
///
/// # Examples
///
/// ```
/// use vm1_geom::Dbu;
///
/// let site = Dbu(48);
/// assert_eq!(site * 10, Dbu(480));
/// assert_eq!(Dbu(100) - Dbu(40), Dbu(60));
/// assert_eq!(Dbu(-5).abs(), Dbu(5));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dbu(pub i64);

impl Dbu {
    /// The zero distance.
    pub const ZERO: Dbu = Dbu(0);

    /// Returns the absolute value.
    #[must_use]
    pub fn abs(self) -> Dbu {
        Dbu(self.0.abs())
    }

    /// Returns the smaller of `self` and `other`.
    #[must_use]
    pub fn min(self, other: Dbu) -> Dbu {
        Dbu(self.0.min(other.0))
    }

    /// Returns the larger of `self` and `other`.
    #[must_use]
    pub fn max(self, other: Dbu) -> Dbu {
        Dbu(self.0.max(other.0))
    }

    /// Clamps `self` into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Dbu, hi: Dbu) -> Dbu {
        assert!(lo <= hi, "Dbu::clamp: lo {lo} > hi {hi}");
        Dbu(self.0.clamp(lo.0, hi.0))
    }

    /// Converts to micrometres as `f64` (lossy, for reporting only).
    #[must_use]
    pub fn to_um(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Creates a `Dbu` from a micrometre quantity, rounding to nearest nm.
    ///
    /// Values beyond the `i64` nanometre range (including NaN and the
    /// infinities, which map to 0 and ±`i64::MAX` respectively) saturate —
    /// the standard behaviour of a float-to-int `as` cast. Use
    /// [`Dbu::try_from_um`] when out-of-range input must be rejected
    /// instead.
    #[must_use]
    pub fn from_um(um: f64) -> Dbu {
        Dbu((um * 1000.0).round() as i64)
    }

    /// Checked [`Dbu::from_um`]: `None` when the rounded nanometre value
    /// is NaN or does not fit in `i64`.
    #[must_use]
    pub fn try_from_um(um: f64) -> Option<Dbu> {
        let nm = (um * 1000.0).round();
        // i64::MAX itself is not exactly representable as f64; the nearest
        // exactly-representable bound is 2^63, which is out of range.
        if nm.is_nan() || nm < i64::MIN as f64 || nm >= i64::MAX as f64 {
            None
        } else {
            Some(Dbu(nm as i64))
        }
    }

    /// Raw `i64` value in nanometres.
    #[must_use]
    pub fn nm(self) -> i64 {
        self.0
    }
}

impl fmt::Display for Dbu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Dbu {
    type Output = Dbu;
    fn add(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 + rhs.0)
    }
}

impl AddAssign for Dbu {
    fn add_assign(&mut self, rhs: Dbu) {
        self.0 += rhs.0;
    }
}

impl Sub for Dbu {
    type Output = Dbu;
    fn sub(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 - rhs.0)
    }
}

impl SubAssign for Dbu {
    fn sub_assign(&mut self, rhs: Dbu) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dbu {
    type Output = Dbu;
    fn neg(self) -> Dbu {
        Dbu(-self.0)
    }
}

impl Mul<i64> for Dbu {
    type Output = Dbu;
    fn mul(self, rhs: i64) -> Dbu {
        Dbu(self.0 * rhs)
    }
}

impl Div<i64> for Dbu {
    type Output = Dbu;
    fn div(self, rhs: i64) -> Dbu {
        Dbu(self.0 / rhs)
    }
}

impl Div<Dbu> for Dbu {
    type Output = i64;
    fn div(self, rhs: Dbu) -> i64 {
        self.0 / rhs.0
    }
}

impl Rem<Dbu> for Dbu {
    type Output = Dbu;
    fn rem(self, rhs: Dbu) -> Dbu {
        Dbu(self.0 % rhs.0)
    }
}

impl Sum for Dbu {
    fn sum<I: Iterator<Item = Dbu>>(iter: I) -> Dbu {
        Dbu(iter.map(|d| d.0).sum())
    }
}

impl From<i64> for Dbu {
    fn from(v: i64) -> Dbu {
        Dbu(v)
    }
}

impl From<Dbu> for i64 {
    fn from(v: Dbu) -> i64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Dbu(3) + Dbu(4), Dbu(7));
        assert_eq!(Dbu(3) - Dbu(4), Dbu(-1));
        assert_eq!(-Dbu(3), Dbu(-3));
        assert_eq!(Dbu(3) * 4, Dbu(12));
        assert_eq!(Dbu(12) / 4, Dbu(3));
        assert_eq!(Dbu(13) / Dbu(4), 3);
        assert_eq!(Dbu(13) % Dbu(4), Dbu(1));
    }

    #[test]
    fn min_max_clamp_abs() {
        assert_eq!(Dbu(3).min(Dbu(4)), Dbu(3));
        assert_eq!(Dbu(3).max(Dbu(4)), Dbu(4));
        assert_eq!(Dbu(10).clamp(Dbu(0), Dbu(5)), Dbu(5));
        assert_eq!(Dbu(-10).clamp(Dbu(0), Dbu(5)), Dbu(0));
        assert_eq!(Dbu(-7).abs(), Dbu(7));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = Dbu(1).clamp(Dbu(5), Dbu(0));
    }

    #[test]
    fn um_conversion_round_trips() {
        assert_eq!(Dbu::from_um(1.5), Dbu(1500));
        assert!((Dbu(1500).to_um() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn try_from_um_accepts_in_range_and_rejects_the_rest() {
        assert_eq!(Dbu::try_from_um(1.5), Some(Dbu(1500)));
        assert_eq!(Dbu::try_from_um(-2.0), Some(Dbu(-2000)));
        assert_eq!(Dbu::try_from_um(f64::NAN), None);
        assert_eq!(Dbu::try_from_um(f64::INFINITY), None);
        assert_eq!(Dbu::try_from_um(f64::NEG_INFINITY), None);
        assert_eq!(Dbu::try_from_um(1e17), None); // 1e20 nm > i64::MAX
    }

    #[test]
    fn from_um_saturates_out_of_range() {
        assert_eq!(Dbu::from_um(f64::INFINITY), Dbu(i64::MAX));
        assert_eq!(Dbu::from_um(f64::NEG_INFINITY), Dbu(i64::MIN));
        assert_eq!(Dbu::from_um(f64::NAN), Dbu(0));
    }

    #[test]
    fn sum_of_iterator() {
        let total: Dbu = [Dbu(1), Dbu(2), Dbu(3)].into_iter().sum();
        assert_eq!(total, Dbu(6));
    }

    #[test]
    fn display_shows_raw_nm() {
        assert_eq!(Dbu(48).to_string(), "48");
    }
}
