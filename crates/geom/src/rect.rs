use crate::{Dbu, Interval, Point};
use std::fmt;

/// An axis-aligned rectangle `[lo.x, hi.x) × [lo.y, hi.y)` in database units.
///
/// Rectangles describe cell outlines, pin shapes, window extents and routing
/// blockages. The closed-open convention matches [`Interval`], so abutting
/// cells do not "overlap".
///
/// # Examples
///
/// ```
/// use vm1_geom::{Dbu, Point, Rect};
///
/// let cell = Rect::new(Point::new(Dbu(0), Dbu(0)), Point::new(Dbu(144), Dbu(360)));
/// assert_eq!(cell.width(), Dbu(144));
/// assert_eq!(cell.height(), Dbu(360));
/// assert_eq!(cell.half_perimeter(), Dbu(504));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `lo.x > hi.x` or `lo.y > hi.y`.
    #[must_use]
    pub fn new(lo: Point, hi: Point) -> Rect {
        assert!(
            lo.x <= hi.x && lo.y <= hi.y,
            "Rect::new: inverted corners {lo} / {hi}"
        );
        Rect { lo, hi }
    }

    /// Creates a rectangle from raw nanometre coordinates.
    #[must_use]
    pub fn from_nm(x_lo: i64, y_lo: i64, x_hi: i64, y_hi: i64) -> Rect {
        Rect::new(
            Point::new(Dbu(x_lo), Dbu(y_lo)),
            Point::new(Dbu(x_hi), Dbu(y_hi)),
        )
    }

    /// The degenerate rectangle containing exactly one point.
    #[must_use]
    pub fn from_point(p: Point) -> Rect {
        Rect { lo: p, hi: p }
    }

    /// Lower-left corner.
    #[must_use]
    pub fn lo(self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[must_use]
    pub fn hi(self) -> Point {
        self.hi
    }

    /// Horizontal extent as an interval.
    #[must_use]
    pub fn x_range(self) -> Interval {
        Interval::new(self.lo.x, self.hi.x)
    }

    /// Vertical extent as an interval.
    #[must_use]
    pub fn y_range(self) -> Interval {
        Interval::new(self.lo.y, self.hi.y)
    }

    /// Width of the rectangle.
    #[must_use]
    pub fn width(self) -> Dbu {
        self.hi.x - self.lo.x
    }

    /// Height of the rectangle.
    #[must_use]
    pub fn height(self) -> Dbu {
        self.hi.y - self.lo.y
    }

    /// Width plus height — the HPWL of a net whose bounding box this is.
    #[must_use]
    pub fn half_perimeter(self) -> Dbu {
        self.width() + self.height()
    }

    /// Area in nm².
    #[must_use]
    pub fn area(self) -> i64 {
        self.width().nm() * self.height().nm()
    }

    /// Geometric centre (rounded down to integer DBU).
    #[must_use]
    pub fn center(self) -> Point {
        Point::new(
            Dbu((self.lo.x.nm() + self.hi.x.nm()) / 2),
            Dbu((self.lo.y.nm() + self.hi.y.nm()) / 2),
        )
    }

    /// Whether `p` lies inside the closed-open extent.
    #[must_use]
    pub fn contains(self, p: Point) -> bool {
        self.x_range().contains(p.x) && self.y_range().contains(p.y)
    }

    /// Whether `other` overlaps `self` with positive area.
    #[must_use]
    pub fn intersects(self, other: Rect) -> bool {
        self.x_range().overlap(other.x_range()).is_some()
            && self.y_range().overlap(other.y_range()).is_some()
    }

    /// The intersection rectangle, or `None` when the overlap has zero area.
    #[must_use]
    pub fn intersection(self, other: Rect) -> Option<Rect> {
        let x = self.x_range().overlap(other.x_range())?;
        let y = self.y_range().overlap(other.y_range())?;
        Some(Rect::new(
            Point::new(x.lo(), y.lo()),
            Point::new(x.hi(), y.hi()),
        ))
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn hull(self, other: Rect) -> Rect {
        Rect {
            lo: Point::new(self.lo.x.min(other.lo.x), self.lo.y.min(other.lo.y)),
            hi: Point::new(self.hi.x.max(other.hi.x), self.hi.y.max(other.hi.y)),
        }
    }

    /// Grows the hull to also contain point `p`.
    #[must_use]
    pub fn expanded_to(self, p: Point) -> Rect {
        self.hull(Rect::from_point(p))
    }

    /// The rectangle translated by `delta`.
    #[must_use]
    pub fn shifted(self, delta: Point) -> Rect {
        Rect {
            lo: self.lo + delta,
            hi: self.hi + delta,
        }
    }

    /// Bounding box of an iterator of points. Returns `None` for an empty
    /// iterator.
    pub fn bounding_box<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        Some(it.fold(Rect::from_point(first), Rect::expanded_to))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: i64, y0: i64, x1: i64, y1: i64) -> Rect {
        Rect::from_nm(x0, y0, x1, y1)
    }

    #[test]
    fn dimensions() {
        let a = r(0, 0, 10, 20);
        assert_eq!(a.width(), Dbu(10));
        assert_eq!(a.height(), Dbu(20));
        assert_eq!(a.half_perimeter(), Dbu(30));
        assert_eq!(a.area(), 200);
        assert_eq!(a.center(), Point::new(Dbu(5), Dbu(10)));
    }

    #[test]
    fn intersection_cases() {
        let a = r(0, 0, 10, 10);
        assert!(a.intersects(r(5, 5, 15, 15)));
        assert_eq!(a.intersection(r(5, 5, 15, 15)), Some(r(5, 5, 10, 10)));
        assert!(!a.intersects(r(10, 0, 20, 10)), "abutment is not overlap");
        assert!(!a.intersects(r(0, 10, 10, 20)));
        assert_eq!(a.intersection(r(20, 20, 30, 30)), None);
    }

    #[test]
    fn hull_and_bbox() {
        let a = r(0, 0, 1, 1);
        let b = r(10, 5, 12, 6);
        assert_eq!(a.hull(b), r(0, 0, 12, 6));

        let pts = [
            Point::new(Dbu(5), Dbu(1)),
            Point::new(Dbu(-2), Dbu(7)),
            Point::new(Dbu(3), Dbu(3)),
        ];
        let bb = Rect::bounding_box(pts).unwrap();
        assert_eq!(bb, r(-2, 1, 5, 7));
        assert_eq!(bb.half_perimeter(), Dbu(13));
        assert_eq!(Rect::bounding_box(std::iter::empty()), None);
    }

    #[test]
    fn contains_and_shift() {
        let a = r(0, 0, 10, 10);
        assert!(a.contains(Point::new(Dbu(0), Dbu(0))));
        assert!(!a.contains(Point::new(Dbu(10), Dbu(5))));
        assert_eq!(a.shifted(Point::new(Dbu(5), Dbu(-5))), r(5, -5, 15, 5));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics() {
        let _ = r(10, 0, 0, 10);
    }
}
