use crate::Dbu;
use std::fmt;
use std::ops::{Add, Sub};

/// An absolute location (or displacement) in the layout, in database units.
///
/// # Examples
///
/// ```
/// use vm1_geom::{Dbu, Point};
///
/// let p = Point::new(Dbu(100), Dbu(360));
/// let q = p + Point::new(Dbu(48), Dbu(0));
/// assert_eq!(q.x, Dbu(148));
/// assert_eq!(p.manhattan_distance(q), Dbu(48));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Dbu,
    /// Vertical coordinate.
    pub y: Dbu,
}

impl Point {
    /// Creates a point from its coordinates.
    #[must_use]
    pub fn new(x: Dbu, y: Dbu) -> Point {
        Point { x, y }
    }

    /// The origin (0, 0).
    pub const ORIGIN: Point = Point {
        x: Dbu(0),
        y: Dbu(0),
    };

    /// Manhattan (L1) distance to `other` — the metric of routed wirelength.
    #[must_use]
    pub fn manhattan_distance(self, other: Point) -> Dbu {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub() {
        let p = Point::new(Dbu(1), Dbu(2));
        let q = Point::new(Dbu(10), Dbu(20));
        assert_eq!(p + q, Point::new(Dbu(11), Dbu(22)));
        assert_eq!(q - p, Point::new(Dbu(9), Dbu(18)));
    }

    #[test]
    fn manhattan() {
        let p = Point::new(Dbu(0), Dbu(0));
        let q = Point::new(Dbu(3), Dbu(-4));
        assert_eq!(p.manhattan_distance(q), Dbu(7));
        assert_eq!(q.manhattan_distance(p), Dbu(7));
        assert_eq!(p.manhattan_distance(p), Dbu(0));
    }

    #[test]
    fn origin_is_zero() {
        assert_eq!(Point::ORIGIN, Point::new(Dbu(0), Dbu(0)));
    }
}
