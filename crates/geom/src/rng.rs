//! A tiny deterministic pseudo-random number generator.
//!
//! Every stochastic component of the workspace (netlist generation, placement
//! initialization, routing tie-breaks) must be reproducible from a single
//! `u64` seed so that experiments regenerate byte-identical tables. We use
//! SplitMix64 — 64-bit state, excellent statistical quality for simulation
//! purposes, and trivially portable — instead of depending on a `rand`
//! version whose stream might change across releases.

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use vm1_geom::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// let r = a.range_usize(0, 10);
/// assert!(r < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform integer in `[lo, hi)` over `i64`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "range_i64: empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick: empty slice");
        &slice[self.range_usize(0, slice.len())]
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each design /
    /// experiment its own stream while keeping one top-level seed.
    #[must_use]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut g = SplitMix64::new(4);
        for _ in 0..1000 {
            let v = g.range_usize(3, 9);
            assert!((3..9).contains(&v));
            let w = g.range_i64(-5, 5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut g = SplitMix64::new(5);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[g.range_usize(0, 6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = SplitMix64::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut g = SplitMix64::new(9);
        let mut c1 = g.fork();
        let mut c2 = g.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut g = SplitMix64::new(1);
        let _ = g.range_usize(5, 5);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut g = SplitMix64::new(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
