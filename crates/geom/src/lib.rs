//! Geometry primitives for the vm1dp EDA workspace.
//!
//! All layout coordinates are integer database units ([`Dbu`], 1 DBU = 1 nm).
//! The crate provides the handful of geometric types every other crate in the
//! workspace builds on:
//!
//! * [`Dbu`] — newtype over `i64` nanometers,
//! * [`Point`] / [`Rect`] — axis-aligned geometry,
//! * [`Interval`] — 1-D closed-open interval with overlap arithmetic (the
//!   basis of the OpenM1 pin-overlap computations),
//! * [`Orient`] — standard-cell placement orientation (N / flipped),
//! * [`rng::SplitMix64`] — tiny deterministic PRNG used by all generators.
//!
//! # Examples
//!
//! ```
//! use vm1_geom::{Dbu, Interval, Point, Rect};
//!
//! let a = Interval::new(Dbu(0), Dbu(100));
//! let b = Interval::new(Dbu(60), Dbu(150));
//! assert_eq!(a.overlap(b).unwrap().len(), Dbu(40));
//!
//! let r = Rect::new(Point::new(Dbu(0), Dbu(0)), Point::new(Dbu(48), Dbu(360)));
//! assert_eq!(r.width(), Dbu(48));
//! ```

#![warn(missing_docs)]

mod coord;
mod interval;
mod orient;
mod point;
mod rect;
pub mod rng;

pub use coord::Dbu;
pub use interval::Interval;
pub use orient::Orient;
pub use point::Point;
pub use rect::Rect;
