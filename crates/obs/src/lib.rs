//! Observability layer for the vm1dp solver stack.
//!
//! The DAC 2017 flow is a multi-stage metaheuristic (`VM1Opt` → `DistOpt`
//! → window MILP → branch-and-bound → simplex). This crate provides the
//! measurement layer that makes its run-time behaviour visible without
//! perturbing it:
//!
//! * [`MetricsSink`] — the recording trait: monotonic counters
//!   ([`Counter`]), per-stage wall-clock timers ([`Stage`]) and an
//!   objective-trajectory recorder ([`TrajectoryPoint`]);
//! * [`Telemetry`] — the standard in-memory sink: lock-free atomic
//!   counters, atomic stage accumulators, a mutexed trajectory;
//! * [`MetricsHandle`] — a cheap, cloneable fan-out handle threaded
//!   through every solver layer. A disabled handle (the default) holds no
//!   sinks: every record call is an inlineable empty-slice check, so
//!   uninstrumented runs pay nothing;
//! * [`MetricsReport`] — an owned snapshot with JSON/CSV export (the
//!   schema is documented in the workspace DESIGN.md §"Observability").
//!
//! Counter values are *deterministic* for a fixed seed and configuration:
//! they count algorithmic events (nodes, pivots, windows, cache hits),
//! never wall-clock artefacts. Stage times are the only nondeterministic
//! quantity and are kept separate from the counters.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use vm1_obs::{Counter, MetricsHandle, Stage, Telemetry};
//!
//! let sink = Arc::new(Telemetry::new());
//! let metrics = MetricsHandle::of(sink.clone());
//! metrics.add(Counter::WindowsImproved, 3);
//! metrics.timed(Stage::WindowSolve, || { /* solve */ });
//! let report = sink.report();
//! assert_eq!(report.counter(Counter::WindowsImproved), 3);
//! assert!(report.to_json().contains("windows_improved"));
//! ```

#![warn(missing_docs)]

pub mod timer;

use crate::timer::Stopwatch;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Monotonic event counters, one per instrumented quantity of the solver
/// stack. The discriminant indexes the fixed-size counter arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Branch-and-bound nodes whose LP relaxation was solved (`vm1-milp`).
    BbNodes,
    /// Branch-and-bound nodes pruned without an LP solve (bound or
    /// infeasibility cut-off).
    BbNodesPruned,
    /// LP relaxations solved (node LPs plus rounding-heuristic LPs).
    LpSolves,
    /// Simplex pivots (basis changes and bound flips) over all LP solves.
    SimplexPivots,
    /// Variable-bound tightenings applied by the MILP root presolve.
    PresolveTightenings,
    /// Constraints proven redundant by the MILP root presolve.
    PresolveRedundantRows,
    /// MILP solves that fell back to the incumbent (no solution found).
    MilpFallbacks,
    /// Nodes explored by the exact DFS window solver.
    DfsNodes,
    /// Improvement passes executed by the greedy window solver.
    GreedyPasses,
    /// Windows visited that contained at least one movable cell.
    WindowsVisited,
    /// Windows whose solve produced at least one cell move or flip.
    WindowsImproved,
    /// Window batches handed to a window solver.
    BatchesSolved,
    /// Generic cache hits (reserved for caches other than the window
    /// batch cache; the `DistOpt` smart selection counts under
    /// [`Counter::BatchCacheHits`]).
    CacheHits,
    /// Window batches skipped by the smart-selection cache of `DistOpt`
    /// (the dedicated batch-cache counter; kept separate from
    /// [`Counter::CacheHits`] so other caches can never pollute the
    /// `batches_skipped` statistic).
    BatchCacheHits,
    /// Cells moved or flipped by committed window solutions.
    CellsChanged,
    /// `DistOpt` parallel rounds executed (= diagonal sets processed).
    DistOptRounds,
    /// `DistOpt` passes executed (perturbation and flip passes).
    DistOptPasses,
    /// Occupancy indexes built from scratch (one per `DistOpt` pass; the
    /// rounds within a pass patch the index incrementally instead).
    RowMapBuilds,
    /// Occupancy-index rows patched incrementally from committed moves
    /// (instead of rebuilding the whole index).
    RowMapRowsPatched,
    /// Inner iterations of Algorithm 1 over all parameter sets.
    Iterations,
    /// Parameter sets of the optimization sequence processed.
    ParamSets,
    /// Error-severity findings reported by the static auditors
    /// (`milp::audit` model lint, `place::verify`, `core::audit`).
    AuditErrors,
    /// Warning-severity findings reported by the static auditors.
    AuditWarnings,
    /// Big-M indicator coefficients the MILP model linter proved loose
    /// and tightened against derived variable bounds.
    AuditBigMTightened,
    /// Placement invariants checked by `place::verify` /
    /// `core::audit` checkpoint runs.
    AuditPlacementChecks,
    /// Placement invariant violations found by checkpoint runs.
    AuditPlacementViolations,
    /// Branch-and-bound solves that recorded an optimality/infeasibility
    /// certificate (`vm1_milp::solve_certified`).
    CertRecorded,
    /// Certificates accepted by the exact-arithmetic checker
    /// (`vm1-certify`).
    CertVerified,
    /// Certificates rejected by the exact-arithmetic checker.
    CertRejected,
    /// Unwaived findings reported by the `vm1-analyze` static
    /// determinism/concurrency lint pack.
    AnalyzeFindings,
    /// Findings suppressed by a reasoned waiver marker
    /// (`// analyze: nondeterministic-ok(..)` / `// lint: allow(..)`).
    AnalyzeWaived,
}

impl Counter {
    /// Every counter, in discriminant order.
    pub const ALL: [Counter; 31] = [
        Counter::BbNodes,
        Counter::BbNodesPruned,
        Counter::LpSolves,
        Counter::SimplexPivots,
        Counter::PresolveTightenings,
        Counter::PresolveRedundantRows,
        Counter::MilpFallbacks,
        Counter::DfsNodes,
        Counter::GreedyPasses,
        Counter::WindowsVisited,
        Counter::WindowsImproved,
        Counter::BatchesSolved,
        Counter::CacheHits,
        Counter::BatchCacheHits,
        Counter::CellsChanged,
        Counter::DistOptRounds,
        Counter::DistOptPasses,
        Counter::RowMapBuilds,
        Counter::RowMapRowsPatched,
        Counter::Iterations,
        Counter::ParamSets,
        Counter::AuditErrors,
        Counter::AuditWarnings,
        Counter::AuditBigMTightened,
        Counter::AuditPlacementChecks,
        Counter::AuditPlacementViolations,
        Counter::CertRecorded,
        Counter::CertVerified,
        Counter::CertRejected,
        Counter::AnalyzeFindings,
        Counter::AnalyzeWaived,
    ];

    /// Stable snake_case name used as the JSON/CSV key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::BbNodes => "bb_nodes",
            Counter::BbNodesPruned => "bb_nodes_pruned",
            Counter::LpSolves => "lp_solves",
            Counter::SimplexPivots => "simplex_pivots",
            Counter::PresolveTightenings => "presolve_tightenings",
            Counter::PresolveRedundantRows => "presolve_redundant_rows",
            Counter::MilpFallbacks => "milp_fallbacks",
            Counter::DfsNodes => "dfs_nodes",
            Counter::GreedyPasses => "greedy_passes",
            Counter::WindowsVisited => "windows_visited",
            Counter::WindowsImproved => "windows_improved",
            Counter::BatchesSolved => "batches_solved",
            Counter::CacheHits => "cache_hits",
            Counter::BatchCacheHits => "batch_cache_hits",
            Counter::CellsChanged => "cells_changed",
            Counter::DistOptRounds => "distopt_rounds",
            Counter::DistOptPasses => "distopt_passes",
            Counter::RowMapBuilds => "rowmap_builds",
            Counter::RowMapRowsPatched => "rowmap_rows_patched",
            Counter::Iterations => "iterations",
            Counter::ParamSets => "param_sets",
            Counter::AuditErrors => "audit_errors",
            Counter::AuditWarnings => "audit_warnings",
            Counter::AuditBigMTightened => "audit_bigm_tightened",
            Counter::AuditPlacementChecks => "audit_placement_checks",
            Counter::AuditPlacementViolations => "audit_placement_violations",
            Counter::CertRecorded => "cert_recorded",
            Counter::CertVerified => "cert_verified",
            Counter::CertRejected => "cert_rejected",
            Counter::AnalyzeFindings => "analyze_findings",
            Counter::AnalyzeWaived => "analyze_waived",
        }
    }
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

/// Wall-clock-timed stages of the flow. Stage times recorded from worker
/// threads accumulate (they report total thread-time, not elapsed time);
/// stages recorded on the driving thread are true wall-clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Whole `VM1Opt` run (Algorithm 1).
    Vm1Opt,
    /// Perturbation `DistOpt` passes (`f = 0`).
    Perturb,
    /// Flip `DistOpt` passes (`f = 1`).
    Flip,
    /// Global objective evaluations between iterations.
    ObjectiveEval,
    /// Window-batch solves (accumulated across worker threads).
    WindowSolve,
    /// MILP model construction (accumulated across worker threads).
    MilpBuild,
    /// MILP branch-and-bound solves (accumulated across worker threads).
    MilpSolve,
    /// Routing passes of the measurement flow.
    Route,
    /// STA + power analysis of the measurement flow.
    Analysis,
    /// Static audits: MILP model lint and placement invariant
    /// verification (checkpoints and explicit `--audit` runs).
    Audit,
    /// Exact-arithmetic certificate verification (`vm1-certify` replay
    /// of recorded branch-and-bound certificates).
    Certify,
}

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; 11] = [
        Stage::Vm1Opt,
        Stage::Perturb,
        Stage::Flip,
        Stage::ObjectiveEval,
        Stage::WindowSolve,
        Stage::MilpBuild,
        Stage::MilpSolve,
        Stage::Route,
        Stage::Analysis,
        Stage::Audit,
        Stage::Certify,
    ];

    /// Stable snake_case name used as the JSON/CSV key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Vm1Opt => "vm1opt",
            Stage::Perturb => "perturb",
            Stage::Flip => "flip",
            Stage::ObjectiveEval => "objective_eval",
            Stage::WindowSolve => "window_solve",
            Stage::MilpBuild => "milp_build",
            Stage::MilpSolve => "milp_solve",
            Stage::Route => "route",
            Stage::Analysis => "analysis",
            Stage::Audit => "audit",
            Stage::Certify => "certify",
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler gauges
// ---------------------------------------------------------------------------

/// How a gauge combines concurrent recordings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GaugeAgg {
    /// Recordings add up (e.g. steal counts).
    Sum,
    /// Only the largest recording is kept (e.g. high-water marks).
    Max,
}

/// Scheduler observability gauges of the persistent `DistOpt` worker
/// pool. Unlike [`Counter`] values, gauges are **scheduling-dependent**:
/// steal counts and per-worker busy times vary run to run and with the
/// thread count, so they are kept out of the counter determinism
/// contract (determinism tests compare counters, never gauges).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SchedGauge {
    /// Largest number of window tasks enqueued for a single round
    /// (queue-depth high-water mark).
    QueueHighWater,
    /// Successful steals of a window task from another worker's deque.
    Steals,
    /// Window tasks executed by the pool workers (including the inline
    /// single-thread path).
    TasksExecuted,
    /// Total busy time over all workers, in nanoseconds (time spent
    /// executing window tasks, excluding queue waits).
    WorkerBusyNanos,
    /// Busy time of the single busiest worker in one round, in
    /// nanoseconds. Compared against `WorkerBusyNanos / threads`, this
    /// exposes load imbalance: equal values mean one worker did all the
    /// work, matching values near the mean indicate a balanced round.
    WorkerBusyMaxNanos,
}

impl SchedGauge {
    /// Every gauge, in discriminant order.
    pub const ALL: [SchedGauge; 5] = [
        SchedGauge::QueueHighWater,
        SchedGauge::Steals,
        SchedGauge::TasksExecuted,
        SchedGauge::WorkerBusyNanos,
        SchedGauge::WorkerBusyMaxNanos,
    ];

    /// Stable snake_case name used as the JSON/CSV key.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchedGauge::QueueHighWater => "sched_queue_high_water",
            SchedGauge::Steals => "sched_steals",
            SchedGauge::TasksExecuted => "sched_tasks_executed",
            SchedGauge::WorkerBusyNanos => "sched_worker_busy_ns",
            SchedGauge::WorkerBusyMaxNanos => "sched_worker_busy_max_ns",
        }
    }

    /// How recordings of this gauge combine.
    #[must_use]
    pub fn agg(self) -> GaugeAgg {
        match self {
            SchedGauge::QueueHighWater | SchedGauge::WorkerBusyMaxNanos => GaugeAgg::Max,
            SchedGauge::Steals | SchedGauge::TasksExecuted | SchedGauge::WorkerBusyNanos => {
                GaugeAgg::Sum
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trajectory
// ---------------------------------------------------------------------------

/// One point of the objective trajectory: the state after an inner
/// iteration of Algorithm 1 (iteration 0 is the initial state).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrajectoryPoint {
    /// Index of the parameter set in the optimization sequence `U`.
    pub param_set: usize,
    /// Inner-iteration number within the parameter set (0 = before the
    /// first pass of the set).
    pub iteration: usize,
    /// Objective (1)/(10) value.
    pub objective: f64,
    /// Total HPWL in nm.
    pub hpwl_nm: i64,
    /// Vertically alignable pin pairs (Σ d_pq).
    pub alignments: usize,
}

// ---------------------------------------------------------------------------
// Sink trait + standard sink
// ---------------------------------------------------------------------------

/// A metrics recorder. Implementations must be thread-safe: the solver
/// stack records from parallel window workers.
///
/// All methods have empty default bodies so partial sinks (e.g. a
/// counters-only logger) stay terse.
pub trait MetricsSink: Send + Sync + fmt::Debug {
    /// Adds `delta` to `counter`.
    fn add(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }
    /// Accumulates `nanos` of wall-clock time into `stage`.
    fn record_time(&self, stage: Stage, nanos: u64) {
        let _ = (stage, nanos);
    }
    /// Appends one objective-trajectory point.
    fn record_point(&self, point: TrajectoryPoint) {
        let _ = point;
    }
    /// Records one scheduler gauge sample (combined per
    /// [`SchedGauge::agg`]).
    fn record_gauge(&self, gauge: SchedGauge, value: u64) {
        let _ = (gauge, value);
    }
}

/// A sink that drops everything. Useful as an explicit "instrumented but
/// discarding" target in tests; for production, prefer a disabled
/// [`MetricsHandle`], which skips the virtual call entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl MetricsSink for NullSink {}

/// The standard in-memory sink: atomic counters, atomic per-stage time
/// accumulators, and a trajectory vector.
#[derive(Debug, Default)]
pub struct Telemetry {
    counters: [AtomicU64; Counter::ALL.len()],
    stage_nanos: [AtomicU64; Stage::ALL.len()],
    stage_calls: [AtomicU64; Stage::ALL.len()],
    gauges: [AtomicU64; SchedGauge::ALL.len()],
    trajectory: Mutex<Vec<TrajectoryPoint>>,
}

impl Telemetry {
    /// Creates an empty telemetry sink.
    #[must_use]
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Current value of one counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Accumulated nanoseconds of one stage.
    #[must_use]
    pub fn stage_nanos(&self, s: Stage) -> u64 {
        self.stage_nanos[s as usize].load(Ordering::Relaxed)
    }

    /// Current value of one scheduler gauge.
    #[must_use]
    pub fn gauge(&self, g: SchedGauge) -> u64 {
        self.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// Takes an owned snapshot of everything recorded so far.
    ///
    /// Trajectory points recorded by a thread that panicked mid-push are
    /// still returned: lock poisoning is ignored (the vector is always in
    /// a consistent state because `push` is the only mutation).
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: Counter::ALL.map(|c| self.counter(c)),
            stage_nanos: Stage::ALL.map(|s| self.stage_nanos(s)),
            stage_calls: Stage::ALL.map(|s| self.stage_calls[s as usize].load(Ordering::Relaxed)),
            gauges: SchedGauge::ALL.map(|g| self.gauge(g)),
            trajectory: self
                .trajectory
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
        }
    }
}

impl MetricsSink for Telemetry {
    fn add(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    fn record_time(&self, stage: Stage, nanos: u64) {
        self.stage_nanos[stage as usize].fetch_add(nanos, Ordering::Relaxed);
        self.stage_calls[stage as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn record_point(&self, point: TrajectoryPoint) {
        self.trajectory
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(point);
    }

    fn record_gauge(&self, gauge: SchedGauge, value: u64) {
        let cell = &self.gauges[gauge as usize];
        match gauge.agg() {
            GaugeAgg::Sum => {
                cell.fetch_add(value, Ordering::Relaxed);
            }
            GaugeAgg::Max => {
                cell.fetch_max(value, Ordering::Relaxed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

/// Cheap, cloneable fan-out handle over zero or more sinks.
///
/// The disabled handle (default) is an empty slice: every record method
/// reduces to one branch, so instrumentation left in hot paths costs
/// nothing when nobody listens.
#[derive(Clone, Debug, Default)]
pub struct MetricsHandle {
    sinks: Arc<[Arc<dyn MetricsSink>]>,
}

impl MetricsHandle {
    /// The disabled handle: records nothing.
    #[must_use]
    pub fn disabled() -> MetricsHandle {
        MetricsHandle::default()
    }

    /// A handle over one sink.
    #[must_use]
    pub fn of(sink: Arc<dyn MetricsSink>) -> MetricsHandle {
        MetricsHandle {
            sinks: Arc::from(vec![sink]),
        }
    }

    /// A handle fanning out to this handle's sinks plus `sink`.
    #[must_use]
    pub fn and(&self, sink: Arc<dyn MetricsSink>) -> MetricsHandle {
        let mut sinks: Vec<Arc<dyn MetricsSink>> = self.sinks.to_vec();
        sinks.push(sink);
        MetricsHandle {
            sinks: Arc::from(sinks),
        }
    }

    /// Whether any sink is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Adds `delta` to `counter` on every sink.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        for s in self.sinks.iter() {
            s.add(counter, delta);
        }
    }

    /// Increments `counter` by one on every sink.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Accumulates stage time on every sink.
    #[inline]
    pub fn record_time(&self, stage: Stage, nanos: u64) {
        for s in self.sinks.iter() {
            s.record_time(stage, nanos);
        }
    }

    /// Appends a trajectory point on every sink.
    #[inline]
    pub fn record_point(&self, point: TrajectoryPoint) {
        for s in self.sinks.iter() {
            s.record_point(point);
        }
    }

    /// Records a scheduler gauge sample on every sink.
    #[inline]
    pub fn record_gauge(&self, gauge: SchedGauge, value: u64) {
        for s in self.sinks.iter() {
            s.record_gauge(gauge, value);
        }
    }

    /// Runs `f`, charging its wall-clock time to `stage`. When the handle
    /// is disabled no clock is read at all.
    #[inline]
    pub fn timed<T>(&self, stage: Stage, f: impl FnOnce() -> T) -> T {
        if self.sinks.is_empty() {
            return f();
        }
        let sw = Stopwatch::start();
        let out = f();
        self.record_time(stage, sw.elapsed_nanos());
        out
    }
}

// ---------------------------------------------------------------------------
// Report + export
// ---------------------------------------------------------------------------

/// Owned snapshot of a [`Telemetry`] sink.
#[derive(Clone, Debug, Default, PartialEq)]
#[must_use = "a metrics report is only useful if it is exported or read"]
pub struct MetricsReport {
    counters: [u64; Counter::ALL.len()],
    stage_nanos: [u64; Stage::ALL.len()],
    stage_calls: [u64; Stage::ALL.len()],
    gauges: [u64; SchedGauge::ALL.len()],
    trajectory: Vec<TrajectoryPoint>,
}

impl MetricsReport {
    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Accumulated time of one stage, in nanoseconds.
    #[must_use]
    pub fn stage_nanos(&self, s: Stage) -> u64 {
        self.stage_nanos[s as usize]
    }

    /// Accumulated time of one stage, in milliseconds.
    #[must_use]
    pub fn stage_ms(&self, s: Stage) -> f64 {
        self.stage_nanos(s) as f64 / 1e6
    }

    /// Number of times one stage was recorded.
    #[must_use]
    pub fn stage_calls(&self, s: Stage) -> u64 {
        self.stage_calls[s as usize]
    }

    /// Value of one scheduler gauge. Gauges are scheduling-dependent (see
    /// [`SchedGauge`]) and excluded from counter determinism comparisons.
    #[must_use]
    pub fn gauge(&self, g: SchedGauge) -> u64 {
        self.gauges[g as usize]
    }

    /// The recorded objective trajectory, in recording order.
    #[must_use]
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// Estimated parallel utilization of the window workers: total
    /// thread-time spent solving windows divided by the wall-clock of the
    /// `DistOpt` passes. 1.0 ≈ one core busy; values near the thread
    /// count indicate full parallel occupancy. `None` when nothing was
    /// timed.
    #[must_use]
    pub fn parallel_utilization(&self) -> Option<f64> {
        let wall = self.stage_nanos(Stage::Perturb) + self.stage_nanos(Stage::Flip);
        if wall == 0 {
            return None;
        }
        Some(self.stage_nanos(Stage::WindowSolve) as f64 / wall as f64)
    }

    /// Serializes the report as a self-contained JSON object (schema:
    /// DESIGN.md §"Observability").
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", c.name(), self.counter(*c)));
        }
        out.push_str("\n  },\n  \"stages_ms\": {");
        for (i, s) in Stage::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"ms\": {}, \"calls\": {}}}",
                s.name(),
                json_f64(self.stage_ms(*s)),
                self.stage_calls(*s)
            ));
        }
        out.push_str("\n  },\n  \"scheduler\": {");
        for (i, g) in SchedGauge::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", g.name(), self.gauge(*g)));
        }
        out.push_str("\n  },\n  \"parallel_utilization\": ");
        match self.parallel_utilization() {
            Some(u) => out.push_str(&json_f64(u)),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"trajectory\": [");
        for (i, p) in self.trajectory.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"param_set\": {}, \"iteration\": {}, \"objective\": {}, \"hpwl_nm\": {}, \"alignments\": {}}}",
                p.param_set,
                p.iteration,
                json_f64(p.objective),
                p.hpwl_nm,
                p.alignments
            ));
        }
        if !self.trajectory.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serializes counters and stage times as `key,value` CSV lines
    /// (counters in raw units, stages in milliseconds).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for c in Counter::ALL {
            out.push_str(&format!("{},{}\n", c.name(), self.counter(c)));
        }
        for s in Stage::ALL {
            out.push_str(&format!("{}_ms,{}\n", s.name(), json_f64(self.stage_ms(s))));
        }
        for g in SchedGauge::ALL {
            out.push_str(&format!("{},{}\n", g.name(), self.gauge(g)));
        }
        out
    }
}

/// Formats a float as valid JSON (non-finite values become `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_is_cheap() {
        let h = MetricsHandle::disabled();
        assert!(!h.is_enabled());
        h.add(Counter::BbNodes, 5);
        let out = h.timed(Stage::Vm1Opt, || 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn telemetry_accumulates_counters_and_times() {
        let t = Arc::new(Telemetry::new());
        let h = MetricsHandle::of(t.clone());
        assert!(h.is_enabled());
        h.add(Counter::SimplexPivots, 10);
        h.add(Counter::SimplexPivots, 5);
        h.incr(Counter::CacheHits);
        h.record_time(Stage::Route, 2_000_000);
        h.record_point(TrajectoryPoint {
            param_set: 0,
            iteration: 1,
            objective: -3.5,
            hpwl_nm: 1000,
            alignments: 7,
        });
        let r = t.report();
        assert_eq!(r.counter(Counter::SimplexPivots), 15);
        assert_eq!(r.counter(Counter::CacheHits), 1);
        assert_eq!(r.stage_nanos(Stage::Route), 2_000_000);
        assert_eq!(r.stage_calls(Stage::Route), 1);
        assert!((r.stage_ms(Stage::Route) - 2.0).abs() < 1e-9);
        assert_eq!(r.trajectory().len(), 1);
        assert_eq!(r.trajectory()[0].alignments, 7);
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(Telemetry::new());
        let b = Arc::new(Telemetry::new());
        let h = MetricsHandle::of(a.clone()).and(b.clone());
        h.add(Counter::BbNodes, 3);
        assert_eq!(a.counter(Counter::BbNodes), 3);
        assert_eq!(b.counter(Counter::BbNodes), 3);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = Arc::new(Telemetry::new());
        let h = MetricsHandle::of(t.clone());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.incr(Counter::DfsNodes);
                    }
                });
            }
        });
        assert_eq!(t.counter(Counter::DfsNodes), 8000);
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let t = Telemetry::new();
        t.add(Counter::BbNodes, 12);
        t.record_time(Stage::MilpSolve, 1_500_000);
        t.record_point(TrajectoryPoint {
            param_set: 0,
            iteration: 0,
            objective: 123.25,
            hpwl_nm: 9,
            alignments: 2,
        });
        let json = t.report().to_json();
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\"", c.name())), "{}", c.name());
        }
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}\"", s.name())), "{}", s.name());
        }
        for g in SchedGauge::ALL {
            assert!(json.contains(&format!("\"{}\"", g.name())), "{}", g.name());
        }
        assert!(json.contains("\"bb_nodes\": 12"));
        assert!(json.contains("\"objective\": 123.25"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn csv_export_has_one_line_per_metric() {
        let t = Telemetry::new();
        let csv = t.report().to_csv();
        let lines = csv.lines().count();
        assert_eq!(
            lines,
            1 + Counter::ALL.len() + Stage::ALL.len() + SchedGauge::ALL.len()
        );
        assert!(csv.starts_with("metric,value\n"));
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn counter_and_stage_discriminants_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
        for (i, g) in SchedGauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
    }

    #[test]
    fn gauges_aggregate_by_kind() {
        let t = Arc::new(Telemetry::new());
        let h = MetricsHandle::of(t.clone());
        // Sum gauge: recordings add up.
        h.record_gauge(SchedGauge::Steals, 3);
        h.record_gauge(SchedGauge::Steals, 4);
        // Max gauge: only the high-water mark survives.
        h.record_gauge(SchedGauge::QueueHighWater, 9);
        h.record_gauge(SchedGauge::QueueHighWater, 5);
        let r = t.report();
        assert_eq!(r.gauge(SchedGauge::Steals), 7);
        assert_eq!(r.gauge(SchedGauge::QueueHighWater), 9);
        assert!(r.to_json().contains("\"sched_steals\": 7"));
        assert!(r.to_csv().contains("sched_queue_high_water,9\n"));
    }
}
