//! The workspace's single home for wall-clock reads.
//!
//! Determinism rule D2 (see `vm1-analyze` and DESIGN.md §10) forbids
//! `Instant::now` / `SystemTime` / `std::time` reads anywhere in library
//! code except this module: clock reads are inherently nondeterministic,
//! so confining them here keeps every other path auditable as
//! order-independent. Solver code that needs elapsed time takes a
//! [`Stopwatch`]; nothing outside this module touches the OS clock.
//!
//! `std::time::Duration` is a pure value type (no clock read) and may be
//! used anywhere.

use std::time::{Duration, Instant};

/// A started wall-clock timer. The only way the workspace reads time.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch (the one sanctioned clock read).
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole nanoseconds (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time in whole milliseconds (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
        assert!(sw.elapsed_ms() <= sw.elapsed_nanos() / 1_000_000 + 1);
    }
}
