//! Differential tests for proof-carrying window solves: every certified
//! MILP optimum must be accepted by the exact-arithmetic checker and
//! must match the exhaustively enumerated optimum on small windows.

use vm1_core::problem::{Overrides, WindowProblem};
use vm1_core::window::WindowGrid;
use vm1_core::{milp, Vm1Config};
use vm1_milp::{solve_certified, SolveParams};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_place::{place, PlaceConfig, RowMap};
use vm1_tech::{CellArch, Library};

/// Builds every window problem of a small generated design (up to
/// `max_cells` movable cells per window) and yields it to `f`.
fn for_each_window(arch: CellArch, seed: u64, max_cells: usize, f: &mut dyn FnMut(WindowProblem)) {
    let lib = Library::synthetic_7nm(arch);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(420)
        .generate(&lib, seed);
    place(&mut d, &PlaceConfig::default(), seed);
    let cfg = if arch == CellArch::OpenM1 {
        Vm1Config::openm1()
    } else {
        Vm1Config::closedm1()
    };
    let u = cfg.sequence[0];
    let tech = d.library().tech();
    let site = tech.site_width.nm() as f64;
    let row = tech.row_height.nm() as f64;
    let bw = ((u.bw_um * 1000.0 / site).round() as i64).max(4);
    let bh = ((u.bh_um * 1000.0 / row).round() as i64).max(1);
    let rowmap = RowMap::build(&d);
    let overrides = Overrides::new();
    let grid = WindowGrid::partition(&d, 0, 0, bw, bh);
    for win in &grid.windows {
        let mut movable = WindowProblem::movable_in_window(&d, &rowmap, win, &overrides);
        if movable.len() < 2 {
            continue;
        }
        movable.truncate(max_cells);
        let prob = WindowProblem::build(
            &d, &rowmap, *win, &movable, u.lx, u.ly, false, &cfg, &overrides,
        );
        f(prob);
    }
}

/// Exhaustive optimum by enumerating all legal assignments.
fn brute_force(prob: &WindowProblem) -> f64 {
    fn rec(prob: &WindowProblem, assign: &mut Vec<usize>, cell: usize, best: &mut f64) {
        if cell == prob.cells.len() {
            if prob.is_legal(assign) {
                *best = best.min(prob.eval(assign));
            }
            return;
        }
        for k in 0..prob.cells[cell].cands.len() {
            assign[cell] = k;
            rec(prob, assign, cell + 1, best);
        }
    }
    let mut best = f64::INFINITY;
    let mut assign = prob.current_assign();
    rec(prob, &mut assign, 0, &mut best);
    best
}

/// Every window solve of the generated designs must produce a
/// certificate the exact-arithmetic checker accepts.
#[test]
fn every_window_certificate_verifies() {
    let mut solves = 0usize;
    let mut rejected = Vec::new();
    for (arch, seed) in [(CellArch::ClosedM1, 11), (CellArch::OpenM1, 12)] {
        for_each_window(arch, seed, 8, &mut |prob| {
            if solves >= 12 {
                return;
            }
            let (model, vars) = milp::build_milp(&prob);
            // Mirror the optimizer's solve parameters, warm start
            // included — the warm-started zero-gap path must certify
            // exactly like a cold solve.
            let params = SolveParams {
                max_nodes: 300_000,
                warm_start: Some(milp::warm_start(
                    &prob,
                    &model,
                    &vars,
                    &prob.current_assign(),
                )),
                ..SolveParams::default()
            };
            let certified = solve_certified(&model, &params);
            let report = vm1_certify::check(&model, &certified.certificate);
            solves += 1;
            if !report.accepted {
                rejected.push(format!(
                    "{arch} seed {seed} ({} vars, {} rows): {}",
                    model.num_vars(),
                    model.num_constraints(),
                    report.summary()
                ));
            }
        });
    }
    assert!(
        solves >= 8,
        "expected to certify many windows, got {solves}"
    );
    assert!(
        rejected.is_empty(),
        "{} of {solves} certificates rejected:\n{}",
        rejected.len(),
        rejected.join("\n")
    );
}

/// On windows small enough to enumerate, the certified optimum must
/// equal the exhaustive one.
#[test]
fn certified_optimum_matches_enumeration() {
    let mut compared = 0usize;
    for seed in [21, 22] {
        for_each_window(CellArch::ClosedM1, seed, 3, &mut |prob| {
            if prob.cells.len() > 3 || compared >= 8 {
                return;
            }
            let (model, vars) = milp::build_milp(&prob);
            let certified = solve_certified(&model, &SolveParams::default());
            let report = vm1_certify::check(&model, &certified.certificate);
            assert!(report.accepted, "rejected: {}", report.summary());
            let sol = &certified.solution;
            assert!(sol.has_solution());
            let got = prob.eval(&milp::extract_assignment(&vars, &sol.values));
            let expect = brute_force(&prob);
            assert!(
                (got - expect).abs() <= 1e-6 * (1.0 + expect.abs()),
                "seed {seed}: certified {got} vs brute {expect}"
            );
            compared += 1;
        });
    }
    assert!(
        compared > 3,
        "expected several enumerable windows, got {compared}"
    );
}
