//! Property-based tests of the optimizer's core invariants:
//!
//! * window solvers always return legal assignments that are no worse
//!   than the input (regardless of engine);
//! * the window-local objective delta equals the global objective delta
//!   for any in-window move (the Figure 4(b) decomposition property that
//!   justifies parallel diagonal windows);
//! * the exact solvers dominate the greedy one;
//! * the audit layer's independent dM1 recount always agrees with the
//!   objective, and optimization preserves audit cleanliness.

use proptest::prelude::*;
use vm1_core::problem::{Overrides, WindowProblem};
use vm1_core::solver::{dfs_solve, greedy_solve, solve_window};
use vm1_core::window::Window;
use vm1_core::{
    audit_design, calculate_obj, recount_alignments, ParamSet, SolverKind, Vm1Config, Vm1Optimizer,
};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_place::{place, PlaceConfig, RowMap};
use vm1_tech::{CellArch, Library};

fn build(arch: CellArch, n: usize, seed: u64) -> (Design, Vm1Config) {
    let lib = Library::synthetic_7nm(arch);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(n)
        .generate(&lib, seed);
    place(&mut d, &PlaceConfig::default(), seed);
    let cfg = if arch == CellArch::OpenM1 {
        Vm1Config::openm1()
    } else {
        Vm1Config::closedm1()
    };
    (d, cfg)
}

fn window_of(d: &Design, frac: f64) -> Window {
    Window {
        site0: 0,
        row0: 0,
        w_sites: ((d.sites_per_row as f64 * frac) as i64).clamp(10, d.sites_per_row),
        h_rows: ((d.num_rows as f64 * frac) as i64).clamp(2, d.num_rows),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn solvers_are_legal_and_never_worse(
        arch_i in 0u8..2,
        n in 100usize..250,
        seed in 0u64..500,
        lx in 1i64..4,
        ly in 0i64..2,
        take in 3usize..8,
    ) {
        let arch = [CellArch::ClosedM1, CellArch::OpenM1][arch_i as usize];
        let (d, cfg) = build(arch, n, seed);
        let rm = RowMap::build(&d);
        let win = window_of(&d, 0.4);
        let movable: Vec<_> =
            WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new())
                .into_iter()
                .take(take)
                .collect();
        prop_assume!(!movable.is_empty());
        let prob = WindowProblem::build(&d, &rm, win, &movable, lx, ly, false, &cfg, &Overrides::new());
        let cur_obj = prob.eval(&prob.current_assign());
        for kind in [SolverKind::Dfs, SolverKind::Greedy] {
            let c = cfg.clone().with_solver(kind);
            let assign = solve_window(&prob, &c);
            prop_assert!(prob.is_legal(&assign), "{kind:?} legal");
            prop_assert!(prob.eval(&assign) <= cur_obj + 1e-9, "{kind:?} no worse");
        }
    }

    #[test]
    fn window_delta_equals_global_delta(
        n in 100usize..250,
        seed in 0u64..500,
        pick in 0usize..64,
    ) {
        let (mut d, cfg) = build(CellArch::ClosedM1, n, seed);
        let rm = RowMap::build(&d);
        let win = window_of(&d, 0.5);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        prop_assume!(!movable.is_empty());
        let prob = WindowProblem::build(&d, &rm, win, &movable, 3, 1, true, &cfg, &Overrides::new());
        let cur = prob.current_assign();

        // Pick a random legal single-cell move.
        let cell = pick % prob.cells.len();
        prop_assume!(prob.cells[cell].cands.len() > 1);
        let mut alt = cur.clone();
        alt[cell] = (cur[cell] + 1 + pick / prob.cells.len()) % prob.cells[cell].cands.len();
        prop_assume!(prob.is_legal(&alt));

        let local_delta = prob.eval(&alt) - prob.eval(&cur);
        let g0 = calculate_obj(&d, &cfg).value;
        let cand = prob.cells[cell].cands[alt[cell]];
        d.move_inst(prob.cells[cell].inst, cand.site, cand.row, cand.orient);
        let g1 = calculate_obj(&d, &cfg).value;
        prop_assert!(
            ((g1 - g0) - local_delta).abs() < 1e-6,
            "global {} vs local {}",
            g1 - g0,
            local_delta
        );
    }

    #[test]
    fn dfs_dominates_greedy(
        n in 100usize..220,
        seed in 0u64..500,
    ) {
        let (d, cfg) = build(CellArch::ClosedM1, n, seed);
        let rm = RowMap::build(&d);
        let win = window_of(&d, 0.35);
        let movable: Vec<_> =
            WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new())
                .into_iter()
                .take(5)
                .collect();
        prop_assume!(!movable.is_empty());
        let prob = WindowProblem::build(&d, &rm, win, &movable, 3, 1, false, &cfg, &Overrides::new());
        let dfs = dfs_solve(&prob, 500_000);
        let greedy = greedy_solve(&prob, 4);
        prop_assert!(prob.eval(&dfs) <= prob.eval(&greedy) + 1e-9);
    }

    #[test]
    fn dm1_recount_matches_objective(
        arch_i in 0u8..2,
        n in 80usize..250,
        seed in 0u64..1000,
    ) {
        let arch = [CellArch::ClosedM1, CellArch::OpenM1][arch_i as usize];
        let (d, cfg) = build(arch, n, seed);
        prop_assert_eq!(
            recount_alignments(&d, &cfg),
            calculate_obj(&d, &cfg).alignments,
            "independent recount must agree with the objective"
        );
    }

    #[test]
    fn partition_tiles_core_exactly(
        n_rows in 1i64..40,
        n_sites in 1i64..400,
        bw in 1i64..500,
        bh in 1i64..50,
        tx in -1000i64..1000,
        ty in -100i64..100,
    ) {
        use vm1_core::window::WindowGrid;
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let d = Design::new("tile", lib, n_rows, n_sites);
        let g = WindowGrid::partition(&d, tx, ty, bw, bh);
        // Exact tiling: the window areas sum to the core area, every
        // window is non-empty, and the grid shape matches the count.
        let area: i64 = g.windows.iter().map(|w| w.w_sites * w.h_rows).sum();
        prop_assert_eq!(area, n_rows * n_sites);
        prop_assert_eq!(g.windows.len(), g.nc * g.nr);
        prop_assert!(g.windows.iter().all(|w| w.w_sites > 0 && w.h_rows > 0));
        // Diagonal sets cover every window once, with pairwise disjoint
        // x and y projections inside each set.
        let sets = g.diagonal_sets();
        let mut seen = vec![false; g.windows.len()];
        for set in &sets {
            for &i in set {
                prop_assert!(!seen[i], "window in two sets");
                seen[i] = true;
            }
            for (k, &a_i) in set.iter().enumerate() {
                for &b_i in &set[k + 1..] {
                    let (a, b) = (g.windows[a_i], g.windows[b_i]);
                    prop_assert!(!(a.site0 < b.site_end() && b.site0 < a.site_end()));
                    prop_assert!(!(a.row0 < b.row_end() && b.row0 < a.row_end()));
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every window in some set");
    }

    #[test]
    fn optimization_preserves_audit_cleanliness(
        arch_i in 0u8..2,
        n in 80usize..160,
        seed in 0u64..500,
    ) {
        let arch = [CellArch::ClosedM1, CellArch::OpenM1][arch_i as usize];
        let (mut d, cfg) = build(arch, n, seed);
        let pre = audit_design(&d, &cfg);
        prop_assert!(pre.is_clean(), "pre-optimization: {}", pre.summary());

        let cfg = cfg.with_sequence(vec![ParamSet::new(4.0, 3, 1)]);
        let _ = Vm1Optimizer::new(cfg.clone()).run(&mut d);

        let post = audit_design(&d, &cfg);
        prop_assert!(post.is_clean(), "post-optimization: {}", post.summary());
        prop_assert!(d.validate_placement().is_ok());
    }
}

proptest! {
    // Full passes are expensive; a handful of random configurations is
    // plenty to pin the thread-invariance contract.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pass_bit_identical_across_thread_counts(
        n in 120usize..220,
        seed in 0u64..500,
        lx in 1i64..4,
        flip_i in 0u8..2,
    ) {
        let flip = flip_i == 1;
        use std::sync::Arc;
        use vm1_core::DistOptParams;
        use vm1_obs::{Counter, Telemetry};

        let p = |d: &Design| DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: (d.sites_per_row / 3).max(10),
            bh_rows: (d.num_rows / 3).max(2),
            lx,
            ly: 1,
            flip,
        };
        // One full DistOpt pass at 1 thread vs 8 threads: placements and
        // every counter must be bit-identical (scheduler gauges may not).
        let mut results = Vec::new();
        for threads in [1usize, 8] {
            let (mut d, cfg) = build(CellArch::ClosedM1, n, seed);
            let cfg = cfg.with_threads(threads);
            let sink = Arc::new(Telemetry::new());
            let params = p(&d);
            let _ = Vm1Optimizer::new(cfg)
                .with_metrics(sink.clone())
                .run_pass(&mut d, &params);
            let placement: Vec<(i64, i64, bool)> = d
                .insts()
                .map(|(_, i)| (i.site, i.row, i.orient.is_flipped()))
                .collect();
            let r = sink.report();
            let counters: Vec<u64> = Counter::ALL.iter().map(|&c| r.counter(c)).collect();
            results.push((placement, counters));
        }
        prop_assert_eq!(&results[0].0, &results[1].0, "placements differ by thread count");
        prop_assert_eq!(&results[0].1, &results[1].1, "counters differ by thread count");
    }
}
