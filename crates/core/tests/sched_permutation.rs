//! Schedule-permutation model checking of the worker pool.
//!
//! `Vm1Optimizer::with_adversarial_sched(seed)` replays every round of
//! window solving under a seeded worst-case interleaving: permuted task
//! stripes, all tasks piled onto one victim queue (forcing every other
//! worker to steal), reversed queue drains, rotated chunk assignments,
//! randomized steal-victim rotation and steal-before-own-drain ordering.
//! Because the scheduler writes each outcome into a slot indexed by the
//! task number, none of that may reach the results: the DEF bytes and
//! every telemetry counter must be bit-identical to a `--threads 1` run
//! for *any* adversary seed. These tests check exactly that, over 100+
//! fixed seeds plus proptest-drawn random ones.

use proptest::prelude::*;
use std::sync::Arc;
use vm1_core::{DistOptParams, ParamSet, Vm1Config, Vm1Optimizer};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::{io::write_def, Design};
use vm1_obs::{Counter, Telemetry};
use vm1_place::{place, PlaceConfig};
use vm1_tech::{CellArch, Library};

fn build(n: usize, seed: u64) -> Design {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(n)
        .generate(&lib, seed);
    place(&mut d, &PlaceConfig::default(), seed);
    d
}

/// Window grid small enough that a round has many windows to schedule.
fn pass_params(d: &Design) -> DistOptParams {
    DistOptParams {
        tx: 0,
        ty: 0,
        bw_sites: (d.sites_per_row / 4).max(10),
        bh_rows: (d.num_rows / 4).max(2),
        lx: 3,
        ly: 1,
        flip: false,
    }
}

/// DEF bytes + the full counter section after one `DistOpt` pass.
fn run_one_pass(threads: usize, adversary: Option<u64>) -> (Vec<u8>, Vec<(&'static str, u64)>) {
    let mut d = build(140, 9);
    let p = pass_params(&d);
    let cfg = Vm1Config::closedm1().with_threads(threads);
    let sink = Arc::new(Telemetry::new());
    let mut opt = Vm1Optimizer::new(cfg).with_metrics(sink.clone());
    if let Some(seed) = adversary {
        opt = opt.with_adversarial_sched(seed);
    }
    let _ = opt.run_pass(&mut d, &p);
    let report = sink.report();
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), report.counter(c)))
        .collect();
    (write_def(&d).into_bytes(), counters)
}

/// DEF bytes + counters after a full Algorithm 1 run.
fn run_full(threads: usize, adversary: Option<u64>) -> (Vec<u8>, Vec<(&'static str, u64)>) {
    let mut d = build(150, 21);
    let cfg = Vm1Config::closedm1()
        .with_threads(threads)
        .with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
    let sink = Arc::new(Telemetry::new());
    let mut opt = Vm1Optimizer::new(cfg).with_metrics(sink.clone());
    if let Some(seed) = adversary {
        opt = opt.with_adversarial_sched(seed);
    }
    let _ = opt.run(&mut d);
    d.validate_placement().expect("legal under adversary");
    let report = sink.report();
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), report.counter(c)))
        .collect();
    (write_def(&d).into_bytes(), counters)
}

#[test]
fn hundred_adversarial_steal_orders_are_bit_identical() {
    // The single-thread run is the reference semantics: no pool threads
    // exist at all, so its result is schedule-free by construction.
    let (def_ref, counters_ref) = run_one_pass(1, None);
    for seed in 0..110u64 {
        let (def, counters) = run_one_pass(4, Some(seed));
        assert_eq!(
            def, def_ref,
            "DEF bytes diverged under adversary seed {seed}"
        );
        assert_eq!(
            counters, counters_ref,
            "telemetry counters diverged under adversary seed {seed}"
        );
    }
}

#[test]
fn full_runs_survive_adversarial_schedules() {
    let (def_ref, counters_ref) = run_full(1, None);
    // A full run exercises many rounds (several diagonal sets per pass,
    // several passes per iteration), so each seed already covers a long
    // mixed sequence of adversary modes.
    for seed in [0u64, 1, 2, 17, 0xDEAD_BEEF, u64::MAX] {
        let (def, counters) = run_full(4, Some(seed));
        assert_eq!(def, def_ref, "DEF diverged under adversary seed {seed}");
        assert_eq!(
            counters, counters_ref,
            "counters diverged under adversary seed {seed}"
        );
    }
    // The normal 4-thread schedule agrees too, tying the adversary runs
    // and the production scheduler to the same reference.
    let (def, counters) = run_full(4, None);
    assert_eq!(def, def_ref);
    assert_eq!(counters, counters_ref);
}

proptest! {
    // Each case replays a full pass under a freshly drawn steal-order
    // seed; the fixed-seed sweep above covers volume, this covers the
    // rest of the seed space.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_steal_order_seeds_match_single_thread(
        seed in 0u64..u64::MAX,
        threads in 2usize..6,
    ) {
        let (def_ref, counters_ref) = run_one_pass(1, None);
        let (def, counters) = run_one_pass(threads, Some(seed));
        prop_assert_eq!(def, def_ref, "DEF bytes diverged (seed {})", seed);
        prop_assert_eq!(counters, counters_ref, "counters diverged (seed {})", seed);
    }
}
