use std::sync::Arc;
use vm1_geom::Dbu;
use vm1_netlist::NetId;

/// One parameter set `u` of the paper's optimization sequence `U`:
/// window size and perturbation range (Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ParamSet {
    /// Window width in µm (`b_w`; windows are square like the paper's,
    /// `b_h = b_w`, unless changed).
    pub bw_um: f64,
    /// Window height in µm (`b_h`).
    pub bh_um: f64,
    /// Maximum x displacement in sites (`l_x`).
    pub lx: i64,
    /// Maximum y displacement in rows (`l_y`).
    pub ly: i64,
}

impl ParamSet {
    /// Square window of `b` µm with perturbation `(lx, ly)` — the triple
    /// notation `(b, lx, ly)` of ExptA-3.
    #[must_use]
    pub fn new(b_um: f64, lx: i64, ly: i64) -> ParamSet {
        ParamSet {
            bw_um: b_um,
            bh_um: b_um,
            lx,
            ly,
        }
    }
}

/// Which engine solves each window subproblem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverKind {
    /// Exact DFS branch-and-bound over SCP candidates (default: same
    /// optimum as the MILP, far faster at window scale).
    #[default]
    Dfs,
    /// The faithful MILP formulation solved by `vm1-milp` (the paper's
    /// CPLEX stand-in).
    Milp,
    /// Greedy one-cell-at-a-time improvement (baseline/ablation).
    Greedy,
}

/// Scheduling policy of the persistent `DistOpt` worker pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// One task per window on striped per-worker deques; an idle worker
    /// steals from the back of another worker's deque, so one dense
    /// window no longer stalls its whole round.
    #[default]
    WorkSteal,
    /// One contiguous chunk of the round's windows per worker, no
    /// stealing (the pre-pool chunking; kept for comparison benchmarks).
    StaticChunk,
}

/// Configuration of the vertical-M1 detailed placement optimization.
#[derive(Clone, Debug)]
pub struct Vm1Config {
    /// Weight of one vertical pin alignment, in nm of HPWL (the paper's α;
    /// 1200 for ClosedM1, 1000 for OpenM1).
    pub alpha: f64,
    /// HPWL weight per net (the paper's β; its experiments use β = 1).
    pub beta: f64,
    /// Weight per nm of pin overlap beyond δ (the paper's ε; OpenM1 only).
    pub epsilon: f64,
    /// Maximum dM1 span in rows (γ; the paper uses 3).
    pub gamma: i64,
    /// Minimum required overlap for OpenM1 (δ).
    pub delta: Dbu,
    /// Convergence threshold θ of Algorithm 1 (relative objective
    /// improvement; the paper uses 1 %).
    pub theta: f64,
    /// Parameter-set queue `U` (Algorithm 1). The default is the paper's
    /// preferred single set `(20, 4, 1)` — scaled down to the workspace's
    /// design sizes as `(5, 4, 1)`; see DESIGN.md §5.
    pub sequence: Vec<ParamSet>,
    /// Nets with more pins than this are skipped for pairing (keeps the
    /// pair count quadratic-free; clock nets are never paired).
    pub max_net_pins: usize,
    /// Maximum movable cells per exact solve; windows with more cells are
    /// optimized in batches of this size (see DESIGN.md §5).
    pub max_cells_per_milp: usize,
    /// Window solver engine.
    pub solver: SolverKind,
    /// Node budget for the exact solvers (per window batch).
    pub max_nodes: usize,
    /// Safety cap on Algorithm 1 inner iterations per parameter set.
    pub max_inner_iters: usize,
    /// Number of worker threads for parallel window optimization.
    pub threads: usize,
    /// How the windows of a round are scheduled over the worker threads.
    /// Placements and counters are invariant under this choice (and under
    /// `threads`); only wall-clock and the scheduler gauges differ.
    pub sched: SchedPolicy,
    /// Optional per-net weight multipliers (β_n = β · weight). The paper
    /// lists timing-criticality-aware objectives as future work (§6 item
    /// ii); the `net_criticality_weights` helper in `vm1-flow` produces
    /// these from STA slacks.
    pub net_weights: Option<Arc<Vec<f64>>>,
    /// Smart target-window selection (paper contribution (ii) over the
    /// distributable optimization of Han et al.): skip re-solving windows
    /// whose observable state is unchanged since a no-gain solve.
    pub smart_window_selection: bool,
    /// Proof-carrying solves: when the MILP engine is selected, record an
    /// optimality certificate for every window solve and verify it with
    /// the exact-arithmetic checker (`vm1-certify`) before committing the
    /// assignment. Rejected solves fall back to the input placement and
    /// are counted under `cert_rejected`. No effect on the DFS/greedy
    /// engines (see DESIGN.md §9).
    pub certify: bool,
}

impl Vm1Config {
    /// Paper configuration for ClosedM1 designs (α = 1200).
    #[must_use]
    pub fn closedm1() -> Vm1Config {
        Vm1Config {
            alpha: 1200.0,
            beta: 1.0,
            epsilon: 0.0,
            gamma: 3,
            delta: Dbu(24),
            theta: 0.01,
            sequence: vec![ParamSet::new(5.0, 4, 1)],
            max_net_pins: 12,
            max_cells_per_milp: 8,
            solver: SolverKind::Dfs,
            max_nodes: 300_000,
            max_inner_iters: 8,
            threads: 8,
            sched: SchedPolicy::WorkSteal,
            net_weights: None,
            smart_window_selection: true,
            certify: false,
        }
    }

    /// Paper configuration for OpenM1 designs (α = 1000, overlap term on).
    #[must_use]
    pub fn openm1() -> Vm1Config {
        Vm1Config {
            alpha: 1000.0,
            epsilon: 0.1,
            ..Vm1Config::closedm1()
        }
    }

    /// Replaces the optimization sequence `U`.
    #[must_use]
    pub fn with_sequence(mut self, sequence: Vec<ParamSet>) -> Vm1Config {
        assert!(!sequence.is_empty(), "sequence must not be empty");
        self.sequence = sequence;
        self
    }

    /// Replaces α.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Vm1Config {
        self.alpha = alpha;
        self
    }

    /// Replaces the window solver.
    #[must_use]
    pub fn with_solver(mut self, solver: SolverKind) -> Vm1Config {
        self.solver = solver;
        self
    }

    /// Enables or disables certified MILP solves (see [`Vm1Config::certify`]).
    #[must_use]
    pub fn with_certify(mut self, certify: bool) -> Vm1Config {
        self.certify = certify;
        self
    }

    /// Replaces the worker-thread count of the window pool.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Vm1Config {
        assert!(threads > 0, "threads must be positive");
        self.threads = threads;
        self
    }

    /// Replaces the window scheduling policy.
    #[must_use]
    pub fn with_sched(mut self, sched: SchedPolicy) -> Vm1Config {
        self.sched = sched;
        self
    }

    /// Installs per-net weight multipliers (one entry per net of the
    /// design this config will be used with).
    #[must_use]
    pub fn with_net_weights(mut self, weights: Vec<f64>) -> Vm1Config {
        self.net_weights = Some(Arc::new(weights));
        self
    }

    /// The effective HPWL weight β_n of a net.
    #[must_use]
    pub fn net_weight(&self, net: NetId) -> f64 {
        self.beta
            * self
                .net_weights
                .as_ref()
                .and_then(|w| w.get(net.0).copied())
                .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = Vm1Config::closedm1();
        assert_eq!(c.alpha, 1200.0);
        assert_eq!(c.beta, 1.0);
        assert_eq!(c.gamma, 3);
        assert_eq!(c.theta, 0.01);
        let o = Vm1Config::openm1();
        assert_eq!(o.alpha, 1000.0);
        assert!(o.epsilon > 0.0);
    }

    #[test]
    fn builders() {
        let c = Vm1Config::closedm1()
            .with_alpha(500.0)
            .with_solver(SolverKind::Milp)
            .with_certify(true)
            .with_sequence(vec![ParamSet::new(10.0, 3, 1), ParamSet::new(20.0, 3, 0)]);
        assert_eq!(c.alpha, 500.0);
        assert!(c.certify);
        assert!(!Vm1Config::closedm1().certify);
        assert_eq!(c.solver, SolverKind::Milp);
        assert_eq!(c.sequence.len(), 2);
        assert_eq!(c.sequence[1].lx, 3);
        assert_eq!(c.sequence[1].ly, 0);
        let c = c.with_threads(2).with_sched(SchedPolicy::StaticChunk);
        assert_eq!(c.threads, 2);
        assert_eq!(c.sched, SchedPolicy::StaticChunk);
        assert_eq!(Vm1Config::closedm1().sched, SchedPolicy::WorkSteal);
    }

    #[test]
    #[should_panic(expected = "threads")]
    fn zero_threads_rejected() {
        let _ = Vm1Config::closedm1().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "sequence")]
    fn empty_sequence_rejected() {
        let _ = Vm1Config::closedm1().with_sequence(vec![]);
    }
}
