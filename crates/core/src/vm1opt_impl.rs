//! Algorithm 1 — `VM1Opt`: the metaheuristic outer loop.
//!
//! For each parameter set `u` in the queue `U`, the loop alternates a
//! *perturbation* `DistOpt` (positions within `±lx/±ly`, no flips) with a
//! *flip* `DistOpt` (orientations only) — the paper found this serial
//! schedule as good as, and faster than, optimizing both degrees of
//! freedom simultaneously — then shifts the window grid by half a window
//! so the next iteration can optimize the previous boundary regions. The
//! inner loop stops when the normalized objective improvement drops below
//! θ (1 %).

use crate::distopt::{dist_opt_cached, DistOptParams, SolveCache};
use crate::objective::calculate_obj;
use crate::Vm1Config;
use std::time::Instant;
use vm1_netlist::Design;

/// Statistics of one [`vm1opt`] run.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Objective before optimization.
    pub initial_obj: f64,
    /// Objective after optimization.
    pub final_obj: f64,
    /// HPWL before (nm).
    pub initial_hpwl: i64,
    /// HPWL after (nm).
    pub final_hpwl: i64,
    /// Σ d_pq before.
    pub initial_alignments: usize,
    /// Σ d_pq after.
    pub final_alignments: usize,
    /// Inner iterations executed over all parameter sets.
    pub iterations: usize,
    /// Total cells moved or flipped.
    pub cells_changed: usize,
    /// Window batches skipped by the smart selection cache.
    pub batches_skipped: usize,
    /// Wall-clock runtime in milliseconds.
    pub runtime_ms: u64,
}

/// Runs the full vertical-M1 detailed-placement optimization (Algorithm 1)
/// on `design` with the queue `cfg.sequence`.
///
/// The placement is modified in place and stays legal; returns run
/// statistics.
pub fn vm1opt(design: &mut Design, cfg: &Vm1Config) -> OptStats {
    let start = Instant::now();
    let tech = design.library().tech();
    let site = tech.site_width.nm() as f64;
    let row = tech.row_height.nm() as f64;

    let cache = SolveCache::new();
    let cache_ref = cfg.smart_window_selection.then_some(&cache);
    let initial = calculate_obj(design, cfg);
    let mut obj = initial.value;
    let mut stats = OptStats {
        initial_obj: initial.value,
        initial_hpwl: initial.hpwl.nm(),
        initial_alignments: initial.alignments,
        ..OptStats::default()
    };

    for u in &cfg.sequence {
        let bw_sites = ((u.bw_um * 1000.0 / site).round() as i64).max(4);
        let bh_rows = ((u.bh_um * 1000.0 / row).round() as i64).max(1);
        let mut tx = 0i64;
        let mut ty = 0i64;
        let mut d_obj = f64::INFINITY;
        let mut inner = 0usize;
        while d_obj >= cfg.theta && inner < cfg.max_inner_iters {
            let pre_obj = obj;
            // Perturbation pass (f = 0).
            let s1 = dist_opt_cached(
                design,
                &DistOptParams {
                    tx,
                    ty,
                    bw_sites,
                    bh_rows,
                    lx: u.lx,
                    ly: u.ly,
                    flip: false,
                },
                cfg,
                cache_ref,
            );
            // Flip pass (f = 1, no displacement).
            let s2 = dist_opt_cached(
                design,
                &DistOptParams {
                    tx,
                    ty,
                    bw_sites,
                    bh_rows,
                    lx: 0,
                    ly: 0,
                    flip: true,
                },
                cfg,
                cache_ref,
            );
            stats.cells_changed += s1.cells_changed + s2.cells_changed;
            stats.batches_skipped += s1.batches_skipped + s2.batches_skipped;
            // Window shift: expose the previous boundary regions.
            tx = (tx + bw_sites / 2).rem_euclid(bw_sites);
            ty = (ty + (bh_rows / 2).max(1)).rem_euclid(bh_rows.max(1));

            obj = calculate_obj(design, cfg).value;
            let denom = pre_obj.abs().max(1.0);
            d_obj = (pre_obj - obj) / denom;
            inner += 1;
            stats.iterations += 1;
        }
    }

    let fin = calculate_obj(design, cfg);
    stats.final_obj = fin.value;
    stats.final_hpwl = fin.hpwl.nm();
    stats.final_alignments = fin.alignments;
    stats.runtime_ms = start.elapsed().as_millis() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamSet, SolverKind};
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(arch: CellArch, n: usize, seed: u64) -> Design {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    use vm1_netlist::Design;

    #[test]
    fn vm1opt_closedm1_increases_alignments() {
        let mut d = setup(CellArch::ClosedM1, 250, 1);
        let cfg = crate::Vm1Config::closedm1()
            .with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = vm1opt(&mut d, &cfg);
        d.validate_placement().expect("legal after VM1Opt");
        assert!(stats.final_obj <= stats.initial_obj + 1e-6);
        assert!(
            stats.final_alignments > stats.initial_alignments,
            "alignments {} -> {}",
            stats.initial_alignments,
            stats.final_alignments
        );
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn vm1opt_openm1_works() {
        let mut d = setup(CellArch::OpenM1, 250, 2);
        let cfg = crate::Vm1Config::openm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = vm1opt(&mut d, &cfg);
        d.validate_placement().unwrap();
        assert!(stats.final_alignments >= stats.initial_alignments);
    }

    #[test]
    fn zero_alpha_reduces_to_wirelength_optimizer() {
        let mut d = setup(CellArch::ClosedM1, 200, 3);
        let cfg = crate::Vm1Config::closedm1()
            .with_alpha(0.0)
            .with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = vm1opt(&mut d, &cfg);
        assert!(stats.final_hpwl <= stats.initial_hpwl);
    }

    #[test]
    fn multi_set_sequence_runs_all_sets() {
        let mut d = setup(CellArch::ClosedM1, 150, 4);
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![
            ParamSet::new(2.0, 2, 1),
            ParamSet::new(4.0, 2, 0),
        ]);
        let stats = vm1opt(&mut d, &cfg);
        d.validate_placement().unwrap();
        assert!(stats.iterations >= 2, "at least one iteration per set");
    }

    #[test]
    fn greedy_solver_variant_is_legal_but_weaker_or_equal() {
        let mut d_exact = setup(CellArch::ClosedM1, 200, 5);
        let mut d_greedy = d_exact.clone();
        let cfg_e = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let cfg_g = cfg_e.clone().with_solver(SolverKind::Greedy);
        let se = vm1opt(&mut d_exact, &cfg_e);
        let sg = vm1opt(&mut d_greedy, &cfg_g);
        d_greedy.validate_placement().unwrap();
        assert!(se.final_obj <= sg.final_obj + 1e-6, "exact ≤ greedy");
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::ParamSet;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_netlist::Design;
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(seed: u64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(220)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    #[test]
    fn smart_selection_preserves_results_exactly() {
        // The cache only skips deterministic re-solves of identical
        // states, so the final placement must be bit-identical.
        let mut with = setup(11);
        let mut without = with.clone();
        let seq = vec![ParamSet::new(3.0, 3, 1)];
        let mut cfg_on = crate::Vm1Config::closedm1().with_sequence(seq.clone());
        cfg_on.smart_window_selection = true;
        // Force a fixed number of iterations so both runs share the exact
        // schedule and windows repeat (making the cache observable).
        cfg_on.theta = -1.0;
        cfg_on.max_inner_iters = 5;
        let mut cfg_off = cfg_on.clone().with_sequence(seq);
        cfg_off.smart_window_selection = false;
        let s_on = vm1opt(&mut with, &cfg_on);
        let s_off = vm1opt(&mut without, &cfg_off);
        for ((_, a), (_, b)) in with.insts().zip(without.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        assert_eq!(s_on.final_obj, s_off.final_obj);
        assert_eq!(s_off.batches_skipped, 0, "cache off skips nothing");
    }

    #[test]
    fn cache_fires_once_windows_stabilize() {
        use crate::distopt::{dist_opt_cached, DistOptParams, SolveCache};
        let mut d = setup(11);
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let cache = SolveCache::new();
        let p = DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: 62,
            bh_rows: 8,
            lx: 3,
            ly: 1,
            flip: false,
        };
        let mut total_skipped = 0;
        for _ in 0..5 {
            total_skipped += dist_opt_cached(&mut d, &p, &cfg, Some(&cache)).batches_skipped;
        }
        assert!(!cache.is_empty(), "no-gain states get recorded");
        assert!(
            total_skipped > 0,
            "re-solving an identical window grid must hit the cache"
        );
        d.validate_placement().unwrap();
    }
}
