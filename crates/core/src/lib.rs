//! Vertical M1 routing-aware detailed placement — the core contribution of
//! the DAC 2017 paper, reproduced in Rust.
//!
//! Given a placed (and nominally routed) design on a ClosedM1 or OpenM1
//! library, the optimizer perturbs cell positions/orientations within
//! per-cell ranges to minimize
//!
//! ```text
//!   − α · Σ d_pq  (− ε · Σ o_pq, OpenM1)  +  Σ_n β_n · HPWL(n)        (1)/(10)
//! ```
//!
//! where `d_pq` indicates a *vertically alignable* pin pair — same M1
//! track for ClosedM1, ≥ δ horizontal shape overlap for OpenM1 — within γ
//! placement rows, i.e. a potential **direct vertical M1 route**.
//!
//! The implementation follows the paper's structure:
//!
//! * [`problem`] — window-local optimization problems with
//!   single-cell-placement (SCP) candidates (constraints (5)–(9));
//! * [`milp`] — the faithful MILP formulations (constraints (2)–(4) for
//!   ClosedM1, (11)–(14) for OpenM1) solved with the `vm1-milp`
//!   branch-and-bound;
//! * [`solver`] — interchangeable exact window solvers (MILP and a DFS
//!   branch-and-bound exploiting that all auxiliary variables are
//!   determined by the λ assignment) plus a greedy baseline;
//! * [`window`] — layout partitioning and diagonally independent window
//!   selection (Fig. 3) for the distributable optimization;
//! * [`distopt`] — Algorithm 2 (DistOpt), with windows of one diagonal set
//!   solved in parallel;
//! * [`session`] — Algorithm 1 (VM1Opt) behind the [`Vm1Optimizer`]
//!   session API: the metaheuristic outer loop over a queue of parameter
//!   sets with the perturb-then-flip schedule, owning the solve cache and
//!   the metrics sinks (`vm1-obs`).
//!
//! # Examples
//!
//! ```
//! use vm1_core::{ParamSet, Vm1Config, Vm1Optimizer};
//! use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
//! use vm1_place::{place, PlaceConfig};
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let mut d = GeneratorConfig::profile(DesignProfile::M0)
//!     .with_insts(150)
//!     .generate(&lib, 1);
//! place(&mut d, &PlaceConfig::default(), 1);
//! let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(5.0, 3, 1)]);
//! let before = vm1_core::count_alignments(&d, &cfg);
//! let stats = Vm1Optimizer::new(cfg).run(&mut d);
//! assert!(stats.final_alignments >= before);
//! d.validate_placement().unwrap();
//! ```

#![warn(missing_docs)]

pub mod audit;
mod config;
pub mod distopt;
pub mod milp;
mod objective;
mod pairs;
pub mod problem;
mod sched;
pub mod session;
pub mod solver;
pub mod window;

pub use audit::{audit_design, audit_design_with, recount_alignments, DesignAuditReport};
pub use config::{ParamSet, SchedPolicy, SolverKind, Vm1Config};
#[allow(deprecated)]
pub use distopt::{dist_opt, dist_opt_cached};
pub use distopt::{DistOptParams, DistOptStats, SolveCache};
pub use objective::{calculate_obj, count_alignments, overlap_stats, Objective};
pub use pairs::{alignable_pairs, pair_aligned, PinPairs};
#[allow(deprecated)]
pub use session::vm1opt;
pub use session::{OptStats, Vm1Optimizer};
