//! Whole-design audit: placement invariants plus an independent dM1
//! recount.
//!
//! [`audit_design`] combines two static checks:
//!
//! * the geometric placement invariants of
//!   [`vm1_place::verify`] (in-core, no overlap, and — when a
//!   snapshot is supplied — fixed cells unmoved and displacement
//!   bounds);
//! * an **independent recount** of the vertically alignable pin pairs
//!   (Σ d_pq), cross-checked against the count the objective claims.
//!
//! The recount in [`recount_alignments`] deliberately does *not* reuse
//! the production code path (`pairs::alignable_pairs` +
//! `pairs::pair_aligned` driving `objective::calculate_obj`): it walks
//! the nets itself, applies the paper's eligibility rules from scratch,
//! and — for ClosedM1 — counts by grouping pins into exact x-columns
//! instead of testing pairs one by one. It shares only the `vm1-netlist`
//! geometric primitives (`pin_position`, `pin_x_range`), so a bug in the
//! pair enumeration, the γ/δ tests, or the objective bookkeeping makes
//! the two counts disagree — which is exactly what the audit reports.
//!
//! `Vm1Optimizer` runs these checks behind `debug_assert!`-gated
//! checkpoints at every pass boundary; `vm1dp --audit` runs them
//! unconditionally and maps the outcome to structured exit codes.

use crate::objective::calculate_obj;
use crate::Vm1Config;
use vm1_netlist::{Design, NetPin};
use vm1_obs::{Counter, MetricsHandle, Stage};
use vm1_place::verify::{verify_with, DisplacementBounds, PlacementSnapshot, VerifyReport};
use vm1_tech::{CellArch, Layer};

/// Result of a whole-design audit.
#[derive(Clone, Debug)]
#[must_use = "an audit report is only useful if its findings are inspected"]
pub struct DesignAuditReport {
    /// Geometric invariant check results.
    pub placement: VerifyReport,
    /// Σ d_pq recomputed independently of the objective code path.
    pub recounted_dm1: usize,
    /// Σ d_pq as claimed by `calculate_obj` on the same placement.
    pub reported_dm1: usize,
}

impl DesignAuditReport {
    /// Whether the two dM1 counts agree.
    #[must_use]
    pub fn dm1_consistent(&self) -> bool {
        self.recounted_dm1 == self.reported_dm1
    }

    /// Whether every placement invariant holds *and* the dM1 counts
    /// agree.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.placement.is_clean() && self.dm1_consistent()
    }

    /// One line per finding (empty string when clean).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = self.placement.summary();
        if !self.dm1_consistent() {
            out.push_str(&format!(
                "dM1 mismatch: independent recount found {} alignable pairs, \
                 objective reported {}\n",
                self.recounted_dm1, self.reported_dm1
            ));
        }
        out
    }
}

/// Audits `design`: placement invariants plus the dM1 cross-check.
/// Equivalent to [`audit_design_with`] with a disabled metrics handle.
pub fn audit_design(design: &Design, cfg: &Vm1Config) -> DesignAuditReport {
    audit_design_with(design, cfg, &MetricsHandle::disabled())
}

/// [`audit_design`] with metrics: wall-clock goes to
/// [`Stage::Audit`]; a dM1 mismatch counts as one
/// [`Counter::AuditErrors`].
pub fn audit_design_with(
    design: &Design,
    cfg: &Vm1Config,
    metrics: &MetricsHandle,
) -> DesignAuditReport {
    let placement = verify_with(design, None, None, metrics);
    let (recounted, reported) = metrics.timed(Stage::Audit, || {
        (
            recount_alignments(design, cfg),
            calculate_obj(design, cfg).alignments,
        )
    });
    if recounted != reported {
        metrics.incr(Counter::AuditErrors);
    }
    DesignAuditReport {
        placement,
        recounted_dm1: recounted,
        reported_dm1: reported,
    }
}

/// Recounts the vertically alignable pin pairs (Σ d_pq) of the current
/// placement from first principles (see the module docs for what makes
/// this count independent of the objective's).
#[must_use]
pub fn recount_alignments(design: &Design, cfg: &Vm1Config) -> usize {
    let arch = design.library().arch();
    let tech = design.library().tech();
    let y_span = tech.row_height * cfg.gamma;
    match arch {
        CellArch::Conv12T => 0,
        CellArch::ClosedM1 => {
            // Group each net's M1 pins into exact x-columns; only pins
            // sharing a column can align, so count the pairs within γ
            // rows inside each column.
            let mut count = 0usize;
            for (_, net) in design.nets() {
                if net.pins.len() > cfg.max_net_pins {
                    continue;
                }
                let mut pins: Vec<(usize, i64, i64)> = Vec::new(); // (inst, x, y)
                for &np in &net.pins {
                    if let NetPin::Inst(pr) = np {
                        if design.macro_pin(pr).shape.layer == Layer::M1 {
                            let p = design.pin_position(pr);
                            pins.push((pr.inst.0, p.x.nm(), p.y.nm()));
                        }
                    }
                }
                pins.sort_unstable_by_key(|&(_, x, y)| (x, y));
                let mut col_start = 0;
                for i in 1..=pins.len() {
                    if i == pins.len() || pins[i].1 != pins[col_start].1 {
                        let col = &pins[col_start..i];
                        for (a_idx, a) in col.iter().enumerate() {
                            for b in &col[a_idx + 1..] {
                                if a.0 != b.0 && (a.2 - b.2).abs() <= y_span.nm() {
                                    count += 1;
                                }
                            }
                        }
                        col_start = i;
                    }
                }
            }
            count
        }
        CellArch::OpenM1 => {
            // Pairwise shape-overlap test over each net's M0 pins.
            let mut count = 0usize;
            for (_, net) in design.nets() {
                if net.pins.len() > cfg.max_net_pins {
                    continue;
                }
                let mut pins: Vec<(usize, vm1_geom::Interval, i64)> = Vec::new();
                for &np in &net.pins {
                    if let NetPin::Inst(pr) = np {
                        if design.macro_pin(pr).shape.layer == Layer::M0 {
                            pins.push((
                                pr.inst.0,
                                design.pin_x_range(pr),
                                design.pin_position(pr).y.nm(),
                            ));
                        }
                    }
                }
                for (a_idx, a) in pins.iter().enumerate() {
                    for b in &pins[a_idx + 1..] {
                        if a.0 != b.0
                            && (a.2 - b.2).abs() <= y_span.nm()
                            && a.1.overlap_len(b.1) >= cfg.delta
                        {
                            count += 1;
                        }
                    }
                }
            }
            count
        }
    }
}

/// Runs the debug-build placement checkpoint: verifies `design` against
/// `snapshot` under `bounds` and panics with the full violation list if
/// any invariant fails. Compiled to nothing in release builds; the
/// passed metrics handle sees the check counts only in debug builds, so
/// counter values stay deterministic within a build profile.
#[inline]
pub fn debug_checkpoint(
    design: &Design,
    snapshot: &PlacementSnapshot,
    bounds: Option<DisplacementBounds>,
    metrics: &MetricsHandle,
    context: &str,
) {
    if cfg!(debug_assertions) {
        let r = verify_with(design, Some(snapshot), bounds, metrics);
        assert!(
            r.is_clean(),
            "placement checkpoint failed {context}:\n{}",
            r.summary()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count_alignments;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::Library;

    fn setup(arch: CellArch, n: usize, seed: u64) -> Design {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    #[test]
    fn recount_matches_objective_closedm1() {
        let cfg = Vm1Config::closedm1();
        for seed in 1..=4 {
            let d = setup(CellArch::ClosedM1, 200, seed);
            assert_eq!(
                recount_alignments(&d, &cfg),
                count_alignments(&d, &cfg),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn recount_matches_objective_openm1() {
        let cfg = Vm1Config::openm1();
        for seed in 1..=4 {
            let d = setup(CellArch::OpenM1, 200, seed);
            assert_eq!(
                recount_alignments(&d, &cfg),
                count_alignments(&d, &cfg),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn recount_is_zero_for_conv12t() {
        let cfg = Vm1Config::closedm1();
        let d = setup(CellArch::Conv12T, 150, 1);
        assert_eq!(recount_alignments(&d, &cfg), 0);
    }

    #[test]
    fn legal_design_audits_clean() {
        let cfg = Vm1Config::closedm1();
        let d = setup(CellArch::ClosedM1, 200, 2);
        let r = audit_design(&d, &cfg);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn detects_seeded_dm1_miscount() {
        // A mis-weighted config pair simulates an objective whose claimed
        // dM1 disagrees with the placement: recount with γ = 3 against a
        // report computed with γ = 0 (which suppresses cross-row pairs).
        let cfg = Vm1Config::closedm1();
        let mut broken = cfg.clone();
        broken.gamma = 0;
        let d = setup(CellArch::ClosedM1, 250, 3);
        let honest = recount_alignments(&d, &cfg);
        let suppressed = calculate_obj(&d, &broken).alignments;
        assert!(
            honest > suppressed,
            "seeded miscount must be visible: {honest} vs {suppressed}"
        );
    }

    #[test]
    fn audit_flags_corrupt_placement() {
        use vm1_netlist::InstId;
        let cfg = Vm1Config::closedm1();
        let mut d = setup(CellArch::ClosedM1, 150, 4);
        let orient = d.inst(InstId(0)).orient;
        d.move_inst(InstId(0), -5, 0, orient);
        let r = audit_design(&d, &cfg);
        assert!(!r.is_clean());
        assert!(!r.placement.is_clean());
    }

    #[test]
    fn audit_metrics_flow_through() {
        use std::sync::Arc;
        use vm1_obs::Telemetry;
        let cfg = Vm1Config::closedm1();
        let d = setup(CellArch::ClosedM1, 150, 5);
        let sink = Arc::new(Telemetry::new());
        let metrics = MetricsHandle::of(sink.clone());
        let r = audit_design_with(&d, &cfg, &metrics);
        assert!(r.is_clean(), "{}", r.summary());
        let report = sink.report();
        assert!(report.counter(Counter::AuditPlacementChecks) > 0);
        assert_eq!(report.counter(Counter::AuditErrors), 0);
        assert!(report.stage_calls(Stage::Audit) >= 1);
    }
}
