//! Window solvers: exact DFS branch-and-bound, faithful MILP, and greedy.
//!
//! All three consume a [`WindowProblem`] and return a candidate assignment
//! that is legal and no worse than the input placement. The DFS and MILP
//! solvers find the same optimum (cross-checked in tests); the DFS solver
//! exploits the fact that every auxiliary MILP variable (net bounds,
//! `d_pq`, `o_pq`) is uniquely determined by the λ assignment, so the
//! search space is just one candidate choice per cell with admissible
//! bounds.

use crate::milp::{build_milp, extract_assignment, warm_start};
use crate::problem::{End, WindowProblem};
use crate::{SolverKind, Vm1Config};
use vm1_milp::{solve as milp_solve, solve_certified, SolveParams};
use vm1_obs::{Counter, MetricsHandle, Stage};

/// Solves a window problem with the engine selected in `cfg`.
///
/// The returned assignment is always legal and its objective never exceeds
/// the input placement's.
#[must_use]
pub fn solve_window(prob: &WindowProblem, cfg: &Vm1Config) -> Vec<usize> {
    solve_window_with(prob, cfg, &MetricsHandle::disabled())
}

/// [`solve_window`] with a metrics sink: records solver-engine counters
/// ([`Counter::DfsNodes`], [`Counter::GreedyPasses`], the MILP family) and
/// the MILP build/solve stage timers.
#[must_use]
pub fn solve_window_with(
    prob: &WindowProblem,
    cfg: &Vm1Config,
    metrics: &MetricsHandle,
) -> Vec<usize> {
    if prob.cells.is_empty() {
        return Vec::new();
    }
    let result = match cfg.solver {
        SolverKind::Dfs => {
            let (assign, nodes) = dfs_solve_counted(prob, cfg.max_nodes);
            metrics.add(Counter::DfsNodes, nodes as u64);
            assign
        }
        SolverKind::Milp => milp_window_solve_with(prob, cfg, metrics),
        SolverKind::Greedy => {
            let (assign, passes) = greedy_solve_counted(prob, 4);
            metrics.add(Counter::GreedyPasses, passes as u64);
            assign
        }
    };
    // Safety net: never return something worse or illegal.
    let cur = prob.current_assign();
    if prob.is_legal(&result) && prob.eval(&result) <= prob.eval(&cur) + 1e-9 {
        result
    } else {
        cur
    }
}

// ---------------------------------------------------------------------------
// MILP
// ---------------------------------------------------------------------------

/// Solves the window through the faithful MILP formulation.
#[must_use]
pub fn milp_window_solve(prob: &WindowProblem, cfg: &Vm1Config) -> Vec<usize> {
    milp_window_solve_with(prob, cfg, &MetricsHandle::disabled())
}

/// [`milp_window_solve`] with a metrics sink. The B&B statistics
/// (nodes, prunes, LP solves, pivots, presolve reductions) are emitted by
/// `vm1-milp` itself through the handle passed in [`SolveParams`];
/// this layer adds the build/solve timers and the fallback counter.
#[must_use]
pub fn milp_window_solve_with(
    prob: &WindowProblem,
    cfg: &Vm1Config,
    metrics: &MetricsHandle,
) -> Vec<usize> {
    let (model, vars) = metrics.timed(Stage::MilpBuild, || build_milp(prob));
    // Pre-solve checkpoint: the emitted window model must lint clean of
    // structural errors (infeasible bounds, malformed SOS1 groups).
    #[cfg(debug_assertions)]
    {
        let lint = vm1_milp::audit::audit_with(&model, metrics);
        assert!(
            !lint.has_errors(),
            "window MILP failed the model lint:\n{}",
            lint.summary()
        );
    }
    let cur = prob.current_assign();
    let params = SolveParams {
        max_nodes: cfg.max_nodes,
        time_limit_ms: 30_000,
        abs_gap: 1e-6,
        warm_start: Some(warm_start(prob, &model, &vars, &cur)),
        metrics: metrics.clone(),
    };
    let sol = if cfg.certify {
        // Proof-carrying solve: record a certificate alongside the B&B
        // run and replay it through the independent exact-arithmetic
        // checker. A rejected certificate means the solve cannot be
        // trusted, so the window keeps its input placement.
        let certified = metrics.timed(Stage::MilpSolve, || solve_certified(&model, &params));
        metrics.incr(Counter::CertRecorded);
        let report = metrics.timed(Stage::Certify, || {
            vm1_certify::check(&model, &certified.certificate)
        });
        if report.accepted {
            metrics.incr(Counter::CertVerified);
        } else {
            metrics.incr(Counter::CertRejected);
            metrics.incr(Counter::MilpFallbacks);
            return cur;
        }
        certified.solution
    } else {
        metrics.timed(Stage::MilpSolve, || milp_solve(&model, &params))
    };
    if sol.has_solution() {
        extract_assignment(&vars, &sol.values)
    } else {
        metrics.incr(Counter::MilpFallbacks);
        cur
    }
}

// ---------------------------------------------------------------------------
// Exact DFS branch-and-bound
// ---------------------------------------------------------------------------

struct DfsState<'a> {
    prob: &'a WindowProblem,
    /// Cell order (most constrained first).
    order: Vec<usize>,
    assign: Vec<usize>,
    best_assign: Vec<usize>,
    best_obj: f64,
    nodes: usize,
    max_nodes: usize,
    /// Per pair: number of movable, not-yet-assigned endpoints.
    pair_open: Vec<u8>,
    /// Sum of max_bonus over open pairs (admissible bonus bound).
    open_bonus: f64,
    /// Bonus collected from decided pairs.
    done_bonus: f64,
    /// Per net: current bbox (fixed ∪ assigned pins) and its HPWL.
    net_bb: Vec<Option<(i64, i64, i64, i64)>>,
    hpwl_partial: f64,
    /// Which pairs/nets touch each cell.
    cell_pairs: Vec<Vec<usize>>,
    cell_nets: Vec<Vec<usize>>,
    /// Spans of assigned cells for legality.
    spans: Vec<Option<(i64, i64, i64)>>,
}

/// Exact branch-and-bound over candidate assignments.
#[must_use]
pub fn dfs_solve(prob: &WindowProblem, max_nodes: usize) -> Vec<usize> {
    dfs_solve_counted(prob, max_nodes).0
}

/// [`dfs_solve`] also returning the number of search nodes explored.
fn dfs_solve_counted(prob: &WindowProblem, max_nodes: usize) -> (Vec<usize>, usize) {
    let n = prob.cells.len();
    let cur = prob.current_assign();

    // Cell → pairs / nets indices.
    let mut cell_pairs = vec![Vec::new(); n];
    let mut pair_open = vec![0u8; prob.pairs.len()];
    for (pi, pair) in prob.pairs.iter().enumerate() {
        for e in [&pair.a, &pair.b] {
            if let End::Movable { cell, .. } = *e {
                cell_pairs[cell].push(pi);
                pair_open[pi] += 1;
            }
        }
    }
    let mut cell_nets = vec![Vec::new(); n];
    for (ni, net) in prob.nets.iter().enumerate() {
        for &(cell, _) in &net.movable {
            if !cell_nets[cell].contains(&ni) {
                cell_nets[cell].push(ni);
            }
        }
    }

    let open_bonus: f64 = prob.pairs.iter().map(|p| p.max_bonus).sum();
    let net_bb: Vec<Option<(i64, i64, i64, i64)>> = prob.nets.iter().map(|nt| nt.fixed).collect();
    let hpwl_partial: f64 = prob
        .nets
        .iter()
        .map(|nt| {
            nt.fixed.map_or(0.0, |(x0, y0, x1, y1)| {
                nt.weight * ((x1 - x0) + (y1 - y0)) as f64
            })
        })
        .sum();

    // Order: most constrained (fewest candidates) first.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&c| prob.cells[c].cands.len());

    let mut st = DfsState {
        prob,
        order,
        assign: cur.clone(),
        best_assign: cur.clone(),
        best_obj: prob.eval(&cur),
        nodes: 0,
        max_nodes,
        pair_open,
        open_bonus,
        done_bonus: 0.0,
        net_bb,
        hpwl_partial,
        cell_pairs,
        cell_nets,
        spans: vec![None; n],
    };
    dfs_recurse(&mut st, 0);
    let nodes = st.nodes;
    (st.best_assign, nodes)
}

fn dfs_recurse(st: &mut DfsState<'_>, depth: usize) {
    if st.nodes >= st.max_nodes {
        return;
    }
    if depth == st.order.len() {
        let obj = st.hpwl_partial - st.done_bonus;
        if obj < st.best_obj - 1e-9 {
            st.best_obj = obj;
            st.best_assign = st.assign.clone();
        }
        return;
    }
    let cell = st.order[depth];
    let n_cands = st.prob.cells[cell].cands.len();

    // Candidate order: cheapest local cost first for early incumbents.
    let mut cand_order: Vec<(f64, usize)> = (0..n_cands)
        .map(|k| (local_score(st, cell, k), k))
        .collect();
    cand_order.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    for (_, k) in cand_order {
        st.nodes += 1;
        if st.nodes >= st.max_nodes {
            return;
        }
        let cand = st.prob.cells[cell].cands[k];
        // Legality against assigned cells.
        let span = (cand.row, cand.site, cand.site + st.prob.cells[cell].width);
        let clash = st
            .spans
            .iter()
            .flatten()
            .any(|&(r, s0, s1)| r == span.0 && s1 > span.1 && span.2 > s0);
        if clash {
            continue;
        }

        // ---- apply -----------------------------------------------------
        st.assign[cell] = k;
        st.spans[cell] = Some(span);
        #[allow(clippy::type_complexity)] // (net, old bbox, old weighted HPWL)
        let mut undo_bb: Vec<(usize, Option<(i64, i64, i64, i64)>, f64)> = Vec::new();
        for &ni in &st.cell_nets[cell].clone() {
            let net = &st.prob.nets[ni];
            let old = st.net_bb[ni];
            let old_hp = old.map_or(0.0, |(x0, y0, x1, y1)| {
                net.weight * ((x1 - x0) + (y1 - y0)) as f64
            });
            // Grow by every pin of this cell on this net.
            let mut bb = old;
            for &(c2, slot) in &net.movable {
                if c2 == cell {
                    let g = st.prob.pin_geo[cell][k][slot];
                    bb = Some(match bb {
                        None => (g.x, g.y, g.x, g.y),
                        Some((x0, y0, x1, y1)) => {
                            (x0.min(g.x), y0.min(g.y), x1.max(g.x), y1.max(g.y))
                        }
                    });
                }
            }
            let new_hp = bb.map_or(0.0, |(x0, y0, x1, y1)| {
                net.weight * ((x1 - x0) + (y1 - y0)) as f64
            });
            st.net_bb[ni] = bb;
            st.hpwl_partial += new_hp - old_hp;
            undo_bb.push((ni, old, old_hp - new_hp));
        }
        let mut undo_pairs: Vec<(usize, f64)> = Vec::new();
        for &pi in &st.cell_pairs[cell].clone() {
            st.pair_open[pi] -= 1;
            if st.pair_open[pi] == 0 {
                // Pair decided: replace potential with actual bonus.
                let actual = st.prob.pair_bonus(&st.prob.pairs[pi], &st.assign);
                st.open_bonus -= st.prob.pairs[pi].max_bonus;
                st.done_bonus += actual;
                undo_pairs.push((pi, actual));
            }
        }

        // ---- bound & recurse ---------------------------------------------
        let bound = st.hpwl_partial - st.done_bonus - st.open_bonus;
        if bound < st.best_obj - 1e-9 {
            dfs_recurse(st, depth + 1);
        }

        // ---- undo ---------------------------------------------------------
        for (pi, actual) in undo_pairs.into_iter().rev() {
            st.done_bonus -= actual;
            st.open_bonus += st.prob.pairs[pi].max_bonus;
        }
        for &pi in &st.cell_pairs[cell] {
            st.pair_open[pi] += 1;
        }
        for (ni, old, hp_delta) in undo_bb.into_iter().rev() {
            st.net_bb[ni] = old;
            st.hpwl_partial += hp_delta;
        }
        st.spans[cell] = None;
    }
    st.assign[cell] = st.prob.cells[cell].current;
}

/// Heuristic per-candidate score used only for move ordering.
fn local_score(st: &DfsState<'_>, cell: usize, k: usize) -> f64 {
    let prob = st.prob;
    let mut score = 0.0;
    for &ni in &st.cell_nets[cell] {
        let net = &prob.nets[ni];
        let mut bb = st.net_bb[ni];
        for &(c2, slot) in &net.movable {
            if c2 == cell {
                let g = prob.pin_geo[cell][k][slot];
                bb = Some(match bb {
                    None => (g.x, g.y, g.x, g.y),
                    Some((x0, y0, x1, y1)) => (x0.min(g.x), y0.min(g.y), x1.max(g.x), y1.max(g.y)),
                });
            }
        }
        score += bb.map_or(0.0, |(x0, y0, x1, y1)| {
            net.weight * ((x1 - x0) + (y1 - y0)) as f64
        });
    }
    // Reward candidates that immediately decide pairs favourably.
    for &pi in &st.cell_pairs[cell] {
        if st.pair_open[pi] == 1 {
            let mut tmp = st.assign.clone();
            tmp[cell] = k;
            score -= prob.pair_bonus(&prob.pairs[pi], &tmp);
        }
    }
    score
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

/// Greedy coordinate descent: repeatedly give each cell its locally best
/// candidate. Baseline/ablation engine.
#[must_use]
pub fn greedy_solve(prob: &WindowProblem, passes: usize) -> Vec<usize> {
    greedy_solve_counted(prob, passes).0
}

/// [`greedy_solve`] also returning the number of passes executed.
fn greedy_solve_counted(prob: &WindowProblem, passes: usize) -> (Vec<usize>, usize) {
    let mut assign = prob.current_assign();
    let mut executed = 0usize;
    for _ in 0..passes {
        executed += 1;
        let mut improved = false;
        for cell in 0..prob.cells.len() {
            let mut best_k = assign[cell];
            let mut best_v = prob.eval(&assign);
            let orig = assign[cell];
            for k in 0..prob.cells[cell].cands.len() {
                if k == orig {
                    continue;
                }
                assign[cell] = k;
                if prob.is_legal(&assign) {
                    let v = prob.eval(&assign);
                    if v < best_v - 1e-9 {
                        best_v = v;
                        best_k = k;
                    }
                }
            }
            assign[cell] = best_k;
            improved |= best_k != orig;
        }
        if !improved {
            break;
        }
    }
    (assign, executed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Overrides;
    use crate::window::Window;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_netlist::Design;
    use vm1_place::{place, PlaceConfig, RowMap};
    use vm1_tech::{CellArch, Library};

    fn problem(arch: CellArch, n_cells: usize, seed: u64) -> WindowProblem {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        let rm = RowMap::build(&d);
        let win = Window {
            site0: 0,
            row0: 0,
            w_sites: d.sites_per_row.min(36),
            h_rows: d.num_rows.min(4),
        };
        let movable: Vec<_> = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new())
            .into_iter()
            .take(n_cells)
            .collect();
        WindowProblem::build(&d, &rm, win, &movable, 2, 1, false, &cfg, &Overrides::new())
    }

    /// Exhaustive optimum by enumerating all legal assignments.
    fn brute_force(prob: &WindowProblem) -> f64 {
        fn rec(prob: &WindowProblem, assign: &mut Vec<usize>, cell: usize, best: &mut f64) {
            if cell == prob.cells.len() {
                if prob.is_legal(assign) {
                    *best = best.min(prob.eval(assign));
                }
                return;
            }
            for k in 0..prob.cells[cell].cands.len() {
                assign[cell] = k;
                rec(prob, assign, cell + 1, best);
            }
        }
        let mut best = f64::INFINITY;
        let mut assign = prob.current_assign();
        rec(prob, &mut assign, 0, &mut best);
        best
    }

    #[test]
    fn dfs_matches_brute_force() {
        for seed in [1, 2, 3] {
            let prob = problem(CellArch::ClosedM1, 3, seed);
            if prob.cells.len() < 2 {
                continue;
            }
            let expect = brute_force(&prob);
            let got = dfs_solve(&prob, 1_000_000);
            assert!(prob.is_legal(&got));
            assert!(
                (prob.eval(&got) - expect).abs() < 1e-6,
                "seed {seed}: dfs {} vs brute {expect}",
                prob.eval(&got)
            );
        }
    }

    #[test]
    fn milp_matches_dfs() {
        for arch in [CellArch::ClosedM1, CellArch::OpenM1] {
            let prob = problem(arch, 3, 4);
            if prob.cells.len() < 2 {
                continue;
            }
            let cfg = if arch == CellArch::OpenM1 {
                Vm1Config::openm1()
            } else {
                Vm1Config::closedm1()
            };
            let dfs = dfs_solve(&prob, 1_000_000);
            let milp = milp_window_solve(&prob, &cfg);
            assert!(prob.is_legal(&milp), "{arch}: milp assignment legal");
            assert!(
                (prob.eval(&dfs) - prob.eval(&milp)).abs() < 1e-6,
                "{arch}: dfs {} vs milp {}",
                prob.eval(&dfs),
                prob.eval(&milp)
            );
        }
    }

    #[test]
    fn certified_milp_matches_dfs_and_records_counters() {
        use std::sync::Arc;
        use vm1_obs::Telemetry;
        let prob = problem(CellArch::ClosedM1, 3, 4);
        if prob.cells.len() < 2 {
            return;
        }
        let cfg = Vm1Config::closedm1()
            .with_solver(SolverKind::Milp)
            .with_certify(true);
        let sink = Arc::new(Telemetry::new());
        let metrics = MetricsHandle::of(sink.clone());
        let a = solve_window_with(&prob, &cfg, &metrics);
        assert!(prob.is_legal(&a));
        let dfs = dfs_solve(&prob, 1_000_000);
        assert!(
            (prob.eval(&a) - prob.eval(&dfs)).abs() < 1e-6,
            "certified milp {} vs dfs {}",
            prob.eval(&a),
            prob.eval(&dfs)
        );
        let report = sink.report();
        assert!(report.counter(Counter::CertRecorded) >= 1);
        assert_eq!(
            report.counter(Counter::CertVerified),
            report.counter(Counter::CertRecorded),
            "every recorded certificate must verify"
        );
        assert_eq!(report.counter(Counter::CertRejected), 0);
    }

    #[test]
    fn greedy_never_worse_than_input() {
        let prob = problem(CellArch::ClosedM1, 5, 5);
        let cur = prob.current_assign();
        let greedy = greedy_solve(&prob, 4);
        assert!(prob.is_legal(&greedy));
        assert!(prob.eval(&greedy) <= prob.eval(&cur) + 1e-9);
    }

    #[test]
    fn dfs_improves_or_equals_greedy() {
        let prob = problem(CellArch::ClosedM1, 5, 6);
        let dfs = dfs_solve(&prob, 1_000_000);
        let greedy = greedy_solve(&prob, 4);
        assert!(prob.eval(&dfs) <= prob.eval(&greedy) + 1e-9);
    }

    #[test]
    fn solve_window_dispatch_respects_safety_net() {
        let prob = problem(CellArch::ClosedM1, 5, 7);
        for kind in [SolverKind::Dfs, SolverKind::Milp, SolverKind::Greedy] {
            let cfg = Vm1Config::closedm1().with_solver(kind);
            let a = solve_window(&prob, &cfg);
            assert!(prob.is_legal(&a), "{kind:?}");
            assert!(prob.eval(&a) <= prob.eval(&prob.current_assign()) + 1e-9);
        }
    }

    #[test]
    fn node_cap_still_returns_legal() {
        let prob = problem(CellArch::ClosedM1, 6, 8);
        let a = dfs_solve(&prob, 10); // absurdly small budget
        assert!(prob.is_legal(&a));
        assert!(prob.eval(&a) <= prob.eval(&prob.current_assign()) + 1e-9);
    }

    #[test]
    fn hand_case_dfs_aligns_pins() {
        // Two inverters, one net, plenty of room: the optimum must align
        // ZN over A (one alignment) without inflating HPWL.
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("t", lib, 3, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        d.move_inst(a, 5, 0, vm1_geom::Orient::North);
        d.move_inst(b, 9, 1, vm1_geom::Orient::North); // off by 3 sites
        let cfg = Vm1Config::closedm1();
        let rm = RowMap::build(&d);
        let win = Window {
            site0: 0,
            row0: 0,
            w_sites: 30,
            h_rows: 3,
        };
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 4, 1, false, &cfg, &Overrides::new());
        let got = dfs_solve(&prob, 100_000);
        // Exactly one pair, and the optimal assignment realizes it.
        assert_eq!(prob.pairs.len(), 1);
        assert_eq!(prob.pair_bonus(&prob.pairs[0], &got), cfg.alpha);
    }
}
