//! Window-local optimization problem with single-cell-placement (SCP)
//! candidates.
//!
//! A [`WindowProblem`] captures one window of the distributable
//! optimization: the movable cells with their candidate `(site, row,
//! orient)` placements (the λ variables of constraints (5)–(8)), the fixed
//! occupancy (constraint (9)), the touched nets with the bounding box of
//! their non-movable pins (constraints (2)–(3)), and the eligible pin
//! pairs (constraints (4) / (11)–(14)). Every solver — MILP, exact DFS,
//! greedy — consumes this structure, which guarantees they optimize the
//! identical objective.

use crate::pairs::{alignable_pairs, pin_layer};
use crate::window::Window;
use crate::Vm1Config;
use std::collections::{BTreeSet, HashMap};
use vm1_geom::Orient;
use vm1_netlist::{Design, InstId, NetId, NetPin, PinRef};
use vm1_place::RowMap;
use vm1_tech::CellArch;

/// A candidate placement of one cell (one λ variable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Left edge, in sites.
    pub site: i64,
    /// Placement row.
    pub row: i64,
    /// Orientation.
    pub orient: Orient,
}

/// A movable cell of the window.
#[derive(Clone, Debug)]
pub struct MovableCell {
    /// The design instance.
    pub inst: InstId,
    /// Width in sites.
    pub width: i64,
    /// Candidate placements (always contains the current placement).
    pub cands: Vec<Candidate>,
    /// Index of the current placement within `cands`.
    pub current: usize,
}

/// Absolute geometry of one pin under one candidate (or of a fixed pin).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PinGeo {
    /// Pin centre x (nm).
    pub x: i64,
    /// Pin centre y (nm).
    pub y: i64,
    /// Pin shape x-extent (nm).
    pub x_lo: i64,
    /// Pin shape x-extent (nm).
    pub x_hi: i64,
}

/// One endpoint of an alignable pair.
#[derive(Clone, Copy, Debug)]
pub enum End {
    /// Pin `slot` of movable cell `cell`.
    Movable {
        /// Index into [`WindowProblem::cells`].
        cell: usize,
        /// Pin slot of that cell (see [`WindowProblem::pin_geo`]).
        slot: usize,
    },
    /// A pin whose position cannot change in this window.
    Fixed(PinGeo),
}

/// A net restricted to the window.
#[derive(Clone, Debug)]
pub struct LocalNet {
    /// β weight.
    pub weight: f64,
    /// Bounding box of the net's immovable pins, `(x0, y0, x1, y1)` in nm;
    /// `None` if every pin is movable.
    pub fixed: Option<(i64, i64, i64, i64)>,
    /// `(cell index, pin slot)` of each movable pin.
    pub movable: Vec<(usize, usize)>,
    /// Originating design net.
    pub net: NetId,
}

/// An eligible `d_pq` pair.
#[derive(Clone, Debug)]
pub struct LocalPair {
    /// First endpoint.
    pub a: End,
    /// Second endpoint.
    pub b: End,
    /// Largest bonus this pair can contribute (α + ε·max overlap), used
    /// for admissible pruning.
    pub max_bonus: f64,
}

/// The window subproblem. See the module docs.
#[derive(Clone, Debug)]
pub struct WindowProblem {
    /// Movable cells.
    pub cells: Vec<MovableCell>,
    /// Per cell, per candidate, per pin slot: absolute pin geometry.
    pub pin_geo: Vec<Vec<Vec<PinGeo>>>,
    /// Nets touching movable cells.
    pub nets: Vec<LocalNet>,
    /// Eligible pin pairs.
    pub pairs: Vec<LocalPair>,
    /// The window.
    pub window: Window,
    /// Occupied window sites (row-major `(row - row0) * w_sites + (site -
    /// site0)`), counting every non-movable cell.
    pub occupied: Vec<bool>,
    /// α (nm per alignment).
    pub alpha: f64,
    /// ε (per nm of overlap beyond δ).
    pub epsilon: f64,
    /// γ·H in nm.
    pub gamma_span: i64,
    /// δ in nm.
    pub delta: i64,
    /// Whether alignment requires exact x equality (ClosedM1) rather than
    /// ≥ δ overlap (OpenM1).
    pub exact: bool,
}

/// Placement override map used when a window is solved in batches: cells
/// moved by earlier batches keep their new positions while later batches
/// are built.
pub type Overrides = HashMap<InstId, Candidate>;

/// Reusable buffers for window-problem construction. Each pool worker
/// owns one scratch and threads it through every window it solves, so the
/// hot path ([`WindowProblem::movable_in_window_into`] and
/// [`WindowProblem::build_with_scratch`]) allocates only once per worker
/// instead of once per window.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Row-occupant buffer ([`RowMap::occupants_into`]).
    ids: Vec<InstId>,
    /// Output buffer of [`WindowProblem::movable_in_window_into`].
    pub(crate) movable: Vec<InstId>,
    /// Instance de-duplication set of the occupancy scan. Ordered
    /// (`BTreeSet`) so the fixed-occupancy marking loop iterates in
    /// instance order — occupancy marking is commutative, but rule D1
    /// requires unordered-container iteration to be provably fixed.
    seen: BTreeSet<InstId>,
}

impl SolveScratch {
    /// Creates an empty scratch.
    #[must_use]
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }
}

fn view_pos(design: &Design, ov: &Overrides, inst: InstId) -> Candidate {
    ov.get(&inst).copied().unwrap_or_else(|| {
        let i = design.inst(inst);
        Candidate {
            site: i.site,
            row: i.row,
            orient: i.orient,
        }
    })
}

fn geo_of(design: &Design, cand: Candidate, pr: PinRef) -> PinGeo {
    let tech = design.library().tech();
    let inst = design.inst(pr.inst);
    let cell = design.library().cell(inst.cell);
    let pin = &cell.pins[pr.pin];
    let ox = tech.site_to_x(cand.site).nm();
    let oy = tech.row_to_y(cand.row).nm();
    let (lo, hi) =
        cand.orient
            .apply_x_range(pin.shape.rect.lo().x, pin.shape.rect.hi().x, cell.width);
    PinGeo {
        x: ox + pin.x_center(cand.orient, cell.width).nm(),
        y: oy + pin.y_center().nm(),
        x_lo: ox + lo.nm(),
        x_hi: ox + hi.nm(),
    }
}

impl WindowProblem {
    /// Builds the subproblem for `window`.
    ///
    /// `movable` lists the instances this problem may move (already
    /// filtered to cells wholly inside the window); every other instance
    /// intersecting the window contributes fixed occupancy and fixed pin
    /// positions. `overrides` supplies updated positions from earlier
    /// batches of the same window.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        design: &Design,
        rowmap: &RowMap,
        window: Window,
        movable: &[InstId],
        lx: i64,
        ly: i64,
        flip: bool,
        cfg: &Vm1Config,
        overrides: &Overrides,
    ) -> WindowProblem {
        let mut scratch = SolveScratch::default();
        WindowProblem::build_with_scratch(
            design,
            rowmap,
            window,
            movable,
            lx,
            ly,
            flip,
            cfg,
            overrides,
            &mut scratch,
        )
    }

    /// [`WindowProblem::build`] with caller-owned scratch buffers (see
    /// [`SolveScratch`]); the hot path of the worker pool.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_scratch(
        design: &Design,
        rowmap: &RowMap,
        window: Window,
        movable: &[InstId],
        lx: i64,
        ly: i64,
        flip: bool,
        cfg: &Vm1Config,
        overrides: &Overrides,
        scratch: &mut SolveScratch,
    ) -> WindowProblem {
        let tech = design.library().tech();
        let arch = design.library().arch();
        let exact = arch.requires_exact_alignment();
        let gamma_span = (tech.row_height * cfg.gamma).nm();
        let delta = cfg.delta.nm();

        let movable_set: HashMap<InstId, usize> =
            movable.iter().enumerate().map(|(k, &id)| (id, k)).collect();

        // ---- occupancy -------------------------------------------------
        let mut occupied = vec![false; (window.w_sites * window.h_rows) as usize];
        let mark = |site: i64, w: i64, row: i64, occ: &mut Vec<bool>| {
            if row < window.row0 || row >= window.row_end() {
                return;
            }
            let s0 = site.max(window.site0);
            let s1 = (site + w).min(window.site_end());
            for s in s0..s1 {
                occ[((row - window.row0) * window.w_sites + (s - window.site0)) as usize] = true;
            }
        };
        // All instances intersecting the window (including border-crossers
        // and earlier-batch movers).
        scratch.seen.clear();
        for row in window.row0..window.row_end() {
            rowmap.occupants_into(row, window.site0, window.site_end(), &mut scratch.ids);
            scratch.seen.extend(scratch.ids.iter().copied());
        }
        for &id in &scratch.seen {
            if movable_set.contains_key(&id) {
                continue;
            }
            let pos = view_pos(design, overrides, id);
            let w = design.library().cell(design.inst(id).cell).width_sites;
            mark(pos.site, w, pos.row, &mut occupied);
        }

        // ---- movable cells + candidates --------------------------------
        let mut cells = Vec::with_capacity(movable.len());
        for &id in movable {
            let pos = view_pos(design, overrides, id);
            let w = design.library().cell(design.inst(id).cell).width_sites;
            let s_lo = (pos.site - lx).max(window.site0);
            let s_hi = (pos.site + lx).min(window.site_end() - w);
            let r_lo = (pos.row - ly).max(window.row0);
            let r_hi = (pos.row + ly).min(window.row_end() - 1);
            let orients: &[Orient] = if flip {
                &Orient::ALL
            } else {
                std::slice::from_ref(match pos.orient {
                    Orient::North => &Orient::ALL[0],
                    Orient::FlippedNorth => &Orient::ALL[1],
                })
            };
            let mut cands = Vec::new();
            let mut current = 0usize;
            for row in r_lo..=r_hi {
                for site in s_lo..=s_hi {
                    // Legal against fixed occupancy.
                    let free = (site..site + w).all(|s| {
                        !occupied
                            [((row - window.row0) * window.w_sites + (s - window.site0)) as usize]
                    });
                    if !free {
                        continue;
                    }
                    for &orient in orients {
                        let c = Candidate { site, row, orient };
                        if c == pos {
                            current = cands.len();
                        }
                        cands.push(c);
                    }
                }
            }
            if cands.is_empty() || !cands.contains(&pos) {
                // The current position must always be available (it is
                // legal by construction).
                cands.push(pos);
                current = cands.len() - 1;
            }
            cells.push(MovableCell {
                inst: id,
                width: w,
                cands,
                current,
            });
        }

        // ---- nets -------------------------------------------------------
        // Pin slots: per cell, the macro pin indices used by any net.
        let mut slot_of: Vec<HashMap<usize, usize>> = vec![HashMap::new(); cells.len()];
        let mut slot_pins: Vec<Vec<usize>> = vec![Vec::new(); cells.len()];
        let intern = |cell: usize,
                      pin: usize,
                      slot_of: &mut Vec<HashMap<usize, usize>>,
                      slot_pins: &mut Vec<Vec<usize>>| {
            *slot_of[cell].entry(pin).or_insert_with(|| {
                slot_pins[cell].push(pin);
                slot_pins[cell].len() - 1
            })
        };

        let mut net_ids: Vec<NetId> = Vec::new();
        {
            let mut seen_net: HashMap<NetId, ()> = HashMap::new();
            for &id in movable {
                for n in design.inst_nets(id) {
                    seen_net.entry(n).or_insert_with(|| {
                        net_ids.push(n);
                    });
                }
            }
        }
        net_ids.sort_unstable();

        let mut nets = Vec::with_capacity(net_ids.len());
        for net_id in net_ids {
            let mut fixed: Option<(i64, i64, i64, i64)> = None;
            let mut movable_pins = Vec::new();
            for &np in &design.net(net_id).pins {
                match np {
                    NetPin::Inst(pr) if movable_set.contains_key(&pr.inst) => {
                        let cell = movable_set[&pr.inst];
                        let slot = intern(cell, pr.pin, &mut slot_of, &mut slot_pins);
                        movable_pins.push((cell, slot));
                    }
                    other => {
                        let g = match other {
                            NetPin::Inst(pr) => {
                                geo_of(design, view_pos(design, overrides, pr.inst), pr)
                            }
                            NetPin::Port(p) => {
                                let pos = design.port(p).position;
                                PinGeo {
                                    x: pos.x.nm(),
                                    y: pos.y.nm(),
                                    x_lo: pos.x.nm(),
                                    x_hi: pos.x.nm(),
                                }
                            }
                        };
                        fixed = Some(match fixed {
                            None => (g.x, g.y, g.x, g.y),
                            Some((x0, y0, x1, y1)) => {
                                (x0.min(g.x), y0.min(g.y), x1.max(g.x), y1.max(g.y))
                            }
                        });
                    }
                }
            }
            nets.push(LocalNet {
                weight: cfg.net_weight(net_id),
                fixed,
                movable: movable_pins,
                net: net_id,
            });
        }

        // ---- pairs -------------------------------------------------------
        let mut pairs = Vec::new();
        if arch.allows_inter_row_m1() {
            let all = alignable_pairs(design, cfg);
            let want_layer = pin_layer(arch);
            let _ = want_layer;
            for &(p, q, _net) in &all.pairs {
                let pm = movable_set.get(&p.inst);
                let qm = movable_set.get(&q.inst);
                if pm.is_none() && qm.is_none() {
                    continue;
                }
                let mk_end = |pr: PinRef,
                              m: Option<&usize>,
                              slot_of: &mut Vec<HashMap<usize, usize>>,
                              slot_pins: &mut Vec<Vec<usize>>| {
                    match m {
                        Some(&cell) => {
                            let slot = intern(cell, pr.pin, slot_of, slot_pins);
                            End::Movable { cell, slot }
                        }
                        None => {
                            End::Fixed(geo_of(design, view_pos(design, overrides, pr.inst), pr))
                        }
                    }
                };
                let a = mk_end(p, pm, &mut slot_of, &mut slot_pins);
                let b = mk_end(q, qm, &mut slot_of, &mut slot_pins);
                pairs.push(LocalPair {
                    a,
                    b,
                    max_bonus: 0.0, // filled after pin_geo is computed
                });
            }
        }

        // ---- pin geometry cache ------------------------------------------
        let mut pin_geo: Vec<Vec<Vec<PinGeo>>> = Vec::with_capacity(cells.len());
        for (k, cell) in cells.iter().enumerate() {
            let mut per_cand = Vec::with_capacity(cell.cands.len());
            for &cand in &cell.cands {
                let geos: Vec<PinGeo> = slot_pins[k]
                    .iter()
                    .map(|&pin| {
                        geo_of(
                            design,
                            cand,
                            PinRef {
                                inst: cell.inst,
                                pin,
                            },
                        )
                    })
                    .collect();
                per_cand.push(geos);
            }
            pin_geo.push(per_cand);
        }

        let mut prob = WindowProblem {
            cells,
            pin_geo,
            nets,
            pairs,
            window,
            occupied,
            alpha: cfg.alpha,
            epsilon: cfg.epsilon,
            gamma_span,
            delta,
            exact,
        };
        prob.finalize_pairs();
        prob
    }

    /// Computes each pair's maximum achievable bonus and drops pairs that
    /// can never align under any candidate combination.
    fn finalize_pairs(&mut self) {
        let cells = &self.cells;
        let pin_geo = &self.pin_geo;
        let gamma_span = self.gamma_span;
        let delta = self.delta;
        let exact = self.exact;
        let alpha = self.alpha;
        let epsilon = self.epsilon;
        let geos_of = |e: &End| -> Vec<PinGeo> {
            match *e {
                End::Fixed(g) => vec![g],
                End::Movable { cell, slot } => (0..cells[cell].cands.len())
                    .map(|k| pin_geo[cell][k][slot])
                    .collect(),
            }
        };
        self.pairs.retain_mut(|pair| {
            let ga = geos_of(&pair.a);
            let gb = geos_of(&pair.b);
            // Feasibility and max bonus over candidate combinations
            // (coarse O(|A|·|B|) scan; window candidate counts are small).
            let mut best: Option<i64> = None;
            for a in &ga {
                for b in &gb {
                    if (a.y - b.y).abs() > gamma_span {
                        continue;
                    }
                    if exact {
                        if a.x == b.x {
                            best = Some(best.unwrap_or(0).max(0));
                        }
                    } else {
                        let ov = a.x_hi.min(b.x_hi) - a.x_lo.max(b.x_lo);
                        if ov >= delta {
                            best = Some(best.unwrap_or(0).max(ov - delta));
                        }
                    }
                }
            }
            match best {
                Some(ov) => {
                    pair.max_bonus = alpha + epsilon * ov as f64;
                    true
                }
                None => false,
            }
        });
    }

    /// The assignment representing the unperturbed input placement.
    #[must_use]
    pub fn current_assign(&self) -> Vec<usize> {
        self.cells.iter().map(|c| c.current).collect()
    }

    /// A digest of everything the solvers can observe: cells with their
    /// candidates and current positions, net fixed boxes, pair geometry
    /// and weights. Two problems with equal digests produce identical
    /// solver results, which is what makes the smart window-selection
    /// cache of `DistOpt` sound.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut mix = |v: u64| {
            h ^= v
                .wrapping_add(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(h << 6)
                .wrapping_add(h >> 2);
            h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        };
        mix(self.window.site0 as u64);
        mix(self.window.row0 as u64);
        mix(self.window.w_sites as u64);
        mix(self.window.h_rows as u64);
        mix(self.alpha.to_bits());
        mix(self.epsilon.to_bits());
        mix(self.gamma_span as u64);
        mix(self.delta as u64);
        mix(u64::from(self.exact));
        for cell in &self.cells {
            mix(cell.inst.0 as u64);
            mix(cell.width as u64);
            mix(cell.current as u64);
            for c in &cell.cands {
                mix(c.site as u64);
                mix(c.row as u64);
                mix(u64::from(c.orient.is_flipped()));
            }
        }
        for net in &self.nets {
            mix(net.weight.to_bits());
            if let Some((x0, y0, x1, y1)) = net.fixed {
                mix(x0 as u64);
                mix(y0 as u64);
                mix(x1 as u64);
                mix(y1 as u64);
            }
            for &(c, s) in &net.movable {
                mix(c as u64);
                mix(s as u64);
            }
        }
        for pair in &self.pairs {
            for e in [&pair.a, &pair.b] {
                match *e {
                    End::Movable { cell, slot } => {
                        mix(1);
                        mix(cell as u64);
                        mix(slot as u64);
                    }
                    End::Fixed(g) => {
                        mix(2);
                        mix(g.x as u64);
                        mix(g.y as u64);
                        mix(g.x_lo as u64);
                        mix(g.x_hi as u64);
                    }
                }
            }
        }
        h
    }

    /// Pin geometry of an endpoint under `assign`.
    #[must_use]
    pub fn end_geo(&self, e: &End, assign: &[usize]) -> PinGeo {
        match *e {
            End::Fixed(g) => g,
            End::Movable { cell, slot } => self.pin_geo[cell][assign[cell]][slot],
        }
    }

    /// Bonus contributed by one pair under `assign` (0 when not aligned).
    #[must_use]
    pub fn pair_bonus(&self, pair: &LocalPair, assign: &[usize]) -> f64 {
        let a = self.end_geo(&pair.a, assign);
        let b = self.end_geo(&pair.b, assign);
        if (a.y - b.y).abs() > self.gamma_span {
            return 0.0;
        }
        if self.exact {
            if a.x == b.x {
                self.alpha
            } else {
                0.0
            }
        } else {
            let ov = a.x_hi.min(b.x_hi) - a.x_lo.max(b.x_lo);
            if ov >= self.delta {
                self.alpha + self.epsilon * (ov - self.delta) as f64
            } else {
                0.0
            }
        }
    }

    /// HPWL of one local net under `assign` (nm).
    #[must_use]
    pub fn net_hpwl(&self, net: &LocalNet, assign: &[usize]) -> i64 {
        let mut bb = net.fixed;
        for &(cell, slot) in &net.movable {
            let g = self.pin_geo[cell][assign[cell]][slot];
            bb = Some(match bb {
                None => (g.x, g.y, g.x, g.y),
                Some((x0, y0, x1, y1)) => (x0.min(g.x), y0.min(g.y), x1.max(g.x), y1.max(g.y)),
            });
        }
        bb.map_or(0, |(x0, y0, x1, y1)| (x1 - x0) + (y1 - y0))
    }

    /// Full objective of an assignment: `Σ β·HPWL − Σ bonus` (minimized).
    #[must_use]
    pub fn eval(&self, assign: &[usize]) -> f64 {
        let mut v = 0.0;
        for net in &self.nets {
            v += net.weight * self.net_hpwl(net, assign) as f64;
        }
        for pair in &self.pairs {
            v -= self.pair_bonus(pair, assign);
        }
        v
    }

    /// Whether the assignment is free of overlaps (against fixed occupancy
    /// — guaranteed per candidate — and among the movable cells).
    #[must_use]
    pub fn is_legal(&self, assign: &[usize]) -> bool {
        let mut spans: Vec<(i64, i64, i64)> = self
            .cells
            .iter()
            .zip(assign)
            .map(|(c, &k)| {
                let cand = c.cands[k];
                (cand.row, cand.site, cand.site + c.width)
            })
            .collect();
        spans.sort_unstable();
        spans
            .windows(2)
            .all(|w| w[0].0 != w[1].0 || w[0].2 <= w[1].1)
    }

    /// Applies an assignment to the design and records it in `overrides`.
    pub fn apply(&self, design: &mut Design, assign: &[usize], overrides: &mut Overrides) {
        for (cell, &k) in self.cells.iter().zip(assign) {
            let cand = cell.cands[k];
            design.move_inst(cell.inst, cand.site, cand.row, cand.orient);
            overrides.insert(cell.inst, cand);
        }
    }

    /// Movable instances fully contained in `window` (the batching input
    /// for [`WindowProblem::build`]); deterministic order.
    #[must_use]
    pub fn movable_in_window(
        design: &Design,
        rowmap: &RowMap,
        window: &Window,
        overrides: &Overrides,
    ) -> Vec<InstId> {
        let mut scratch = SolveScratch::default();
        WindowProblem::movable_in_window_into(design, rowmap, window, overrides, &mut scratch);
        scratch.movable
    }

    /// [`WindowProblem::movable_in_window`] into the reusable
    /// `scratch.movable` buffer (same deterministic order).
    pub fn movable_in_window_into(
        design: &Design,
        rowmap: &RowMap,
        window: &Window,
        overrides: &Overrides,
        scratch: &mut SolveScratch,
    ) {
        scratch.movable.clear();
        for row in window.row0..window.row_end() {
            rowmap.occupants_into(row, window.site0, window.site_end(), &mut scratch.ids);
            scratch.ids.sort_unstable();
            for &id in &scratch.ids {
                let inst = design.inst(id);
                if inst.fixed {
                    continue;
                }
                let pos = view_pos(design, overrides, id);
                if pos.row != row {
                    continue; // counted at its own row
                }
                let w = design.library().cell(inst.cell).width_sites;
                if window.contains_span(pos.site, w, pos.row) {
                    scratch.movable.push(id);
                }
            }
        }
    }
}

// Keep the unused import warning away (CellArch used in signatures above).
const _: fn(CellArch) -> bool = CellArch::allows_inter_row_m1;

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::Library;

    fn setup(arch: CellArch) -> (Design, Vm1Config) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        (d, cfg)
    }

    fn first_window(d: &Design) -> Window {
        Window {
            site0: 0,
            row0: 0,
            w_sites: d.sites_per_row.min(40),
            h_rows: d.num_rows.min(4),
        }
    }

    #[test]
    fn build_produces_consistent_problem() {
        let (d, cfg) = setup(CellArch::ClosedM1);
        let rm = RowMap::build(&d);
        let win = first_window(&d);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        assert!(!movable.is_empty());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 3, 1, false, &cfg, &Overrides::new());
        assert_eq!(prob.cells.len(), movable.len());
        // Current assignment is always legal and matches the design.
        let cur = prob.current_assign();
        assert!(prob.is_legal(&cur));
        for (c, &k) in prob.cells.iter().zip(&cur) {
            let inst = d.inst(c.inst);
            assert_eq!(c.cands[k].site, inst.site);
            assert_eq!(c.cands[k].row, inst.row);
        }
    }

    #[test]
    fn eval_matches_global_objective_delta() {
        // Moving one cell inside a window must change the window objective
        // by the same amount as the global objective.
        let (mut d, cfg) = setup(CellArch::ClosedM1);
        let rm = RowMap::build(&d);
        let win = first_window(&d);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 3, 1, true, &cfg, &Overrides::new());
        let cur = prob.current_assign();
        let g0 = crate::calculate_obj(&d, &cfg).value;
        let l0 = prob.eval(&cur);
        // Find some cell with an alternative candidate and try it.
        let mut alt = cur.clone();
        let target = prob
            .cells
            .iter()
            .position(|c| c.cands.len() > 1)
            .expect("some cell has alternatives");
        alt[target] = (cur[target] + 1) % prob.cells[target].cands.len();
        if !prob.is_legal(&alt) {
            return; // extremely dense window; skip silently
        }
        let l1 = prob.eval(&alt);
        let cand = prob.cells[target].cands[alt[target]];
        d.move_inst(prob.cells[target].inst, cand.site, cand.row, cand.orient);
        let g1 = crate::calculate_obj(&d, &cfg).value;
        assert!(
            ((g1 - g0) - (l1 - l0)).abs() < 1e-6,
            "global delta {} vs local delta {}",
            g1 - g0,
            l1 - l0
        );
    }

    #[test]
    fn candidates_respect_window_and_range() {
        let (d, cfg) = setup(CellArch::ClosedM1);
        let rm = RowMap::build(&d);
        let win = first_window(&d);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 2, 1, false, &cfg, &Overrides::new());
        for c in &prob.cells {
            let cur = c.cands[c.current];
            for cand in &c.cands {
                assert!(win.contains_span(cand.site, c.width, cand.row));
                assert!((cand.site - cur.site).abs() <= 2);
                assert!((cand.row - cur.row).abs() <= 1);
                assert_eq!(cand.orient, cur.orient, "no flip when f=0");
            }
        }
    }

    #[test]
    fn flip_only_candidates() {
        let (d, cfg) = setup(CellArch::ClosedM1);
        let rm = RowMap::build(&d);
        let win = first_window(&d);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 0, 0, true, &cfg, &Overrides::new());
        for c in &prob.cells {
            assert!(c.cands.len() <= 2);
            let cur = c.cands[c.current];
            for cand in &c.cands {
                assert_eq!((cand.site, cand.row), (cur.site, cur.row));
            }
        }
    }

    #[test]
    fn openm1_pairs_have_overlap_bonus() {
        let (d, cfg) = setup(CellArch::OpenM1);
        let rm = RowMap::build(&d);
        let win = Window {
            site0: 0,
            row0: 0,
            w_sites: d.sites_per_row,
            h_rows: d.num_rows,
        };
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        let prob =
            WindowProblem::build(&d, &rm, win, &movable, 3, 1, false, &cfg, &Overrides::new());
        assert!(!prob.pairs.is_empty());
        for p in &prob.pairs {
            assert!(p.max_bonus >= cfg.alpha);
        }
    }

    #[test]
    fn movable_excludes_fixed_and_border_cells() {
        let (mut d, cfg) = setup(CellArch::ClosedM1);
        let _ = &cfg;
        let rm = RowMap::build(&d);
        let win = first_window(&d);
        let movable = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new());
        assert!(!movable.is_empty());
        let victim = movable[0];
        d.inst_mut(victim).fixed = true;
        let rm2 = RowMap::build(&d);
        let movable2 = WindowProblem::movable_in_window(&d, &rm2, &win, &Overrides::new());
        assert!(!movable2.contains(&victim));
    }
}
