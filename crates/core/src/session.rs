//! The [`Vm1Optimizer`] session — Algorithm 1 (`VM1Opt`) behind a
//! builder-style API that owns the solve cache, the configuration, and
//! the metrics sinks.
//!
//! For each parameter set `u` in the queue `U`, the loop alternates a
//! *perturbation* `DistOpt` (positions within `±lx/±ly`, no flips) with a
//! *flip* `DistOpt` (orientations only) — the paper found this serial
//! schedule as good as, and faster than, optimizing both degrees of
//! freedom simultaneously — then shifts the window grid by half a window
//! so the next iteration can optimize the previous boundary regions. The
//! inner loop stops when the normalized objective improvement drops below
//! θ (1 %).
//!
//! Every run records into a run-local [`Telemetry`] sink (kept as
//! [`Vm1Optimizer::last_report`]) plus any user sinks attached with
//! [`Vm1Optimizer::with_metrics`]; [`OptStats`] is a view over those
//! counters, so the session and the report can never disagree.

use crate::audit::debug_checkpoint;
use crate::distopt::{dist_opt_impl, DistOptParams, DistOptStats, SolveCache};
use crate::objective::{calculate_obj, Objective};
use crate::sched::WorkerPool;
use crate::Vm1Config;
use std::sync::Arc;
use vm1_netlist::Design;
use vm1_obs::timer::Stopwatch;
use vm1_obs::{
    Counter, MetricsHandle, MetricsReport, MetricsSink, Stage, Telemetry, TrajectoryPoint,
};
use vm1_place::{DisplacementBounds, PlacementSnapshot};

/// Statistics of one optimizer run — a view over the run's telemetry
/// counters plus the objective snapshots taken before and after.
#[derive(Clone, Debug, Default)]
#[must_use = "dropping optimizer statistics usually means a result went unchecked"]
pub struct OptStats {
    /// Objective before optimization.
    pub initial_obj: f64,
    /// Objective after optimization.
    pub final_obj: f64,
    /// HPWL before (nm).
    pub initial_hpwl: i64,
    /// HPWL after (nm).
    pub final_hpwl: i64,
    /// Σ d_pq before.
    pub initial_alignments: usize,
    /// Σ d_pq after.
    pub final_alignments: usize,
    /// Inner iterations executed over all parameter sets.
    pub iterations: usize,
    /// Total cells moved or flipped.
    pub cells_changed: usize,
    /// Window batches skipped by the smart selection cache.
    pub batches_skipped: usize,
    /// Wall-clock runtime in milliseconds.
    pub runtime_ms: u64,
}

impl OptStats {
    /// Builds the stats view from a run's telemetry report and its
    /// boundary objective snapshots.
    pub fn from_report(r: &MetricsReport, initial: &Objective, fin: &Objective) -> OptStats {
        OptStats {
            initial_obj: initial.value,
            final_obj: fin.value,
            initial_hpwl: initial.hpwl.nm(),
            final_hpwl: fin.hpwl.nm(),
            initial_alignments: initial.alignments,
            final_alignments: fin.alignments,
            iterations: r.counter(Counter::Iterations) as usize,
            cells_changed: r.counter(Counter::CellsChanged) as usize,
            batches_skipped: r.counter(Counter::BatchCacheHits) as usize,
            runtime_ms: (r.stage_nanos(Stage::Vm1Opt) / 1_000_000),
        }
    }
}

/// A reusable optimization session: configuration + smart-selection cache
/// + metrics sinks.
///
/// ```
/// use std::sync::Arc;
/// use vm1_core::{ParamSet, Vm1Config, Vm1Optimizer};
/// use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
/// use vm1_obs::Telemetry;
/// use vm1_place::{place, PlaceConfig};
/// use vm1_tech::{CellArch, Library};
///
/// let lib = Library::synthetic_7nm(CellArch::ClosedM1);
/// let mut d = GeneratorConfig::profile(DesignProfile::M0)
///     .with_insts(120)
///     .generate(&lib, 1);
/// place(&mut d, &PlaceConfig::default(), 1);
/// let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(4.0, 3, 1)]);
/// let sink = Arc::new(Telemetry::new());
/// let mut opt = Vm1Optimizer::new(cfg).with_cache().with_metrics(sink.clone());
/// let stats = opt.run(&mut d);
/// assert!(stats.final_obj <= stats.initial_obj + 1e-6);
/// assert_eq!(
///     sink.report().counter(vm1_obs::Counter::Iterations) as usize,
///     stats.iterations
/// );
/// ```
#[derive(Debug)]
pub struct Vm1Optimizer {
    cfg: Vm1Config,
    cache: Option<SolveCache>,
    user_metrics: MetricsHandle,
    last_report: Option<MetricsReport>,
    /// Persistent window-solver pool: workers are spawned once per
    /// session and reused by every pass of every run (the workers of a
    /// 1-thread config run inline, so no threads exist at all).
    pool: WorkerPool,
}

impl Vm1Optimizer {
    /// Creates a session. The smart-selection cache follows
    /// `cfg.smart_window_selection` (override with [`Self::with_cache`] /
    /// [`Self::without_cache`]).
    #[must_use]
    pub fn new(cfg: Vm1Config) -> Vm1Optimizer {
        let cache = cfg.smart_window_selection.then(SolveCache::new);
        let pool = WorkerPool::new(cfg.threads, cfg.sched);
        Vm1Optimizer {
            cfg,
            cache,
            user_metrics: MetricsHandle::disabled(),
            last_report: None,
            pool,
        }
    }

    /// Replaces the session's worker pool with one scheduled by the
    /// seeded adversary: every round's task distribution, steal-victim
    /// rotation, and drain order are drawn from a deterministic
    /// per-round stream (see `sched` module docs). Results must be
    /// bit-identical to a normal run — this hook exists solely for the
    /// schedule-permutation model-checking tests and is not part of the
    /// stable API.
    #[doc(hidden)]
    #[must_use]
    pub fn with_adversarial_sched(mut self, seed: u64) -> Vm1Optimizer {
        self.pool = WorkerPool::new_adversarial(self.cfg.threads, seed);
        self
    }

    /// Enables the smart window-selection cache (paper improvement (ii)).
    /// The cache is owned by the session, so it persists across
    /// [`Self::run`] calls.
    #[must_use]
    pub fn with_cache(mut self) -> Vm1Optimizer {
        if self.cache.is_none() {
            self.cache = Some(SolveCache::new());
        }
        self
    }

    /// Disables the smart window-selection cache.
    #[must_use]
    pub fn without_cache(mut self) -> Vm1Optimizer {
        self.cache = None;
        self
    }

    /// Attaches a metrics sink; may be called repeatedly to fan out.
    #[must_use]
    pub fn with_metrics(mut self, sink: Arc<dyn MetricsSink>) -> Vm1Optimizer {
        self.user_metrics = self.user_metrics.and(sink);
        self
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &Vm1Config {
        &self.cfg
    }

    /// The session's solve cache, if enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&SolveCache> {
        self.cache.as_ref()
    }

    /// Telemetry report of the most recent [`Self::run`] /
    /// [`Self::run_pass`] (counters, stage times, objective trajectory).
    #[must_use]
    pub fn last_report(&self) -> Option<&MetricsReport> {
        self.last_report.as_ref()
    }

    /// Runs the full vertical-M1 detailed-placement optimization
    /// (Algorithm 1) on `design` with the queue `cfg.sequence`.
    ///
    /// The placement is modified in place and stays legal; returns run
    /// statistics.
    pub fn run(&mut self, design: &mut Design) -> OptStats {
        let start = Stopwatch::start();
        let telemetry = Arc::new(Telemetry::new());
        let metrics = self.user_metrics.and(telemetry.clone());
        let cfg = &self.cfg;
        let cache = self.cache.as_ref();
        let pool = &self.pool;
        let tech = design.library().tech();
        let site = tech.site_width.nm() as f64;
        let row = tech.row_height.nm() as f64;

        let initial = metrics.timed(Stage::ObjectiveEval, || calculate_obj(design, cfg));
        let mut cur = initial;

        for (ui, u) in cfg.sequence.iter().enumerate() {
            metrics.incr(Counter::ParamSets);
            let bw_sites = ((u.bw_um * 1000.0 / site).round() as i64).max(4);
            let bh_rows = ((u.bh_um * 1000.0 / row).round() as i64).max(1);
            let mut tx = 0i64;
            let mut ty = 0i64;
            let mut d_obj = f64::INFINITY;
            let mut inner = 0usize;
            metrics.record_point(TrajectoryPoint {
                param_set: ui,
                iteration: 0,
                objective: cur.value,
                hpwl_nm: cur.hpwl.nm(),
                alignments: cur.alignments,
            });
            while d_obj >= cfg.theta && inner < cfg.max_inner_iters {
                let pre_obj = cur.value;
                // Perturbation pass (f = 0): each cell may move at most
                // ±lx sites / ±ly rows, which the debug checkpoint below
                // verifies against a pre-pass snapshot.
                let snap = cfg!(debug_assertions).then(|| PlacementSnapshot::capture(design));
                let perturb = DistOptParams {
                    tx,
                    ty,
                    bw_sites,
                    bh_rows,
                    lx: u.lx,
                    ly: u.ly,
                    flip: false,
                };
                metrics.timed(Stage::Perturb, || {
                    dist_opt_impl(design, &perturb, cfg, cache, &metrics, pool);
                });
                if let Some(snap) = &snap {
                    debug_checkpoint(
                        design,
                        snap,
                        Some(DisplacementBounds {
                            dx_sites: u.lx,
                            dy_rows: u.ly,
                        }),
                        &metrics,
                        "after perturb pass",
                    );
                }
                // Flip pass (f = 1, no displacement).
                let snap = cfg!(debug_assertions).then(|| PlacementSnapshot::capture(design));
                let flip = DistOptParams {
                    tx,
                    ty,
                    bw_sites,
                    bh_rows,
                    lx: 0,
                    ly: 0,
                    flip: true,
                };
                metrics.timed(Stage::Flip, || {
                    dist_opt_impl(design, &flip, cfg, cache, &metrics, pool);
                });
                if let Some(snap) = &snap {
                    debug_checkpoint(
                        design,
                        snap,
                        Some(DisplacementBounds {
                            dx_sites: 0,
                            dy_rows: 0,
                        }),
                        &metrics,
                        "after flip pass",
                    );
                }
                // Window shift: expose the previous boundary regions.
                tx = (tx + bw_sites / 2).rem_euclid(bw_sites);
                ty = (ty + (bh_rows / 2).max(1)).rem_euclid(bh_rows.max(1));

                cur = metrics.timed(Stage::ObjectiveEval, || calculate_obj(design, cfg));
                let denom = pre_obj.abs().max(1.0);
                d_obj = (pre_obj - cur.value) / denom;
                inner += 1;
                metrics.incr(Counter::Iterations);
                metrics.record_point(TrajectoryPoint {
                    param_set: ui,
                    iteration: inner,
                    objective: cur.value,
                    hpwl_nm: cur.hpwl.nm(),
                    alignments: cur.alignments,
                });
            }
        }

        // Final checkpoint: the objective's claimed Σ d_pq must match an
        // independent recount on the final placement.
        debug_assert_eq!(
            crate::audit::recount_alignments(design, cfg),
            cur.alignments,
            "objective dM1 bookkeeping diverged from the placement"
        );

        metrics.record_time(Stage::Vm1Opt, start.elapsed_nanos());
        let report = telemetry.report();
        let mut stats = OptStats::from_report(&report, &initial, &cur);
        stats.runtime_ms = start.elapsed_ms();
        self.last_report = Some(report);
        stats
    }

    /// Runs a single `DistOpt` pass (Algorithm 2) through the session —
    /// the session's cache and sinks apply, and [`Self::last_report`] is
    /// replaced with this pass's telemetry.
    pub fn run_pass(&mut self, design: &mut Design, p: &DistOptParams) -> DistOptStats {
        let telemetry = Arc::new(Telemetry::new());
        let metrics = self.user_metrics.and(telemetry.clone());
        dist_opt_impl(
            design,
            p,
            &self.cfg,
            self.cache.as_ref(),
            &metrics,
            &self.pool,
        );
        let report = telemetry.report();
        let stats = DistOptStats::from_report(&report);
        self.last_report = Some(report);
        stats
    }
}

/// Runs the full vertical-M1 detailed-placement optimization (Algorithm 1)
/// on `design` with the queue `cfg.sequence`.
///
/// The placement is modified in place and stays legal; returns run
/// statistics.
#[deprecated(
    since = "0.2.0",
    note = "use `Vm1Optimizer::new(cfg.clone()).run(design)` instead"
)]
pub fn vm1opt(design: &mut Design, cfg: &Vm1Config) -> OptStats {
    Vm1Optimizer::new(cfg.clone()).run(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamSet, SolverKind};
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(arch: CellArch, n: usize, seed: u64) -> Design {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    use vm1_netlist::Design;

    #[test]
    fn vm1opt_closedm1_increases_alignments() {
        let mut d = setup(CellArch::ClosedM1, 250, 1);
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = Vm1Optimizer::new(cfg).run(&mut d);
        d.validate_placement().expect("legal after VM1Opt");
        assert!(stats.final_obj <= stats.initial_obj + 1e-6);
        assert!(
            stats.final_alignments > stats.initial_alignments,
            "alignments {} -> {}",
            stats.initial_alignments,
            stats.final_alignments
        );
        assert!(stats.iterations >= 1);
    }

    #[test]
    fn vm1opt_openm1_works() {
        let mut d = setup(CellArch::OpenM1, 250, 2);
        let cfg = crate::Vm1Config::openm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = Vm1Optimizer::new(cfg).run(&mut d);
        d.validate_placement().unwrap();
        assert!(stats.final_alignments >= stats.initial_alignments);
    }

    #[test]
    fn zero_alpha_reduces_to_wirelength_optimizer() {
        let mut d = setup(CellArch::ClosedM1, 200, 3);
        let cfg = crate::Vm1Config::closedm1()
            .with_alpha(0.0)
            .with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let stats = Vm1Optimizer::new(cfg).run(&mut d);
        assert!(stats.final_hpwl <= stats.initial_hpwl);
    }

    #[test]
    fn multi_set_sequence_runs_all_sets() {
        let mut d = setup(CellArch::ClosedM1, 150, 4);
        let cfg = crate::Vm1Config::closedm1()
            .with_sequence(vec![ParamSet::new(2.0, 2, 1), ParamSet::new(4.0, 2, 0)]);
        let mut opt = Vm1Optimizer::new(cfg);
        let stats = opt.run(&mut d);
        d.validate_placement().unwrap();
        assert!(stats.iterations >= 2, "at least one iteration per set");
        let report = opt.last_report().expect("run leaves a report");
        assert_eq!(report.counter(Counter::ParamSets), 2);
        assert_eq!(
            report.counter(Counter::Iterations) as usize,
            stats.iterations
        );
    }

    #[test]
    fn greedy_solver_variant_is_legal_but_weaker_or_equal() {
        let mut d_exact = setup(CellArch::ClosedM1, 200, 5);
        let mut d_greedy = d_exact.clone();
        let cfg_e = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let cfg_g = cfg_e.clone().with_solver(SolverKind::Greedy);
        let se = Vm1Optimizer::new(cfg_e).run(&mut d_exact);
        let sg = Vm1Optimizer::new(cfg_g).run(&mut d_greedy);
        d_greedy.validate_placement().unwrap();
        assert!(se.final_obj <= sg.final_obj + 1e-6, "exact ≤ greedy");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        // The free functions must keep producing the same result as the
        // session API so downstream code can migrate at leisure.
        let mut d_old = setup(CellArch::ClosedM1, 150, 6);
        let mut d_new = d_old.clone();
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 2, 1)]);
        let s_old = vm1opt(&mut d_old, &cfg);
        let s_new = Vm1Optimizer::new(cfg).run(&mut d_new);
        for ((_, a), (_, b)) in d_old.insts().zip(d_new.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        assert_eq!(s_old.final_obj, s_new.final_obj);
        assert_eq!(s_old.iterations, s_new.iterations);
        assert_eq!(s_old.cells_changed, s_new.cells_changed);
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::ParamSet;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_netlist::Design;
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(seed: u64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(220)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    #[test]
    fn smart_selection_preserves_results_exactly() {
        // The cache only skips deterministic re-solves of identical
        // states, so the final placement must be bit-identical.
        let mut with = setup(11);
        let mut without = with.clone();
        let seq = vec![ParamSet::new(3.0, 3, 1)];
        let mut cfg = crate::Vm1Config::closedm1().with_sequence(seq);
        // Force a fixed number of iterations so both runs share the exact
        // schedule and windows repeat (making the cache observable).
        cfg.theta = -1.0;
        cfg.max_inner_iters = 5;
        let s_on = Vm1Optimizer::new(cfg.clone()).with_cache().run(&mut with);
        let s_off = Vm1Optimizer::new(cfg).without_cache().run(&mut without);
        for ((_, a), (_, b)) in with.insts().zip(without.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        assert_eq!(s_on.final_obj, s_off.final_obj);
        assert_eq!(s_off.batches_skipped, 0, "cache off skips nothing");
    }

    #[test]
    fn cache_fires_once_windows_stabilize() {
        let mut d = setup(11);
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let mut opt = Vm1Optimizer::new(cfg).with_cache();
        let p = DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: 62,
            bh_rows: 8,
            lx: 3,
            ly: 1,
            flip: false,
        };
        let mut total_skipped = 0;
        for _ in 0..5 {
            total_skipped += opt.run_pass(&mut d, &p).batches_skipped;
        }
        assert!(
            !opt.cache().expect("cache enabled").is_empty(),
            "no-gain states get recorded"
        );
        assert!(
            total_skipped > 0,
            "re-solving an identical window grid must hit the cache"
        );
        d.validate_placement().unwrap();
    }

    #[test]
    fn cache_hit_counter_equals_batches_skipped() {
        let mut d = setup(11);
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let sink = Arc::new(Telemetry::new());
        let mut opt = Vm1Optimizer::new(cfg)
            .with_cache()
            .with_metrics(sink.clone());
        let p = DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: 62,
            bh_rows: 8,
            lx: 3,
            ly: 1,
            flip: false,
        };
        let mut total_skipped = 0;
        let mut total_changed = 0;
        for _ in 0..5 {
            let stats = opt.run_pass(&mut d, &p);
            total_skipped += stats.batches_skipped;
            total_changed += stats.cells_changed;
        }
        let r = sink.report();
        assert!(
            r.counter(Counter::BatchCacheHits) > 0,
            "re-solving an identical window grid must hit the cache"
        );
        // The user sink accumulates across passes, and the stats views are
        // built from the very same counters — they cannot disagree.
        assert_eq!(r.counter(Counter::BatchCacheHits) as usize, total_skipped);
        assert_eq!(r.counter(Counter::CellsChanged) as usize, total_changed);
        // Regression: batch-cache skips used to be recorded under the
        // generic `cache_hits`, polluting unrelated cache accounting.
        assert_eq!(
            r.counter(Counter::CacheHits),
            0,
            "window-batch skips must not leak into the generic cache counter"
        );
    }

    #[test]
    fn instrumented_run_is_bit_identical_to_uninstrumented() {
        // Attaching sinks must observe, never perturb: the placement and
        // every counter must match a run with no user sink attached.
        let mut d_plain = setup(14);
        let mut d_inst = d_plain.clone();
        let cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        let mut plain = Vm1Optimizer::new(cfg.clone());
        let s_plain = plain.run(&mut d_plain);
        let sink = Arc::new(Telemetry::new());
        let s_inst = Vm1Optimizer::new(cfg)
            .with_metrics(sink.clone())
            .run(&mut d_inst);
        for ((_, a), (_, b)) in d_plain.insts().zip(d_inst.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        assert_eq!(s_plain.final_obj, s_inst.final_obj);
        assert_eq!(s_plain.cells_changed, s_inst.cells_changed);
        let (r_plain, r_inst) = (plain.last_report().unwrap(), sink.report());
        for c in Counter::ALL {
            assert_eq!(
                r_plain.counter(c),
                r_inst.counter(c),
                "counter {}",
                c.name()
            );
        }
        assert_eq!(r_plain.trajectory().len(), r_inst.trajectory().len());
    }

    #[test]
    fn session_cache_persists_across_runs() {
        let mut d = setup(12);
        let mut cfg = crate::Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 3, 1)]);
        cfg.theta = -1.0;
        cfg.max_inner_iters = 2;
        let mut opt = Vm1Optimizer::new(cfg).with_cache();
        let s1 = opt.run(&mut d);
        let cached_after_first = opt.cache().unwrap().len();
        assert!(cached_after_first > 0, "first run records no-gain states");
        let s2 = opt.run(&mut d);
        // The design converged in run 1, so run 2 re-solves mostly
        // identical windows: the persistent cache must skip batches.
        assert!(
            s2.batches_skipped >= s1.batches_skipped,
            "persistent cache: {} then {}",
            s1.batches_skipped,
            s2.batches_skipped
        );
        d.validate_placement().unwrap();
    }
}
