//! Algorithm 2 — `DistOpt`: distributable window optimization.
//!
//! The layout is partitioned into windows (shifted by `(tx, ty)`); the
//! diagonal sets of [`crate::window::WindowGrid::diagonal_sets`] are
//! processed one after another, and the windows *within* a set are solved
//! in parallel by the persistent [`crate::sched::WorkerPool`] (their
//! projections are disjoint, so window-local ΔHPWL is exact — Figure 4b).
//! Windows holding more movable cells than `max_cells_per_milp` are
//! solved in sequential batches with earlier batches fixed (the
//! documented CPLEX-scale substitution, DESIGN.md §5).
//!
//! Occupancy is maintained incrementally: the [`RowMap`] is built once
//! per pass and patched with the committed moves after every round (see
//! [`vm1_place::RowMap::patch_moves`]), so round setup cost scales with
//! what changed instead of with design size.

use crate::problem::{Candidate, Overrides, SolveScratch, WindowProblem};
use crate::sched::{RoundCtx, WorkerPool};
use crate::solver::solve_window_with;
use crate::window::{Window, WindowGrid};
use crate::Vm1Config;
use std::collections::HashSet;
use std::sync::{Arc, Mutex};
use vm1_netlist::{Design, InstId};
use vm1_obs::{Counter, MetricsHandle, MetricsReport, SchedGauge, Stage, Telemetry};
use vm1_place::{RowMap, SpanMove};

/// Cache for the smart window selection: remembers problem-state digests
/// whose (deterministic) solve produced no improvement, so re-solving an
/// unchanged window is skipped. Sound because
/// [`WindowProblem::state_digest`] covers everything a solver observes.
///
/// Cloning is shallow: clones share the same digest set, which is how the
/// session hands its cache to the `'static` pool workers.
#[derive(Clone, Debug, Default)]
pub struct SolveCache {
    no_gain: Arc<Mutex<HashSet<u64>>>,
}

impl SolveCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// A poisoned lock only means another worker panicked mid-insert;
    /// the set of no-gain digests is append-only and stays valid.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashSet<u64>> {
        self.no_gain
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn known_no_gain(&self, digest: u64) -> bool {
        self.lock().contains(&digest)
    }

    fn record_no_gain(&self, digest: u64) {
        self.lock().insert(digest);
    }

    /// Number of remembered no-gain states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parameters of one `DistOpt` call (Algorithm 2's arguments).
#[derive(Clone, Copy, Debug)]
pub struct DistOptParams {
    /// Window-grid x shift, in sites.
    pub tx: i64,
    /// Window-grid y shift, in rows.
    pub ty: i64,
    /// Window width in sites.
    pub bw_sites: i64,
    /// Window height in rows.
    pub bh_rows: i64,
    /// Max x displacement in sites (`l_x`).
    pub lx: i64,
    /// Max y displacement in rows (`l_y`).
    pub ly: i64,
    /// Whether flipping is allowed (`f`).
    pub flip: bool,
}

/// Statistics of one `DistOpt` call — a *view* over the telemetry
/// counters recorded during the pass (see [`DistOptStats::from_report`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "dropping pass statistics usually means a result went unchecked"]
pub struct DistOptStats {
    /// Windows whose solve produced at least one cell move or flip.
    pub windows: usize,
    /// Total cells moved or flipped.
    pub cells_changed: usize,
    /// Parallel rounds executed (= number of diagonal sets).
    pub rounds: usize,
    /// Window batches skipped by the smart selection cache.
    pub batches_skipped: usize,
}

impl DistOptStats {
    /// Builds the stats view from recorded telemetry counters.
    pub fn from_report(r: &MetricsReport) -> DistOptStats {
        DistOptStats {
            windows: r.counter(Counter::WindowsImproved) as usize,
            cells_changed: r.counter(Counter::CellsChanged) as usize,
            rounds: r.counter(Counter::DistOptRounds) as usize,
            batches_skipped: r.counter(Counter::BatchCacheHits) as usize,
        }
    }
}

/// Runs one distributable optimization pass; mutates the placement.
///
/// # Panics
///
/// Panics if the resulting placement were illegal (this is a bug guard —
/// window solutions are legal by construction).
#[deprecated(
    since = "0.2.0",
    note = "use `Vm1Optimizer::new(cfg).run_pass(design, params)` instead"
)]
pub fn dist_opt(design: &mut Design, p: &DistOptParams, cfg: &Vm1Config) -> DistOptStats {
    let telemetry = Arc::new(Telemetry::new());
    let pool = WorkerPool::new(cfg.threads, cfg.sched);
    dist_opt_impl(
        design,
        p,
        cfg,
        None,
        &MetricsHandle::of(telemetry.clone()),
        &pool,
    );
    DistOptStats::from_report(&telemetry.report())
}

/// [`dist_opt`] with an optional smart window-selection cache shared
/// across calls (the paper's improvement (ii) over the distributable
/// optimization of Han et al.).
#[deprecated(
    since = "0.2.0",
    note = "use `Vm1Optimizer::new(cfg).with_cache().run_pass(design, params)` instead"
)]
pub fn dist_opt_cached(
    design: &mut Design,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
) -> DistOptStats {
    let telemetry = Arc::new(Telemetry::new());
    let pool = WorkerPool::new(cfg.threads, cfg.sched);
    dist_opt_impl(
        design,
        p,
        cfg,
        cache,
        &MetricsHandle::of(telemetry.clone()),
        &pool,
    );
    DistOptStats::from_report(&telemetry.report())
}

/// Algorithm 2 proper. All accounting goes through `metrics`; callers
/// wanting a [`DistOptStats`] attach a [`Telemetry`] sink and build the
/// view from its report. Rounds execute on `pool`'s persistent workers
/// (or inline for a single-thread pool) — no threads are spawned here.
pub(crate) fn dist_opt_impl(
    design: &mut Design,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
    metrics: &MetricsHandle,
    pool: &WorkerPool,
) {
    let grid = WindowGrid::partition(design, p.tx, p.ty, p.bw_sites, p.bh_rows);
    let sets = grid.diagonal_sets();
    metrics.incr(Counter::DistOptPasses);
    metrics.add(Counter::DistOptRounds, sets.len() as u64);

    // Hand the design to the `'static` pool workers via `Arc`: the
    // caller's reference is parked on an empty placeholder and restored
    // at the end of the pass (also when a solve panics).
    let placeholder = Design::new("", design.library().clone(), 0, 0);
    let mut shared = Arc::new(std::mem::replace(design, placeholder));
    // Build occupancy once per pass; rounds patch it incrementally.
    let mut rowmap = Arc::new(RowMap::build(&shared));
    metrics.incr(Counter::RowMapBuilds);
    let cfg_shared = Arc::new(cfg.clone());

    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for set in &sets {
            let windows: Vec<Window> = set.iter().map(|&i| grid.windows[i]).collect();
            metrics.record_gauge(SchedGauge::QueueHighWater, windows.len() as u64);
            let round = pool.run_round(RoundCtx {
                design: Arc::clone(&shared),
                rowmap: Arc::clone(&rowmap),
                windows,
                p: *p,
                cfg: Arc::clone(&cfg_shared),
                cache: cache.cloned(),
                metrics: metrics.clone(),
            });
            if let Some(payload) = round.panics.into_iter().next() {
                // Re-raise a worker panic with its original payload (the
                // outer catch restores the caller's design first).
                std::panic::resume_unwind(payload);
            }

            // Commit in window-index order on this single thread; every
            // deterministic counter is emitted here. `run_round` returned
            // all snapshot clones, so `make_mut` mutates in place.
            let d = Arc::make_mut(&mut shared);
            let mut span_moves: Vec<SpanMove> = Vec::new();
            for outcome in round.outcomes.into_iter().flatten() {
                if outcome.visited {
                    metrics.incr(Counter::WindowsVisited);
                }
                metrics.add(Counter::BatchCacheHits, outcome.batches_skipped as u64);
                metrics.add(Counter::BatchesSolved, outcome.batches_solved as u64);
                if !outcome.moves.is_empty() {
                    metrics.incr(Counter::WindowsImproved);
                }
                for (inst, cand) in outcome.moves {
                    let (site, row, orient) = {
                        let i = d.inst(inst);
                        (i.site, i.row, i.orient)
                    };
                    if (site, row, orient) == (cand.site, cand.row, cand.orient) {
                        continue; // solvers record only real changes; guard anyway
                    }
                    metrics.incr(Counter::CellsChanged);
                    if (site, row) != (cand.site, cand.row) {
                        // Flips keep their span; only positional moves
                        // patch the occupancy index.
                        let w = d.library().cell(d.inst(inst).cell).width_sites;
                        span_moves.push(SpanMove {
                            inst,
                            old_row: row,
                            new_row: cand.row,
                            new_start: cand.site,
                            new_end: cand.site + w,
                        });
                    }
                    d.move_inst(inst, cand.site, cand.row, cand.orient);
                }
            }
            if !span_moves.is_empty() {
                let patched = Arc::make_mut(&mut rowmap).patch_moves(&span_moves);
                metrics.add(Counter::RowMapRowsPatched, patched as u64);
            }
            debug_assert!(
                rowmap.consistent_with(&shared),
                "incremental occupancy diverged from the placement"
            );
        }
    }));

    *design = Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone());
    if let Err(payload) = run {
        std::panic::resume_unwind(payload);
    }

    debug_assert!(
        design.validate_placement().is_ok(),
        "DistOpt produced an illegal placement"
    );
}

/// What happened inside one window.
pub(crate) struct WindowOutcome {
    /// Moves to commit: only cells whose placement actually changed
    /// (unchanged candidates of a changed batch are *not* recorded — they
    /// are not moves, and recording them would churn occupancy and break
    /// incremental `RowMap` patching).
    pub(crate) moves: Vec<(InstId, Candidate)>,
    /// Whether the window contained any movable cell.
    pub(crate) visited: bool,
    /// Batches handed to a window solver.
    pub(crate) batches_solved: usize,
    /// Batches skipped by the smart-selection cache.
    pub(crate) batches_skipped: usize,
}

/// Solves one window (with batching); returns the moves to commit plus
/// batch accounting for the metrics layer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn solve_one_window(
    design: &Design,
    rowmap: &RowMap,
    win: Window,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
    metrics: &MetricsHandle,
    scratch: &mut SolveScratch,
) -> WindowOutcome {
    let mut overrides = Overrides::new();
    WindowProblem::movable_in_window_into(design, rowmap, &win, &overrides, scratch);
    // Take the buffer out so `scratch` stays available for the per-batch
    // problem construction; returned before exit to keep its capacity.
    let movable = std::mem::take(&mut scratch.movable);
    let mut outcome = WindowOutcome {
        moves: Vec::new(),
        visited: !movable.is_empty(),
        batches_solved: 0,
        batches_skipped: 0,
    };
    for batch in movable.chunks(cfg.max_cells_per_milp.max(1)) {
        let prob = WindowProblem::build_with_scratch(
            design, rowmap, win, batch, p.lx, p.ly, p.flip, cfg, &overrides, scratch,
        );
        let digest = prob.state_digest();
        if let Some(c) = cache {
            if c.known_no_gain(digest) {
                outcome.batches_skipped += 1;
                continue; // identical state solved before with no gain
            }
        }
        outcome.batches_solved += 1;
        let assign = metrics.timed(Stage::WindowSolve, || {
            solve_window_with(&prob, cfg, metrics)
        });
        if assign == prob.current_assign() {
            if let Some(c) = cache {
                c.record_no_gain(digest);
            }
            continue;
        }
        for (cell, &k) in prob.cells.iter().zip(&assign) {
            if k == cell.current {
                continue; // cell kept its placement — not a move
            }
            let cand = cell.cands[k];
            overrides.insert(cell.inst, cand);
            outcome.moves.push((cell.inst, cand));
        }
    }
    scratch.movable = movable;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculate_obj;
    use crate::session::Vm1Optimizer;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(arch: CellArch, n: usize, seed: u64) -> (Design, Vm1Config) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        (d, cfg)
    }

    /// One uncached pass through the session API (what `dist_opt` used
    /// to be).
    fn pass(d: &mut Design, p: &DistOptParams, cfg: &Vm1Config) -> DistOptStats {
        Vm1Optimizer::new(cfg.clone())
            .without_cache()
            .run_pass(d, p)
    }

    fn params(d: &Design) -> DistOptParams {
        DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: (d.sites_per_row / 3).max(10),
            bh_rows: (d.num_rows / 3).max(2),
            lx: 3,
            ly: 1,
            flip: false,
        }
    }

    #[test]
    fn distopt_improves_objective_and_stays_legal() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 250, 1);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        let stats = pass(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().expect("legal after DistOpt");
        assert!(after.value <= before.value + 1e-6);
        assert!(stats.windows > 0);
        assert!(stats.rounds > 0);
        // The optimizer's purpose: more alignments.
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn distopt_openm1_improves_overlaps() {
        let (mut d, cfg) = setup(CellArch::OpenM1, 250, 2);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        let _ = pass(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().unwrap();
        assert!(after.value <= before.value + 1e-6);
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn flip_only_pass_preserves_positions() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 3);
        let positions: Vec<(i64, i64)> = d.insts().map(|(_, i)| (i.site, i.row)).collect();
        let p = DistOptParams {
            lx: 0,
            ly: 0,
            flip: true,
            ..params(&d)
        };
        let _ = pass(&mut d, &p, &cfg);
        for ((_, inst), before) in d.insts().zip(positions) {
            assert_eq!((inst.site, inst.row), before, "flip-only must not move");
        }
        d.validate_placement().unwrap();
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut d1, cfg) = setup(CellArch::ClosedM1, 200, 4);
        let (mut d2, _) = setup(CellArch::ClosedM1, 200, 4);
        let p1 = params(&d1);
        let p2 = params(&d2);
        let t1 = std::sync::Arc::new(Telemetry::new());
        let t2 = std::sync::Arc::new(Telemetry::new());
        let pool = WorkerPool::new(cfg.threads, cfg.sched);
        dist_opt_impl(
            &mut d1,
            &p1,
            &cfg,
            None,
            &MetricsHandle::of(t1.clone()),
            &pool,
        );
        dist_opt_impl(
            &mut d2,
            &p2,
            &cfg,
            None,
            &MetricsHandle::of(t2.clone()),
            &pool,
        );
        for ((_, a), (_, b)) in d1.insts().zip(d2.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        // Counters track algorithmic events only, so a repeated run must
        // reproduce every one of them exactly (stage *times* may differ).
        let (r1, r2) = (t1.report(), t2.report());
        for c in Counter::ALL {
            assert_eq!(r1.counter(c), r2.counter(c), "counter {}", c.name());
        }
        assert!(r1.counter(Counter::BatchesSolved) > 0);
        assert!(r1.counter(Counter::DfsNodes) > 0, "default solver is DFS");
        assert!(r1.counter(Counter::RowMapBuilds) > 0);
    }

    #[test]
    fn sched_policies_and_thread_counts_bit_identical() {
        // Placements AND counters must be invariant under both scheduling
        // policy and thread count (the tentpole's determinism contract).
        use crate::config::SchedPolicy;
        type Snapshot = (Vec<(i64, i64, bool)>, Vec<u64>);
        let mut reference: Option<Snapshot> = None;
        for (threads, sched) in [
            (1, SchedPolicy::WorkSteal),
            (4, SchedPolicy::WorkSteal),
            (4, SchedPolicy::StaticChunk),
        ] {
            let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 6);
            let cfg = cfg.with_threads(threads).with_sched(sched);
            let p = params(&d);
            let t = std::sync::Arc::new(Telemetry::new());
            let pool = WorkerPool::new(cfg.threads, cfg.sched);
            dist_opt_impl(&mut d, &p, &cfg, None, &MetricsHandle::of(t.clone()), &pool);
            let placement: Vec<(i64, i64, bool)> = d
                .insts()
                .map(|(_, i)| (i.site, i.row, i.orient.is_flipped()))
                .collect();
            let r = t.report();
            let counters: Vec<u64> = Counter::ALL.iter().map(|&c| r.counter(c)).collect();
            match &reference {
                None => reference = Some((placement, counters)),
                Some((p0, c0)) => {
                    assert_eq!(&placement, p0, "threads={threads} sched={sched:?}");
                    assert_eq!(&counters, c0, "threads={threads} sched={sched:?}");
                }
            }
        }
    }

    #[test]
    fn outcome_moves_are_real_changes() {
        // Regression: `solve_one_window` used to record every cell of a
        // changed batch as a move, including cells that kept their
        // placement. Every recorded move must differ from the design.
        let (d, cfg) = setup(CellArch::ClosedM1, 250, 7);
        let p = params(&d);
        let rm = RowMap::build(&d);
        let grid = WindowGrid::partition(&d, p.tx, p.ty, p.bw_sites, p.bh_rows);
        let metrics = MetricsHandle::disabled();
        let mut scratch = SolveScratch::new();
        let mut moves_seen = 0usize;
        for &win in &grid.windows {
            let out = solve_one_window(&d, &rm, win, &p, &cfg, None, &metrics, &mut scratch);
            for (inst, cand) in &out.moves {
                let i = d.inst(*inst);
                assert_ne!(
                    (i.site, i.row, i.orient),
                    (cand.site, cand.row, cand.orient),
                    "recorded move must change the placement"
                );
                moves_seen += 1;
            }
        }
        assert!(moves_seen > 0, "test design must produce some moves");
    }

    #[test]
    fn hpwl_cannot_explode() {
        // With α = 0 the optimizer is purely HPWL-driven and must not make
        // wirelength worse.
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 5);
        let cfg = cfg.with_alpha(0.0);
        let before = d.total_hpwl();
        let p = params(&d);
        let _ = pass(&mut d, &p, &cfg);
        assert!(d.total_hpwl() <= before);
    }
}
