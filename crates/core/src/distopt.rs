//! Algorithm 2 — `DistOpt`: distributable window optimization.
//!
//! The layout is partitioned into windows (shifted by `(tx, ty)`); the
//! diagonal sets of [`crate::window::WindowGrid::diagonal_sets`] are
//! processed one after another, and the windows *within* a set are solved
//! in parallel (their projections are disjoint, so window-local ΔHPWL is
//! exact — Figure 4b). Windows holding more movable cells than
//! `max_cells_per_milp` are solved in sequential batches with earlier
//! batches fixed (the documented CPLEX-scale substitution, DESIGN.md §5).

use crate::problem::{Candidate, Overrides, WindowProblem};
use crate::solver::solve_window_with;
use crate::window::{Window, WindowGrid};
use crate::Vm1Config;
use std::collections::HashSet;
use std::sync::Mutex;
use vm1_netlist::{Design, InstId};
use vm1_obs::{Counter, MetricsHandle, MetricsReport, Stage, Telemetry};
use vm1_place::RowMap;

/// Cache for the smart window selection: remembers problem-state digests
/// whose (deterministic) solve produced no improvement, so re-solving an
/// unchanged window is skipped. Sound because
/// [`WindowProblem::state_digest`] covers everything a solver observes.
#[derive(Debug, Default)]
pub struct SolveCache {
    no_gain: Mutex<HashSet<u64>>,
}

impl SolveCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// A poisoned lock only means another worker panicked mid-insert;
    /// the set of no-gain digests is append-only and stays valid.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashSet<u64>> {
        self.no_gain
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn known_no_gain(&self, digest: u64) -> bool {
        self.lock().contains(&digest)
    }

    fn record_no_gain(&self, digest: u64) {
        self.lock().insert(digest);
    }

    /// Number of remembered no-gain states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parameters of one `DistOpt` call (Algorithm 2's arguments).
#[derive(Clone, Copy, Debug)]
pub struct DistOptParams {
    /// Window-grid x shift, in sites.
    pub tx: i64,
    /// Window-grid y shift, in rows.
    pub ty: i64,
    /// Window width in sites.
    pub bw_sites: i64,
    /// Window height in rows.
    pub bh_rows: i64,
    /// Max x displacement in sites (`l_x`).
    pub lx: i64,
    /// Max y displacement in rows (`l_y`).
    pub ly: i64,
    /// Whether flipping is allowed (`f`).
    pub flip: bool,
}

/// Statistics of one `DistOpt` call — a *view* over the telemetry
/// counters recorded during the pass (see [`DistOptStats::from_report`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "dropping pass statistics usually means a result went unchecked"]
pub struct DistOptStats {
    /// Windows whose solve produced at least one cell move or flip.
    pub windows: usize,
    /// Total cells moved or flipped.
    pub cells_changed: usize,
    /// Parallel rounds executed (= number of diagonal sets).
    pub rounds: usize,
    /// Window batches skipped by the smart selection cache.
    pub batches_skipped: usize,
}

impl DistOptStats {
    /// Builds the stats view from recorded telemetry counters.
    pub fn from_report(r: &MetricsReport) -> DistOptStats {
        DistOptStats {
            windows: r.counter(Counter::WindowsImproved) as usize,
            cells_changed: r.counter(Counter::CellsChanged) as usize,
            rounds: r.counter(Counter::DistOptRounds) as usize,
            batches_skipped: r.counter(Counter::CacheHits) as usize,
        }
    }
}

/// Runs one distributable optimization pass; mutates the placement.
///
/// # Panics
///
/// Panics if the resulting placement were illegal (this is a bug guard —
/// window solutions are legal by construction).
#[deprecated(
    since = "0.2.0",
    note = "use `Vm1Optimizer::new(cfg).run_pass(design, params)` instead"
)]
pub fn dist_opt(design: &mut Design, p: &DistOptParams, cfg: &Vm1Config) -> DistOptStats {
    let telemetry = std::sync::Arc::new(Telemetry::new());
    dist_opt_impl(design, p, cfg, None, &MetricsHandle::of(telemetry.clone()));
    DistOptStats::from_report(&telemetry.report())
}

/// [`dist_opt`] with an optional smart window-selection cache shared
/// across calls (the paper's improvement (ii) over the distributable
/// optimization of Han et al.).
#[deprecated(
    since = "0.2.0",
    note = "use `Vm1Optimizer::new(cfg).with_cache().run_pass(design, params)` instead"
)]
pub fn dist_opt_cached(
    design: &mut Design,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
) -> DistOptStats {
    let telemetry = std::sync::Arc::new(Telemetry::new());
    dist_opt_impl(design, p, cfg, cache, &MetricsHandle::of(telemetry.clone()));
    DistOptStats::from_report(&telemetry.report())
}

/// Algorithm 2 proper. All accounting goes through `metrics`; callers
/// wanting a [`DistOptStats`] attach a [`Telemetry`] sink and build the
/// view from its report.
pub(crate) fn dist_opt_impl(
    design: &mut Design,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
    metrics: &MetricsHandle,
) {
    let grid = WindowGrid::partition(design, p.tx, p.ty, p.bw_sites, p.bh_rows);
    let sets = grid.diagonal_sets();
    metrics.incr(Counter::DistOptPasses);
    metrics.add(Counter::DistOptRounds, sets.len() as u64);

    for set in sets {
        // Snapshot occupancy for this round.
        let rowmap = RowMap::build(design);
        let windows: Vec<Window> = set.iter().map(|&i| grid.windows[i]).collect();

        // Solve windows of the set in parallel. The chunk partition is
        // deterministic, so per-window outcomes (and therefore every
        // counter total) are independent of thread scheduling.
        let design_ref: &Design = design;
        let rowmap_ref = &rowmap;
        let mut results: Vec<WindowOutcome> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(windows.len());
            for chunk in windows.chunks(windows.len().div_ceil(cfg.threads.max(1)).max(1)) {
                let worker_metrics = metrics.clone();
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|win| {
                            solve_one_window(
                                design_ref,
                                rowmap_ref,
                                *win,
                                p,
                                cfg,
                                cache,
                                &worker_metrics,
                            )
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(r) => results.extend(r),
                    // Surface a worker panic on the committing thread with
                    // the original payload instead of a generic message.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        // Commit (windows are disjoint, so order does not matter; keep it
        // deterministic anyway). Counters are emitted from this single
        // committing thread.
        for outcome in results {
            if outcome.visited {
                metrics.incr(Counter::WindowsVisited);
            }
            metrics.add(Counter::CacheHits, outcome.batches_skipped as u64);
            metrics.add(Counter::BatchesSolved, outcome.batches_solved as u64);
            if !outcome.moves.is_empty() {
                metrics.incr(Counter::WindowsImproved);
            }
            for (inst, cand) in outcome.moves {
                let before = {
                    let i = design.inst(inst);
                    (i.site, i.row, i.orient)
                };
                if before != (cand.site, cand.row, cand.orient) {
                    metrics.incr(Counter::CellsChanged);
                }
                design.move_inst(inst, cand.site, cand.row, cand.orient);
            }
        }
    }

    debug_assert!(
        design.validate_placement().is_ok(),
        "DistOpt produced an illegal placement"
    );
}

/// What happened inside one window.
struct WindowOutcome {
    /// Moves to commit (assignment of every cell in a changed batch).
    moves: Vec<(InstId, Candidate)>,
    /// Whether the window contained any movable cell.
    visited: bool,
    /// Batches handed to a window solver.
    batches_solved: usize,
    /// Batches skipped by the smart-selection cache.
    batches_skipped: usize,
}

/// Solves one window (with batching); returns the moves to commit plus
/// batch accounting for the metrics layer.
fn solve_one_window(
    design: &Design,
    rowmap: &RowMap,
    win: Window,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
    metrics: &MetricsHandle,
) -> WindowOutcome {
    let mut overrides = Overrides::new();
    let movable = WindowProblem::movable_in_window(design, rowmap, &win, &overrides);
    let mut outcome = WindowOutcome {
        moves: Vec::new(),
        visited: !movable.is_empty(),
        batches_solved: 0,
        batches_skipped: 0,
    };
    if movable.is_empty() {
        return outcome;
    }
    for batch in movable.chunks(cfg.max_cells_per_milp.max(1)) {
        let prob = WindowProblem::build(
            design, rowmap, win, batch, p.lx, p.ly, p.flip, cfg, &overrides,
        );
        let digest = prob.state_digest();
        if let Some(c) = cache {
            if c.known_no_gain(digest) {
                outcome.batches_skipped += 1;
                continue; // identical state solved before with no gain
            }
        }
        outcome.batches_solved += 1;
        let assign = metrics.timed(Stage::WindowSolve, || {
            solve_window_with(&prob, cfg, metrics)
        });
        if assign == prob.current_assign() {
            if let Some(c) = cache {
                c.record_no_gain(digest);
            }
            continue;
        }
        for (cell, &k) in prob.cells.iter().zip(&assign) {
            let cand = cell.cands[k];
            overrides.insert(cell.inst, cand);
            outcome.moves.push((cell.inst, cand));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculate_obj;
    use crate::session::Vm1Optimizer;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(arch: CellArch, n: usize, seed: u64) -> (Design, Vm1Config) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        (d, cfg)
    }

    /// One uncached pass through the session API (what `dist_opt` used
    /// to be).
    fn pass(d: &mut Design, p: &DistOptParams, cfg: &Vm1Config) -> DistOptStats {
        Vm1Optimizer::new(cfg.clone())
            .without_cache()
            .run_pass(d, p)
    }

    fn params(d: &Design) -> DistOptParams {
        DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: (d.sites_per_row / 3).max(10),
            bh_rows: (d.num_rows / 3).max(2),
            lx: 3,
            ly: 1,
            flip: false,
        }
    }

    #[test]
    fn distopt_improves_objective_and_stays_legal() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 250, 1);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        let stats = pass(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().expect("legal after DistOpt");
        assert!(after.value <= before.value + 1e-6);
        assert!(stats.windows > 0);
        assert!(stats.rounds > 0);
        // The optimizer's purpose: more alignments.
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn distopt_openm1_improves_overlaps() {
        let (mut d, cfg) = setup(CellArch::OpenM1, 250, 2);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        let _ = pass(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().unwrap();
        assert!(after.value <= before.value + 1e-6);
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn flip_only_pass_preserves_positions() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 3);
        let positions: Vec<(i64, i64)> = d.insts().map(|(_, i)| (i.site, i.row)).collect();
        let p = DistOptParams {
            lx: 0,
            ly: 0,
            flip: true,
            ..params(&d)
        };
        let _ = pass(&mut d, &p, &cfg);
        for ((_, inst), before) in d.insts().zip(positions) {
            assert_eq!((inst.site, inst.row), before, "flip-only must not move");
        }
        d.validate_placement().unwrap();
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut d1, cfg) = setup(CellArch::ClosedM1, 200, 4);
        let (mut d2, _) = setup(CellArch::ClosedM1, 200, 4);
        let p1 = params(&d1);
        let p2 = params(&d2);
        let t1 = std::sync::Arc::new(Telemetry::new());
        let t2 = std::sync::Arc::new(Telemetry::new());
        dist_opt_impl(&mut d1, &p1, &cfg, None, &MetricsHandle::of(t1.clone()));
        dist_opt_impl(&mut d2, &p2, &cfg, None, &MetricsHandle::of(t2.clone()));
        for ((_, a), (_, b)) in d1.insts().zip(d2.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
        // Counters track algorithmic events only, so a repeated run must
        // reproduce every one of them exactly (stage *times* may differ).
        let (r1, r2) = (t1.report(), t2.report());
        for c in Counter::ALL {
            assert_eq!(r1.counter(c), r2.counter(c), "counter {}", c.name());
        }
        assert!(r1.counter(Counter::BatchesSolved) > 0);
        assert!(r1.counter(Counter::DfsNodes) > 0, "default solver is DFS");
    }

    #[test]
    fn hpwl_cannot_explode() {
        // With α = 0 the optimizer is purely HPWL-driven and must not make
        // wirelength worse.
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 5);
        let cfg = cfg.with_alpha(0.0);
        let before = d.total_hpwl();
        let p = params(&d);
        let _ = pass(&mut d, &p, &cfg);
        assert!(d.total_hpwl() <= before);
    }
}
