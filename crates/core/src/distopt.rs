//! Algorithm 2 — `DistOpt`: distributable window optimization.
//!
//! The layout is partitioned into windows (shifted by `(tx, ty)`); the
//! diagonal sets of [`crate::window::WindowGrid::diagonal_sets`] are
//! processed one after another, and the windows *within* a set are solved
//! in parallel (their projections are disjoint, so window-local ΔHPWL is
//! exact — Figure 4b). Windows holding more movable cells than
//! `max_cells_per_milp` are solved in sequential batches with earlier
//! batches fixed (the documented CPLEX-scale substitution, DESIGN.md §5).

use crate::problem::{Candidate, Overrides, WindowProblem};
use crate::solver::solve_window;
use crate::window::{Window, WindowGrid};
use crate::Vm1Config;
use std::collections::HashSet;
use std::sync::Mutex;
use vm1_netlist::{Design, InstId};
use vm1_place::RowMap;

/// Cache for the smart window selection: remembers problem-state digests
/// whose (deterministic) solve produced no improvement, so re-solving an
/// unchanged window is skipped. Sound because
/// [`WindowProblem::state_digest`] covers everything a solver observes.
#[derive(Debug, Default)]
pub struct SolveCache {
    no_gain: Mutex<HashSet<u64>>,
}

impl SolveCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    fn known_no_gain(&self, digest: u64) -> bool {
        self.no_gain.lock().expect("cache lock").contains(&digest)
    }

    fn record_no_gain(&self, digest: u64) {
        self.no_gain.lock().expect("cache lock").insert(digest);
    }

    /// Number of remembered no-gain states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.no_gain.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Parameters of one `DistOpt` call (Algorithm 2's arguments).
#[derive(Clone, Copy, Debug)]
pub struct DistOptParams {
    /// Window-grid x shift, in sites.
    pub tx: i64,
    /// Window-grid y shift, in rows.
    pub ty: i64,
    /// Window width in sites.
    pub bw_sites: i64,
    /// Window height in rows.
    pub bh_rows: i64,
    /// Max x displacement in sites (`l_x`).
    pub lx: i64,
    /// Max y displacement in rows (`l_y`).
    pub ly: i64,
    /// Whether flipping is allowed (`f`).
    pub flip: bool,
}

/// Statistics of one `DistOpt` call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistOptStats {
    /// Windows containing at least one movable cell.
    pub windows: usize,
    /// Total cells moved or flipped.
    pub cells_changed: usize,
    /// Parallel rounds executed (= number of diagonal sets).
    pub rounds: usize,
    /// Window batches skipped by the smart selection cache.
    pub batches_skipped: usize,
}

/// Runs one distributable optimization pass; mutates the placement.
///
/// # Panics
///
/// Panics if the resulting placement were illegal (this is a bug guard —
/// window solutions are legal by construction).
pub fn dist_opt(design: &mut Design, p: &DistOptParams, cfg: &Vm1Config) -> DistOptStats {
    dist_opt_cached(design, p, cfg, None)
}

/// [`dist_opt`] with an optional smart window-selection cache shared
/// across calls (the paper's improvement (ii) over the distributable
/// optimization of Han et al.).
pub fn dist_opt_cached(
    design: &mut Design,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
) -> DistOptStats {
    let grid = WindowGrid::partition(design, p.tx, p.ty, p.bw_sites, p.bh_rows);
    let sets = grid.diagonal_sets();
    let mut stats = DistOptStats {
        rounds: sets.len(),
        ..DistOptStats::default()
    };

    for set in sets {
        // Snapshot occupancy for this round.
        let rowmap = RowMap::build(design);
        let windows: Vec<Window> = set.iter().map(|&i| grid.windows[i]).collect();

        // Solve windows of the set in parallel.
        let design_ref: &Design = design;
        let rowmap_ref = &rowmap;
        let mut results: Vec<(Vec<(InstId, Candidate)>, usize)> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(windows.len());
            for chunk in windows.chunks(windows.len().div_ceil(cfg.threads.max(1)).max(1)) {
                handles.push(scope.spawn(move |_| {
                    chunk
                        .iter()
                        .map(|win| solve_one_window(design_ref, rowmap_ref, *win, p, cfg, cache))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("window solver thread panicked"));
            }
        })
        .expect("crossbeam scope");

        // Commit (windows are disjoint, so order does not matter; keep it
        // deterministic anyway).
        for (moves, skipped) in results {
            stats.batches_skipped += skipped;
            if !moves.is_empty() {
                stats.windows += 1;
            }
            for (inst, cand) in moves {
                let before = {
                    let i = design.inst(inst);
                    (i.site, i.row, i.orient)
                };
                if before != (cand.site, cand.row, cand.orient) {
                    stats.cells_changed += 1;
                }
                design.move_inst(inst, cand.site, cand.row, cand.orient);
            }
        }
    }

    debug_assert!(
        design.validate_placement().is_ok(),
        "DistOpt produced an illegal placement"
    );
    stats
}

/// Solves one window (with batching); returns the moves to commit and the
/// number of batches skipped via the cache.
fn solve_one_window(
    design: &Design,
    rowmap: &RowMap,
    win: Window,
    p: &DistOptParams,
    cfg: &Vm1Config,
    cache: Option<&SolveCache>,
) -> (Vec<(InstId, Candidate)>, usize) {
    let mut overrides = Overrides::new();
    let movable = WindowProblem::movable_in_window(design, rowmap, &win, &overrides);
    if movable.is_empty() {
        return (Vec::new(), 0);
    }
    let mut moves = Vec::new();
    let mut skipped = 0;
    for batch in movable.chunks(cfg.max_cells_per_milp.max(1)) {
        let prob = WindowProblem::build(
            design, rowmap, win, batch, p.lx, p.ly, p.flip, cfg, &overrides,
        );
        let digest = prob.state_digest();
        if let Some(c) = cache {
            if c.known_no_gain(digest) {
                skipped += 1;
                continue; // identical state solved before with no gain
            }
        }
        let assign = solve_window(&prob, cfg);
        if assign == prob.current_assign() {
            if let Some(c) = cache {
                c.record_no_gain(digest);
            }
            continue;
        }
        for (cell, &k) in prob.cells.iter().zip(&assign) {
            let cand = cell.cands[k];
            overrides.insert(cell.inst, cand);
            moves.push((cell.inst, cand));
        }
    }
    (moves, skipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calculate_obj;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(arch: CellArch, n: usize, seed: u64) -> (Design, Vm1Config) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        (d, cfg)
    }

    fn params(d: &Design) -> DistOptParams {
        DistOptParams {
            tx: 0,
            ty: 0,
            bw_sites: (d.sites_per_row / 3).max(10),
            bh_rows: (d.num_rows / 3).max(2),
            lx: 3,
            ly: 1,
            flip: false,
        }
    }

    #[test]
    fn distopt_improves_objective_and_stays_legal() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 250, 1);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        let stats = dist_opt(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().expect("legal after DistOpt");
        assert!(after.value <= before.value + 1e-6);
        assert!(stats.windows > 0);
        assert!(stats.rounds > 0);
        // The optimizer's purpose: more alignments.
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn distopt_openm1_improves_overlaps() {
        let (mut d, cfg) = setup(CellArch::OpenM1, 250, 2);
        let before = calculate_obj(&d, &cfg);
        let p = params(&d);
        dist_opt(&mut d, &p, &cfg);
        let after = calculate_obj(&d, &cfg);
        d.validate_placement().unwrap();
        assert!(after.value <= before.value + 1e-6);
        assert!(after.alignments >= before.alignments);
    }

    #[test]
    fn flip_only_pass_preserves_positions() {
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 3);
        let positions: Vec<(i64, i64)> = d.insts().map(|(_, i)| (i.site, i.row)).collect();
        let p = DistOptParams {
            lx: 0,
            ly: 0,
            flip: true,
            ..params(&d)
        };
        dist_opt(&mut d, &p, &cfg);
        for ((_, inst), before) in d.insts().zip(positions) {
            assert_eq!((inst.site, inst.row), before, "flip-only must not move");
        }
        d.validate_placement().unwrap();
    }

    #[test]
    fn deterministic_across_runs() {
        let (mut d1, cfg) = setup(CellArch::ClosedM1, 200, 4);
        let (mut d2, _) = setup(CellArch::ClosedM1, 200, 4);
        let p1 = params(&d1);
        let p2 = params(&d2);
        dist_opt(&mut d1, &p1, &cfg);
        dist_opt(&mut d2, &p2, &cfg);
        for ((_, a), (_, b)) in d1.insts().zip(d2.insts()) {
            assert_eq!((a.site, a.row, a.orient), (b.site, b.row, b.orient));
        }
    }

    #[test]
    fn hpwl_cannot_explode() {
        // With α = 0 the optimizer is purely HPWL-driven and must not make
        // wirelength worse.
        let (mut d, cfg) = setup(CellArch::ClosedM1, 200, 5);
        let cfg = cfg.with_alpha(0.0);
        let before = d.total_hpwl();
        let p = params(&d);
        dist_opt(&mut d, &p, &cfg);
        assert!(d.total_hpwl() <= before);
    }
}
