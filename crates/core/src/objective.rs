//! The paper's objective on a whole design (`CalculateObj` of
//! Algorithm 2).

use crate::pairs::{alignable_pairs, pair_aligned};
use crate::Vm1Config;
use vm1_geom::Dbu;
use vm1_netlist::Design;

/// Decomposed objective value.
#[derive(Clone, Copy, Debug, PartialEq)]
#[must_use = "an objective evaluation is only useful if it is read"]
pub struct Objective {
    /// Σ HPWL over all nets (nm).
    pub hpwl: Dbu,
    /// Number of vertically alignable pin pairs (Σ d_pq).
    pub alignments: usize,
    /// Total overlap length beyond δ over aligned pairs (Σ o_pq, nm;
    /// zero for ClosedM1).
    pub overlap_sum: Dbu,
    /// The scalar objective
    /// `β·HPWL − α·alignments − ε·overlap_sum` (minimized).
    pub value: f64,
}

/// Evaluates objective (1)/(10) on the current placement.
pub fn calculate_obj(design: &Design, cfg: &Vm1Config) -> Objective {
    let hpwl = design.total_hpwl();
    let weighted_hpwl: f64 = design
        .nets()
        .map(|(id, _)| cfg.net_weight(id) * design.net_hpwl(id).nm() as f64)
        .sum();
    let (alignments, overlap_sum) = overlap_stats(design, cfg);
    let value =
        weighted_hpwl - cfg.alpha * alignments as f64 - cfg.epsilon * overlap_sum.nm() as f64;
    Objective {
        hpwl,
        alignments,
        overlap_sum,
        value,
    }
}

/// Number of alignable pairs in the current placement (Σ d_pq).
#[must_use]
pub fn count_alignments(design: &Design, cfg: &Vm1Config) -> usize {
    overlap_stats(design, cfg).0
}

/// `(Σ d_pq, Σ o_pq)` over all eligible pairs.
#[must_use]
pub fn overlap_stats(design: &Design, cfg: &Vm1Config) -> (usize, Dbu) {
    let pairs = alignable_pairs(design, cfg);
    let mut count = 0usize;
    let mut overlap = Dbu::ZERO;
    for &(a, b, _) in &pairs.pairs {
        if let Some(ov) = pair_aligned(design, cfg, a, b) {
            count += 1;
            overlap += ov;
        }
    }
    (count, overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library};

    #[test]
    fn objective_components_consistent() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(150)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let cfg = Vm1Config::closedm1();
        let obj = calculate_obj(&d, &cfg);
        assert_eq!(obj.hpwl, d.total_hpwl());
        assert_eq!(obj.alignments, count_alignments(&d, &cfg));
        let expect = obj.hpwl.nm() as f64 - cfg.alpha * obj.alignments as f64;
        assert!((obj.value - expect).abs() < 1e-9);
    }

    #[test]
    fn alignment_increases_lower_objective() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = vm1_netlist::Design::new("t", lib, 3, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        let cfg = Vm1Config::closedm1();
        d.move_inst(a, 5, 0, Orient::North);
        d.move_inst(b, 7, 1, Orient::North); // not aligned
        let o1 = calculate_obj(&d, &cfg);
        d.move_inst(b, 6, 1, Orient::North); // aligned, shorter too
        let o2 = calculate_obj(&d, &cfg);
        assert_eq!(o1.alignments, 0);
        assert_eq!(o2.alignments, 1);
        assert!(o2.value < o1.value);
    }

    #[test]
    fn openm1_counts_overlap_length() {
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let mut d = vm1_netlist::Design::new("t", lib, 3, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        let cfg = Vm1Config::openm1();
        d.move_inst(a, 5, 0, Orient::North);
        d.move_inst(b, 6, 1, Orient::North);
        let (cnt, ov) = overlap_stats(&d, &cfg);
        assert_eq!(cnt, 1);
        assert!(ov > Dbu(0), "generous overlap beyond delta");
    }
}
