//! Layout partitioning into optimization windows and selection of
//! diagonally independent window sets (paper §4.1, Figures 3–4).
//!
//! Windows in one *diagonal set* have pairwise disjoint projections onto
//! both axes, so their window-local ΔHPWL values add up to the true total
//! ΔHPWL (Figure 4b) and they can be optimized in parallel without
//! interfering.

use vm1_netlist::Design;

/// A rectangular optimization window in site/row coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First site column of the window.
    pub site0: i64,
    /// First row of the window.
    pub row0: i64,
    /// Width in sites.
    pub w_sites: i64,
    /// Height in rows.
    pub h_rows: i64,
}

impl Window {
    /// Exclusive end column.
    #[must_use]
    pub fn site_end(&self) -> i64 {
        self.site0 + self.w_sites
    }

    /// Exclusive end row.
    #[must_use]
    pub fn row_end(&self) -> i64 {
        self.row0 + self.h_rows
    }

    /// Whether the span `[site, site+w)` in `row` lies fully inside.
    #[must_use]
    pub fn contains_span(&self, site: i64, w: i64, row: i64) -> bool {
        row >= self.row0
            && row < self.row_end()
            && site >= self.site0
            && site + w <= self.site_end()
    }
}

/// The window grid of one `Partition()` call.
#[derive(Clone, Debug)]
pub struct WindowGrid {
    /// All windows, row-major (`j * nc + i`).
    pub windows: Vec<Window>,
    /// Number of window columns.
    pub nc: usize,
    /// Number of window rows.
    pub nr: usize,
}

impl WindowGrid {
    /// Partitions the design core into windows of `bw_sites` × `bh_rows`
    /// with the grid shifted by `(tx, ty)` (the paper's window-shift
    /// mechanism that lets later iterations optimize the previous
    /// boundary regions).
    ///
    /// The grid is clamped to the core: every returned window has positive
    /// width and height. Oversize windows (`bw_sites > sites_per_row`,
    /// `bh_rows > num_rows`) or large shifts therefore never inflate
    /// `nc`/`nr` with fully empty trailing columns/rows, which used to
    /// produce extra empty diagonal rounds counted in `DistOptRounds`.
    ///
    /// # Panics
    ///
    /// Panics if a window dimension is not positive.
    #[must_use]
    pub fn partition(design: &Design, tx: i64, ty: i64, bw_sites: i64, bh_rows: i64) -> WindowGrid {
        assert!(bw_sites > 0 && bh_rows > 0, "window must be positive");
        let tx = tx.rem_euclid(bw_sites);
        let ty = ty.rem_euclid(bh_rows);
        // Non-empty `[start, start+len)` spans of width-`b` windows shifted
        // left by `t`, clipped to `[0, total)`. Each loop step produces a
        // non-empty span: `s1 > s0` holds whenever `start < total` (the
        // first span starts at `-t` with `t < b`, so its clipped start is 0
        // and its clipped end is `min(b - t, total) > 0`).
        let spans = |total: i64, b: i64, t: i64| -> Vec<(i64, i64)> {
            let mut out = Vec::new();
            let mut start = -t;
            while start < total {
                let s0 = start.max(0);
                let s1 = (start + b).min(total);
                out.push((s0, s1 - s0));
                start += b;
            }
            out
        };
        let cols = spans(design.sites_per_row.max(0), bw_sites, tx);
        let rws = spans(design.num_rows.max(0), bh_rows, ty);
        let nc = cols.len();
        let nr = rws.len();
        let mut windows = Vec::with_capacity(nc * nr);
        for &(r0, h) in &rws {
            for &(s0, w) in &cols {
                windows.push(Window {
                    site0: s0,
                    row0: r0,
                    w_sites: w,
                    h_rows: h,
                });
            }
        }
        WindowGrid { windows, nc, nr }
    }

    /// Groups window indices into diagonal sets: within a set no two
    /// windows share a window-grid row or column, hence their projections
    /// onto both axes are disjoint (Figure 3). Every window appears in
    /// exactly one set; there are `max(nc, nr)` sets, matching the paper's
    /// `√|W|` parallel rounds for a square grid.
    #[must_use]
    pub fn diagonal_sets(&self) -> Vec<Vec<usize>> {
        let nc = self.nc;
        let nr = self.nr;
        let k = nc.max(nr);
        let mut sets = vec![Vec::new(); k];
        for j in 0..nr {
            for i in 0..nc {
                // Shift s pairs (j, i) with i ≡ j + s (mod k); because
                // k ≥ nc and k ≥ nr, each set has at most one window per
                // grid row and per grid column.
                let s = (i + k - j % k) % k;
                if self.windows[j * nc + i].w_sites > 0 && self.windows[j * nc + i].h_rows > 0 {
                    sets[s].push(j * nc + i);
                }
            }
        }
        sets.retain(|s| !s.is_empty());
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_tech::{CellArch, Library};

    fn design(rows: i64, sites: i64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        Design::new("t", lib, rows, sites)
    }

    #[test]
    fn partition_covers_core_exactly() {
        let d = design(10, 95);
        for (tx, ty) in [(0, 0), (3, 1), (7, 2)] {
            let g = WindowGrid::partition(&d, tx, ty, 10, 3);
            let area: i64 = g.windows.iter().map(|w| w.w_sites * w.h_rows).sum();
            assert_eq!(area, 10 * 95, "tx={tx} ty={ty}");
            // No overlaps: windows tile by construction; check pairwise
            // disjointness on a sample.
            for (a_idx, a) in g.windows.iter().enumerate() {
                for b in &g.windows[a_idx + 1..] {
                    let x_overlap = a.site0 < b.site_end() && b.site0 < a.site_end();
                    let y_overlap = a.row0 < b.row_end() && b.row0 < a.row_end();
                    assert!(!(x_overlap && y_overlap && a.w_sites > 0 && b.w_sites > 0));
                }
            }
        }
    }

    #[test]
    fn shifted_partition_moves_boundaries() {
        let d = design(10, 100);
        let g0 = WindowGrid::partition(&d, 0, 0, 10, 5);
        let g1 = WindowGrid::partition(&d, 5, 2, 10, 5);
        assert_ne!(g0.windows[0], g1.windows[0]);
        assert_eq!(g1.windows[0].w_sites, 5, "first window clipped by shift");
    }

    #[test]
    fn diagonal_sets_are_disjoint_projections() {
        let d = design(12, 100);
        let g = WindowGrid::partition(&d, 0, 0, 10, 3);
        let sets = g.diagonal_sets();
        // Every non-empty window appears exactly once.
        let mut seen = vec![false; g.windows.len()];
        for set in &sets {
            for &w in set {
                assert!(!seen[w], "window {w} in two sets");
                seen[w] = true;
            }
            // Disjoint x and y projections inside a set.
            for (k, &a_idx) in set.iter().enumerate() {
                for &b_idx in &set[k + 1..] {
                    let a = g.windows[a_idx];
                    let b = g.windows[b_idx];
                    let x_overlap = a.site0 < b.site_end() && b.site0 < a.site_end();
                    let y_overlap = a.row0 < b.row_end() && b.row0 < a.row_end();
                    assert!(!x_overlap, "x projections must be disjoint");
                    assert!(!y_overlap, "y projections must be disjoint");
                }
            }
        }
        let covered = seen.iter().filter(|&&s| s).count();
        let nonempty = g
            .windows
            .iter()
            .filter(|w| w.w_sites > 0 && w.h_rows > 0)
            .count();
        assert_eq!(covered, nonempty);
    }

    #[test]
    fn oversize_window_clamps_to_single_window() {
        // bw_sites > sites_per_row and bh_rows > num_rows: one window, no
        // empty trailing grid columns/rows (regression: the old formula
        // inflated nc/nr, producing empty diagonal rounds).
        let d = design(4, 30);
        let g = WindowGrid::partition(&d, 0, 0, 100, 10);
        assert_eq!((g.nc, g.nr), (1, 1));
        assert_eq!(g.windows.len(), 1);
        assert_eq!(
            g.windows[0],
            Window {
                site0: 0,
                row0: 0,
                w_sites: 30,
                h_rows: 4,
            }
        );
        assert_eq!(g.diagonal_sets().len(), 1);
    }

    #[test]
    fn oversize_window_with_shift_stays_clamped() {
        let d = design(4, 30);
        for (tx, ty) in [(1, 1), (50, 5), (99, 9), (-7, -3)] {
            let g = WindowGrid::partition(&d, tx, ty, 100, 10);
            let area: i64 = g.windows.iter().map(|w| w.w_sites * w.h_rows).sum();
            assert_eq!(area, 4 * 30, "tx={tx} ty={ty}");
            assert!(
                g.windows.iter().all(|w| w.w_sites > 0 && w.h_rows > 0),
                "tx={tx} ty={ty}: all windows non-empty"
            );
            assert_eq!(g.windows.len(), g.nc * g.nr);
        }
    }

    #[test]
    fn large_shifts_produce_no_empty_windows() {
        let d = design(10, 95);
        for (tx, ty) in [(9, 2), (10, 3), (1234, -567), (-95, 10)] {
            let g = WindowGrid::partition(&d, tx, ty, 10, 3);
            let area: i64 = g.windows.iter().map(|w| w.w_sites * w.h_rows).sum();
            assert_eq!(area, 10 * 95, "tx={tx} ty={ty}");
            assert!(
                g.windows.iter().all(|w| w.w_sites > 0 && w.h_rows > 0),
                "tx={tx} ty={ty}: all windows non-empty"
            );
        }
    }

    #[test]
    fn set_count_near_sqrt_w() {
        let d = design(30, 300);
        let g = WindowGrid::partition(&d, 0, 0, 30, 3); // 10 x 10 windows
        let sets = g.diagonal_sets();
        assert_eq!(sets.len(), 10, "√100 parallel rounds");
    }

    #[test]
    fn contains_span() {
        let w = Window {
            site0: 10,
            row0: 2,
            w_sites: 20,
            h_rows: 3,
        };
        assert!(w.contains_span(10, 5, 2));
        assert!(w.contains_span(25, 5, 4));
        assert!(!w.contains_span(26, 5, 4), "crosses right edge");
        assert!(!w.contains_span(9, 5, 3), "crosses left edge");
        assert!(!w.contains_span(15, 5, 5), "outside rows");
    }
}
