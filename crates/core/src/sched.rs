//! Persistent work-stealing worker pool for the `DistOpt` rounds.
//!
//! The pool is created once (lazily, by [`crate::Vm1Optimizer`]) and
//! reused for every round of every pass, replacing the per-round
//! scoped-thread spawning the module used to do. Each round hands the
//! workers an immutable snapshot of the design and occupancy index
//! (`Arc`s inside [`RoundCtx`]); every window of the round is one task.
//!
//! # Scheduling
//!
//! Under [`SchedPolicy::WorkSteal`] tasks are striped over per-worker
//! deques; a worker pops its own deque from the front and, when empty,
//! steals from the back of the others — so one dense window no longer
//! stalls its whole round. [`SchedPolicy::StaticChunk`] assigns one
//! contiguous chunk per worker with no stealing, mirroring the old
//! behaviour for benchmarks.
//!
//! # Determinism
//!
//! Scheduling never reaches the results: each task writes its
//! [`WindowOutcome`] into a slot indexed by task number, and the round
//! returns the slots in window-index order to the single committing
//! thread. A window outcome depends only on the round's immutable inputs
//! (windows of one diagonal set are disjoint, and the no-gain cache can
//! never be hit by a digest inserted in the same round because digests
//! include the window position), so placements and every [`vm1_obs::Counter`]
//! are bit-identical for any `threads`/policy combination. Only the
//! [`SchedGauge`] channel (steals, busy times) is scheduling-dependent.
//!
//! # Pool protocol
//!
//! A round is published under the pool mutex with a bumped epoch; workers
//! attach (increment `working`) at most once per epoch. A worker drops
//! its `Arc<RoundState>` clone *before* detaching, so when the committing
//! thread observes `remaining == 0 && working == 0` under the same mutex,
//! no worker can still hold the design/rowmap snapshots. Task panics are
//! caught per task and re-raised on the committing thread after cleanup.
//!
//! # Schedule-permutation model checking
//!
//! [`WorkerPool::new_adversarial`] arms a seeded adversary that replays
//! every round under a worst-case interleaving drawn from a per-round
//! xorshift64 stream: permuted task stripes, all tasks piled onto one
//! victim queue (forcing every other worker to steal), reversed queue
//! drains, and rotated chunk assignments — plus randomized steal-victim
//! rotation and steal-before-own-queue ordering. Because scheduling can
//! never reach the results (see *Determinism* above), placements and
//! every counter must stay bit-identical under any adversary seed; the
//! `sched_permutation` integration tests assert exactly that.

use crate::distopt::{solve_one_window, DistOptParams, SolveCache, WindowOutcome};
use crate::problem::SolveScratch;
use crate::window::Window;
use crate::{SchedPolicy, Vm1Config};
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use vm1_netlist::Design;
use vm1_obs::timer::Stopwatch;
use vm1_obs::{MetricsHandle, SchedGauge};
use vm1_place::RowMap;

/// All locks in this module guard plain data that is valid in every
/// intermediate state, so a poisoning panic elsewhere never invalidates
/// them.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Everything one round of window solving needs, shared with the workers.
pub(crate) struct RoundCtx {
    /// Immutable design snapshot of the round.
    pub design: Arc<Design>,
    /// Occupancy index matching `design`.
    pub rowmap: Arc<RowMap>,
    /// The round's windows (one diagonal set, in window-index order).
    pub windows: Vec<Window>,
    /// DistOpt parameters of the pass.
    pub p: DistOptParams,
    /// Solver configuration.
    pub cfg: Arc<Vm1Config>,
    /// Smart window-selection cache, if enabled.
    pub cache: Option<SolveCache>,
    /// Metrics fan-out of the pass.
    pub metrics: MetricsHandle,
}

/// What a round returns to the committing thread.
pub(crate) struct RoundResult {
    /// Per-window outcomes in window-index order; `None` only for a task
    /// that panicked (then `panics` is non-empty).
    pub outcomes: Vec<Option<WindowOutcome>>,
    /// Panic payloads of crashed tasks, to re-raise after cleanup.
    pub panics: Vec<Box<dyn Any + Send>>,
}

/// Shared state of one in-flight round.
struct RoundState {
    ctx: RoundCtx,
    policy: SchedPolicy,
    queues: Vec<Mutex<VecDeque<usize>>>,
    results: Vec<Mutex<Option<WindowOutcome>>>,
    remaining: AtomicUsize,
    panics: Mutex<Vec<Box<dyn Any + Send>>>,
    /// Adversarial steal-victim rotation: worker `w` tries victims
    /// starting at `(w + steal_rot)`. Zero in normal rounds.
    steal_rot: usize,
    /// Adversarial ordering: steal from other queues *before* draining
    /// the own queue. False in normal rounds.
    steal_first: bool,
}

/// Splitmix-style seeded xorshift64 stream for the schedule adversary.
/// Deterministic per (seed, round), so a failing seed replays exactly.
struct AdversaryRng(u64);

impl AdversaryRng {
    fn new(seed: u64, round: u64) -> AdversaryRng {
        // Mix so that seed 0 / round 0 still yields a nonzero state.
        AdversaryRng(
            seed ^ round
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x1234_5678_9ABC_DEF1),
        )
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish draw in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct PoolState {
    round: Option<Arc<RoundState>>,
    epoch: u64,
    working: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a round is published or the pool shuts down.
    work_cv: Condvar,
    /// Signalled when a worker detaches from a round.
    done_cv: Condvar,
}

/// The persistent window-solving pool. Owned by `Vm1Optimizer`; dropped
/// pools shut their workers down and join them.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    policy: SchedPolicy,
    /// Scratch of the inline path (single-thread pools and one-window
    /// rounds run on the calling thread).
    scratch: Mutex<SolveScratch>,
    /// Adversary seed; `None` runs the normal schedule.
    adversary: Option<u64>,
    /// Rounds dispatched so far — the adversary's per-round stream index.
    rounds: AtomicU64,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` persistent workers. A single-thread
    /// pool spawns nothing and runs rounds inline on the caller.
    pub(crate) fn new(threads: usize, policy: SchedPolicy) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                round: None,
                epoch: 0,
                working: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        if threads >= 2 {
            for i in 0..threads {
                let sh = Arc::clone(&shared);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("vm1-window-{i}"))
                        .spawn(move || worker_main(&sh, i))
                        .expect("spawn DistOpt pool worker"), // lint: allow(cannot run without workers; spawn failure at construction is unrecoverable)
                );
            }
        }
        WorkerPool {
            shared,
            handles,
            policy,
            scratch: Mutex::new(SolveScratch::default()),
            adversary: None,
            rounds: AtomicU64::new(0),
        }
    }

    /// Creates a pool whose every round is scheduled by the seeded
    /// adversary (see the module docs). Forces [`SchedPolicy::WorkSteal`]:
    /// the adversary's all-to-one mode relies on stealing to drain.
    pub(crate) fn new_adversarial(threads: usize, seed: u64) -> WorkerPool {
        let mut pool = WorkerPool::new(threads, SchedPolicy::WorkSteal);
        pool.adversary = Some(seed);
        pool
    }

    /// Number of pool workers (0 = inline execution on the caller).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Solves every window of `ctx` and returns the outcomes in
    /// window-index order. Blocks until the round is fully drained; on
    /// return no worker holds a reference to the round's snapshots.
    pub(crate) fn run_round(&self, ctx: RoundCtx) -> RoundResult {
        let n = ctx.windows.len();
        if self.handles.is_empty() || n <= 1 {
            return self.run_inline(&ctx);
        }
        let nw = self.handles.len();
        let mut qs: Vec<VecDeque<usize>> = (0..nw).map(|_| VecDeque::new()).collect();
        let mut steal_rot = 0usize;
        let mut steal_first = false;
        if let Some(seed) = self.adversary {
            let round_no = self.rounds.fetch_add(1, Ordering::Relaxed);
            let mut rng = AdversaryRng::new(seed, round_no);
            adversarial_distribute(&mut qs, n, &mut rng);
            steal_rot = rng.below(nw);
            steal_first = rng.next() & 1 == 1;
        } else {
            match self.policy {
                SchedPolicy::WorkSteal => {
                    for t in 0..n {
                        qs[t % nw].push_back(t);
                    }
                }
                SchedPolicy::StaticChunk => {
                    let chunk = n.div_ceil(nw).max(1);
                    for t in 0..n {
                        qs[(t / chunk).min(nw - 1)].push_back(t);
                    }
                }
            }
        }
        let round = Arc::new(RoundState {
            ctx,
            policy: self.policy,
            queues: qs.into_iter().map(Mutex::new).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            panics: Mutex::new(Vec::new()),
            steal_rot,
            steal_first,
        });
        {
            let mut st = lock(&self.shared.state);
            st.round = Some(Arc::clone(&round));
            st.epoch = st.epoch.wrapping_add(1);
            self.shared.work_cv.notify_all();
            while round.remaining.load(Ordering::Acquire) != 0 || st.working != 0 {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            // Clearing the slot under the same lock in which `working`
            // hit zero guarantees no worker re-attaches to this epoch.
            st.round = None;
        }
        let panics = std::mem::take(&mut *lock(&round.panics));
        let outcomes = round.results.iter().map(|r| lock(r).take()).collect();
        // Last reference: releases the design/rowmap snapshot clones so
        // the committing thread regains unique ownership.
        drop(round);
        RoundResult { outcomes, panics }
    }

    /// Runs a round on the calling thread (single-thread pools and
    /// trivial rounds). Panics propagate directly to the caller.
    fn run_inline(&self, ctx: &RoundCtx) -> RoundResult {
        let start = Stopwatch::start();
        let mut scratch = lock(&self.scratch);
        let outcomes: Vec<Option<WindowOutcome>> = ctx
            .windows
            .iter()
            .map(|&win| {
                Some(solve_one_window(
                    &ctx.design,
                    &ctx.rowmap,
                    win,
                    &ctx.p,
                    &ctx.cfg,
                    ctx.cache.as_ref(),
                    &ctx.metrics,
                    &mut scratch,
                ))
            })
            .collect();
        // Rule D4: release the scratch guard before any telemetry send.
        drop(scratch);
        let busy = start.elapsed_nanos();
        ctx.metrics
            .record_gauge(SchedGauge::TasksExecuted, ctx.windows.len() as u64);
        ctx.metrics.record_gauge(SchedGauge::WorkerBusyNanos, busy);
        ctx.metrics
            .record_gauge(SchedGauge::WorkerBusyMaxNanos, busy);
        RoundResult {
            outcomes,
            panics: Vec::new(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock(&self.shared.state).shutdown = true;
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Worker loop: wait for a round, drain tasks, detach, repeat.
fn worker_main(shared: &PoolShared, me: usize) {
    let mut scratch = SolveScratch::default();
    let mut last_epoch = 0u64;
    loop {
        let round = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                match &st.round {
                    Some(r) if st.epoch != last_epoch => {
                        let r = Arc::clone(r);
                        last_epoch = st.epoch;
                        st.working += 1;
                        break r;
                    }
                    _ => {
                        st = shared
                            .work_cv
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        run_tasks(&round, me, &mut scratch);
        // Drop our reference BEFORE detaching: once the committing thread
        // observes `working == 0`, no worker still holds the round.
        drop(round);
        let mut st = lock(&shared.state);
        st.working -= 1;
        drop(st);
        shared.done_cv.notify_all();
    }
}

/// Drains tasks for one attached worker and records the scheduler gauges.
fn run_tasks(round: &RoundState, me: usize, scratch: &mut SolveScratch) {
    let start = Stopwatch::start();
    let me = me % round.queues.len();
    let mut executed = 0u64;
    let mut steals = 0u64;
    while let Some(task) = claim_task(round, me, &mut steals) {
        let ctx = &round.ctx;
        let win = ctx.windows[task];
        let out = catch_unwind(AssertUnwindSafe(|| {
            solve_one_window(
                &ctx.design,
                &ctx.rowmap,
                win,
                &ctx.p,
                &ctx.cfg,
                ctx.cache.as_ref(),
                &ctx.metrics,
                scratch,
            )
        }));
        match out {
            Ok(outcome) => *lock(&round.results[task]) = Some(outcome),
            Err(payload) => lock(&round.panics).push(payload),
        }
        executed += 1;
        // Count the task done only after its result (or panic payload)
        // is visible; the committing thread acquires on this counter.
        round.remaining.fetch_sub(1, Ordering::AcqRel);
    }
    let busy = start.elapsed_nanos();
    let m = &round.ctx.metrics;
    m.record_gauge(SchedGauge::TasksExecuted, executed);
    m.record_gauge(SchedGauge::Steals, steals);
    m.record_gauge(SchedGauge::WorkerBusyNanos, busy);
    m.record_gauge(SchedGauge::WorkerBusyMaxNanos, busy);
}

/// Fills the round's queues under one of the adversary's four worst-case
/// interleaving modes, drawn from the per-round stream.
fn adversarial_distribute(qs: &mut [VecDeque<usize>], n: usize, rng: &mut AdversaryRng) {
    let nw = qs.len();
    match rng.below(4) {
        0 => {
            // Permuted stripes: Fisher–Yates shuffle of the task order
            // before striping, so no worker sees ascending indices.
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.below(i + 1));
            }
            for (k, &t) in order.iter().enumerate() {
                qs[k % nw].push_back(t);
            }
        }
        1 => {
            // All tasks on one victim queue: every other worker must
            // steal (from the back, so the victim and thieves collide).
            let victim = rng.below(nw);
            for t in 0..n {
                qs[victim].push_back(t);
            }
        }
        2 => {
            // Reversed drains: push_front makes each owner pop its
            // stripe in descending task order while thieves steal
            // ascending ones from the back.
            for t in 0..n {
                qs[t % nw].push_front(t);
            }
        }
        _ => {
            // Rotated chunks: contiguous chunks land on shifted owners,
            // maximally unlike the striped default.
            let rot = rng.below(nw);
            let chunk = n.div_ceil(nw).max(1);
            for t in 0..n {
                qs[((t / chunk) + rot) % nw].push_back(t);
            }
        }
    }
}

/// Pops the next task: own deque front first, then (work-stealing only)
/// the back of the other workers' deques. Adversarial rounds may rotate
/// the victim order (`steal_rot`) or steal before the own drain
/// (`steal_first`).
fn claim_task(round: &RoundState, me: usize, steals: &mut u64) -> Option<usize> {
    let pop_own = |round: &RoundState| lock(&round.queues[me]).pop_front();
    if !round.steal_first {
        if let Some(t) = pop_own(round) {
            return Some(t);
        }
    }
    if round.policy == SchedPolicy::WorkSteal {
        let nq = round.queues.len();
        for off in 0..nq {
            let victim = (me + round.steal_rot + off) % nq;
            if victim == me {
                continue;
            }
            if let Some(t) = lock(&round.queues[victim]).pop_back() {
                *steals += 1;
                return Some(t);
            }
        }
    }
    if round.steal_first {
        if let Some(t) = pop_own(round) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let pool = WorkerPool::new(1, SchedPolicy::WorkSteal);
        assert_eq!(pool.workers(), 0, "threads=1 runs inline");
    }

    #[test]
    fn multi_thread_pool_spawns_and_joins_workers() {
        let pool = WorkerPool::new(4, SchedPolicy::StaticChunk);
        assert_eq!(pool.workers(), 4);
        assert!(format!("{pool:?}").contains("StaticChunk"));
        drop(pool); // must shut down and join without hanging
    }

    #[test]
    fn pool_survives_repeated_create_drop() {
        for _ in 0..3 {
            let pool = WorkerPool::new(2, SchedPolicy::WorkSteal);
            assert_eq!(pool.workers(), 2);
        }
    }

    #[test]
    fn adversarial_pool_forces_work_stealing() {
        let pool = WorkerPool::new_adversarial(4, 7);
        assert_eq!(pool.workers(), 4);
        assert_eq!(pool.policy, SchedPolicy::WorkSteal);
        assert_eq!(pool.adversary, Some(7));
    }

    #[test]
    fn adversary_stream_is_deterministic_per_round() {
        let draws = |seed, round| {
            let mut rng = AdversaryRng::new(seed, round);
            [rng.next(), rng.next(), rng.next()]
        };
        assert_eq!(draws(42, 0), draws(42, 0), "same (seed, round) replays");
        assert_ne!(draws(42, 0), draws(42, 1), "rounds draw distinct streams");
        assert_ne!(draws(42, 0), draws(43, 0), "seeds draw distinct streams");
        // Seed 0 must not collapse the xorshift state to zero.
        let mut zero = AdversaryRng::new(0, 0);
        assert_ne!(zero.next(), 0);
    }

    #[test]
    fn adversarial_distribution_covers_every_task_once() {
        for seed in 0..32u64 {
            let mut rng = AdversaryRng::new(seed, 0);
            let mut qs: Vec<VecDeque<usize>> = (0..4).map(|_| VecDeque::new()).collect();
            adversarial_distribute(&mut qs, 23, &mut rng);
            let mut seen: Vec<usize> = qs.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..23).collect::<Vec<_>>(), "seed {seed}");
        }
    }
}
