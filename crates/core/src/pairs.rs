//! Extraction of candidate pin pairs for vertical M1 alignment.

use crate::Vm1Config;
use vm1_geom::Dbu;
use vm1_netlist::{Design, NetId, NetPin, PinRef};
use vm1_tech::{CellArch, Layer};

/// All pin pairs eligible for a `d_pq` variable: cell-pin pairs of the
/// same (small enough) net, on the architecture's pin layer, from distinct
/// instances.
#[derive(Clone, Debug, Default)]
pub struct PinPairs {
    /// `(p, q, net)` with `p < q` by instance/pin order.
    pub pairs: Vec<(PinRef, PinRef, NetId)>,
}

impl PinPairs {
    /// Number of pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pairs exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Enumerates eligible pairs per the paper ("∀(p, q) in n"): every
/// unordered pair of cell pins within each net, excluding ports, pins of
/// the same instance, over-large nets, and architectures without inter-row
/// M1.
#[must_use]
pub fn alignable_pairs(design: &Design, cfg: &Vm1Config) -> PinPairs {
    let arch = design.library().arch();
    if !arch.allows_inter_row_m1() {
        return PinPairs::default();
    }
    let want_layer = pin_layer(arch);
    let mut pairs = Vec::new();
    for (net_id, net) in design.nets() {
        if net.pins.len() > cfg.max_net_pins {
            continue;
        }
        let cell_pins: Vec<PinRef> = net
            .pins
            .iter()
            .filter_map(|&np| match np {
                NetPin::Inst(pr) if design.macro_pin(pr).shape.layer == want_layer => Some(pr),
                _ => None,
            })
            .collect();
        for i in 0..cell_pins.len() {
            for j in (i + 1)..cell_pins.len() {
                if cell_pins[i].inst != cell_pins[j].inst {
                    pairs.push((cell_pins[i], cell_pins[j], net_id));
                }
            }
        }
    }
    PinPairs { pairs }
}

/// The layer signal pins live on for each architecture.
#[must_use]
pub fn pin_layer(arch: CellArch) -> Layer {
    match arch {
        CellArch::OpenM1 => Layer::M0,
        CellArch::ClosedM1 | CellArch::Conv12T => Layer::M1,
    }
}

/// Tests whether pins `a` and `b` are vertically M1-connectable in the
/// *current* placement: within γ rows, and x-aligned (ClosedM1) or
/// overlapped by ≥ δ (OpenM1). Returns the overlap length beyond δ
/// (`Dbu::ZERO` for ClosedM1) when connectable.
#[must_use]
pub fn pair_aligned(design: &Design, cfg: &Vm1Config, a: PinRef, b: PinRef) -> Option<Dbu> {
    let tech = design.library().tech();
    let pa = design.pin_position(a);
    let pb = design.pin_position(b);
    if (pa.y - pb.y).abs() > tech.row_height * cfg.gamma {
        return None;
    }
    match design.library().arch() {
        CellArch::ClosedM1 => (pa.x == pb.x).then_some(Dbu::ZERO),
        CellArch::OpenM1 => {
            let ov = design.pin_x_range(a).overlap_len(design.pin_x_range(b));
            (ov >= cfg.delta).then(|| ov - cfg.delta)
        }
        CellArch::Conv12T => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::Library;

    fn gen(arch: CellArch) -> Design {
        let lib = Library::synthetic_7nm(arch);
        GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(150)
            .generate(&lib, 1)
    }

    #[test]
    fn pairs_exist_for_m1_archs() {
        let cfg = Vm1Config::closedm1();
        let d = gen(CellArch::ClosedM1);
        let p = alignable_pairs(&d, &cfg);
        assert!(!p.is_empty());
        // Pairs never repeat an instance.
        for &(a, b, _) in &p.pairs {
            assert_ne!(a.inst, b.inst);
        }
    }

    #[test]
    fn conv12t_has_no_pairs() {
        let cfg = Vm1Config::closedm1();
        let d = gen(CellArch::Conv12T);
        assert!(alignable_pairs(&d, &cfg).is_empty());
    }

    #[test]
    fn clock_net_excluded_by_degree() {
        let cfg = Vm1Config::closedm1();
        let d = gen(CellArch::ClosedM1);
        let clk = d.nets().find(|(_, n)| n.name == "clk_net").unwrap().0;
        let p = alignable_pairs(&d, &cfg);
        assert!(p.pairs.iter().all(|&(_, _, n)| n != clk));
    }

    #[test]
    fn aligned_test_closedm1() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("t", lib, 5, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        let cfg = Vm1Config::closedm1();
        // ZN at cell col 2, A at cell col 1: site_b = site_a + 1 aligns.
        d.move_inst(a, 5, 0, Orient::North);
        d.move_inst(b, 6, 1, Orient::North);
        let zn = PinRef {
            inst: a,
            pin: d.library().cell(inv).pin_index("ZN").unwrap(),
        };
        let pa = PinRef {
            inst: b,
            pin: d.library().cell(inv).pin_index("A").unwrap(),
        };
        assert_eq!(pair_aligned(&d, &cfg, zn, pa), Some(Dbu(0)));
        // Misaligned by one site.
        d.move_inst(b, 7, 1, Orient::North);
        assert_eq!(pair_aligned(&d, &cfg, zn, pa), None);
        // Aligned again via flip: flipped A lands at width-72 => col 2.
        d.move_inst(b, 5, 1, Orient::FlippedNorth);
        assert_eq!(pair_aligned(&d, &cfg, zn, pa), Some(Dbu(0)));
        // Too far vertically (γ = 3).
        d.move_inst(b, 6, 4, Orient::North);
        assert_eq!(pair_aligned(&d, &cfg, zn, pa), None);
    }

    #[test]
    fn aligned_test_openm1_overlap() {
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let mut d = Design::new("t", lib, 4, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        let cfg = Vm1Config::openm1();
        let zn = PinRef {
            inst: a,
            pin: d.library().cell(inv).pin_index("ZN").unwrap(),
        };
        let pa = PinRef {
            inst: b,
            pin: d.library().cell(inv).pin_index("A").unwrap(),
        };
        // Overlapping placement: ZN spans cols [1,4) of a, A spans [0,2) of b.
        d.move_inst(a, 5, 0, Orient::North);
        d.move_inst(b, 7, 1, Orient::North);
        let ov = pair_aligned(&d, &cfg, zn, pa).expect("overlap");
        assert!(ov >= Dbu(0));
        // Far apart horizontally: no overlap.
        d.move_inst(b, 20, 1, Orient::North);
        assert_eq!(pair_aligned(&d, &cfg, zn, pa), None);
    }

    use vm1_netlist::Design;
}
