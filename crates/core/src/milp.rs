//! The paper's MILP formulations, built from a [`WindowProblem`].
//!
//! * ClosedM1: objective (1), constraints (2)–(9);
//! * OpenM1: objective (10), constraints (2)–(3), (5)–(9), (11)–(14).
//!
//! Differences from the printed formulation, none of which change the
//! polytope:
//!
//! * `s_crq` occupancy variables are constants per candidate, so
//!   constraints (8)–(9) are emitted directly as per-site clique
//!   constraints `Σ λ covering site ≤ 1`;
//! * big-M constants `G` are computed per constraint from the candidate
//!   coordinate ranges (tight M), not one huge global constant;
//! * pairs that can never align (no candidate combination within γ rows
//!   and alignable in x) are presolved away, and the generalized γ·H
//!   window of constraint (12) is also applied to the ClosedM1 alignment
//!   constraint (4) (the printed (4) is the γ = 1 case).

use crate::problem::{End, WindowProblem};
use std::collections::BTreeMap;
use vm1_milp::{Model, VarId};

/// Mapping from problem entities to MILP variables, for solution
/// extraction and warm starts.
#[derive(Clone, Debug)]
pub struct MilpVars {
    /// λ variables per cell (parallel to `cands`).
    pub lambda: Vec<Vec<VarId>>,
    /// Per net: `(xmin, xmax, ymin, ymax, w)`.
    pub net_bounds: Vec<(VarId, VarId, VarId, VarId, VarId)>,
    /// `d_pq` per surviving pair (index into `WindowProblem::pairs`).
    pub d: Vec<VarId>,
    /// OpenM1 only: `(a, b, o, v)` per pair.
    pub overlap: Vec<Option<(VarId, VarId, VarId, VarId)>>,
}

/// Builds the MILP for a window problem. Returns the model plus the
/// variable mapping.
#[must_use]
pub fn build_milp(prob: &WindowProblem) -> (Model, MilpVars) {
    let mut m = Model::new();

    // ---- λ variables, constraint (5), SOS1 ----------------------------
    let mut lambda: Vec<Vec<VarId>> = Vec::with_capacity(prob.cells.len());
    for (c, cell) in prob.cells.iter().enumerate() {
        let vars: Vec<VarId> = (0..cell.cands.len())
            .map(|k| m.add_binary(&format!("l_{c}_{k}")))
            .collect();
        m.add_eq(vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 1.0);
        m.add_sos1(vars.clone());
        lambda.push(vars);
    }

    // ---- constraint (9): site cliques ----------------------------------
    // For each window site, the sum of λ whose footprint covers it ≤ 1
    // (+0 if a fixed cell covers it — then the candidates were pruned).
    let mut site_cover: BTreeMap<(i64, i64), Vec<(VarId, f64)>> = BTreeMap::new();
    for (c, cell) in prob.cells.iter().enumerate() {
        for (k, cand) in cell.cands.iter().enumerate() {
            for s in cand.site..cand.site + cell.width {
                site_cover
                    .entry((cand.row, s))
                    .or_default()
                    .push((lambda[c][k], 1.0));
            }
        }
    }
    for (_, cover) in site_cover {
        if cover.len() > 1 {
            m.add_le(cover, 1.0);
        }
    }

    // ---- net bound variables, constraints (2)–(3) ----------------------
    let mut net_bounds = Vec::with_capacity(prob.nets.len());
    let mut objective: Vec<(VarId, f64)> = Vec::new();
    for (n, net) in prob.nets.iter().enumerate() {
        // Coordinate ranges over all pins (fixed + all candidates).
        let mut x_rng = (i64::MAX, i64::MIN);
        let mut y_rng = (i64::MAX, i64::MIN);
        let grow = |x: i64, y: i64, x_rng: &mut (i64, i64), y_rng: &mut (i64, i64)| {
            x_rng.0 = x_rng.0.min(x);
            x_rng.1 = x_rng.1.max(x);
            y_rng.0 = y_rng.0.min(y);
            y_rng.1 = y_rng.1.max(y);
        };
        if let Some((x0, y0, x1, y1)) = net.fixed {
            grow(x0, y0, &mut x_rng, &mut y_rng);
            grow(x1, y1, &mut x_rng, &mut y_rng);
        }
        for &(cell, slot) in &net.movable {
            for k in 0..prob.cells[cell].cands.len() {
                let g = prob.pin_geo[cell][k][slot];
                grow(g.x, g.y, &mut x_rng, &mut y_rng);
            }
        }
        let (xl, xh) = (x_rng.0 as f64, x_rng.1 as f64);
        let (yl, yh) = (y_rng.0 as f64, y_rng.1 as f64);
        let xmin = m.add_continuous(&format!("xmin_{n}"), xl, xh);
        let xmax = m.add_continuous(&format!("xmax_{n}"), xl, xh);
        let ymin = m.add_continuous(&format!("ymin_{n}"), yl, yh);
        let ymax = m.add_continuous(&format!("ymax_{n}"), yl, yh);
        let w = m.add_continuous(&format!("w_{n}"), 0.0, (xh - xl) + (yh - yl));
        // (2): w = xmax - xmin + ymax - ymin.
        m.add_eq(
            [
                (w, 1.0),
                (xmax, -1.0),
                (xmin, 1.0),
                (ymax, -1.0),
                (ymin, 1.0),
            ],
            0.0,
        );
        // (3) for fixed pins: constants tighten the bounds directly.
        if let Some((x0, y0, x1, y1)) = net.fixed {
            m.add_ge([(xmax, 1.0)], x1 as f64);
            m.add_le([(xmin, 1.0)], x0 as f64);
            m.add_ge([(ymax, 1.0)], y1 as f64);
            m.add_le([(ymin, 1.0)], y0 as f64);
        }
        // (3) for movable pins: xmax ≥ Σ λ·pos etc.
        for &(cell, slot) in &net.movable {
            let xs: Vec<f64> = (0..prob.cells[cell].cands.len())
                .map(|k| prob.pin_geo[cell][k][slot].x as f64)
                .collect();
            let ys: Vec<f64> = (0..prob.cells[cell].cands.len())
                .map(|k| prob.pin_geo[cell][k][slot].y as f64)
                .collect();
            let mut e_xmax = vec![(xmax, 1.0)];
            let mut e_xmin = vec![(xmin, 1.0)];
            let mut e_ymax = vec![(ymax, 1.0)];
            let mut e_ymin = vec![(ymin, 1.0)];
            for (k, &lam) in lambda[cell].iter().enumerate() {
                e_xmax.push((lam, -xs[k]));
                e_xmin.push((lam, -xs[k]));
                e_ymax.push((lam, -ys[k]));
                e_ymin.push((lam, -ys[k]));
            }
            m.add_ge(e_xmax, 0.0);
            m.add_le(e_xmin, 0.0);
            m.add_ge(e_ymax, 0.0);
            m.add_le(e_ymin, 0.0);
        }
        objective.push((w, net.weight));
        net_bounds.push((xmin, xmax, ymin, ymax, w));
    }

    // ---- pair variables -------------------------------------------------
    let mut d_vars = Vec::with_capacity(prob.pairs.len());
    let mut overlap_vars = Vec::with_capacity(prob.pairs.len());
    for (pi, pair) in prob.pairs.iter().enumerate() {
        let d = m.add_binary(&format!("d_{pi}"));
        objective.push((d, -prob.alpha));
        d_vars.push(d);

        // Position expressions: x_p as (terms over λ, constant).
        let (xa_terms, xa_rng) = x_expr(prob, &lambda, &pair.a);
        let (xb_terms, xb_rng) = x_expr(prob, &lambda, &pair.b);
        let (ya_terms, ya_rng) = y_expr(prob, &lambda, &pair.a);
        let (yb_terms, yb_rng) = y_expr(prob, &lambda, &pair.b);

        // Δy constraints shared by both architectures: when d = 1, pins
        // must lie within γ·H vertically.
        let gy = (ya_rng.1 - yb_rng.0).max(yb_rng.1 - ya_rng.0).max(0) as f64;
        add_indicator_abs_le(&mut m, &ya_terms, &yb_terms, d, prob.gamma_span as f64, gy);

        if prob.exact {
            // ClosedM1 constraint (4): d = 1 forces x_p == x_q.
            let gx = (xa_rng.1 - xb_rng.0).max(xb_rng.1 - xa_rng.0).max(0) as f64;
            add_indicator_abs_le(&mut m, &xa_terms, &xb_terms, d, 0.0, gx);
            overlap_vars.push(None);
        } else {
            // OpenM1 constraints (11)–(14).
            let (lo_a, lo_a_rng) = x_lo_expr(prob, &lambda, &pair.a);
            let (lo_b, lo_b_rng) = x_lo_expr(prob, &lambda, &pair.b);
            let (hi_a, hi_a_rng) = x_hi_expr(prob, &lambda, &pair.a);
            let (hi_b, hi_b_rng) = x_hi_expr(prob, &lambda, &pair.b);
            let a_lo = lo_a_rng.0.min(lo_b_rng.0) as f64;
            let a_hi = lo_a_rng.1.max(lo_b_rng.1) as f64;
            let b_lo = hi_a_rng.0.min(hi_b_rng.0) as f64;
            let b_hi = hi_a_rng.1.max(hi_b_rng.1) as f64;
            let a = m.add_continuous(&format!("a_{pi}"), a_lo, a_hi.max(a_lo));
            let b = m.add_continuous(&format!("b_{pi}"), b_lo.min(b_hi), b_hi);
            // (11): a ≥ lo_p, a ≥ lo_q; b ≤ hi_p, b ≤ hi_q —
            //   a - Σ lo_terms ≥ lo_const, etc.
            for (var, expr, ge) in [
                (a, &lo_a, true),
                (a, &lo_b, true),
                (b, &hi_a, false),
                (b, &hi_b, false),
            ] {
                let mut e = vec![(var, 1.0)];
                for &(v, c) in &expr.0 {
                    e.push((v, -c));
                }
                if ge {
                    m.add_ge(e, expr.1);
                } else {
                    m.add_le(e, expr.1);
                }
            }
            // v_pq + (12).
            let v = m.add_binary(&format!("v_{pi}"));
            let gy2 = gy + prob.gamma_span as f64;
            // Δy ≤ G·v + γH ; Δy ≥ -G·v - γH.
            let mut e1: Vec<(VarId, f64)> = Vec::new();
            let mut c1 = 0.0;
            diff_terms(&ya_terms, &yb_terms, &mut e1, &mut c1);
            let mut e1v = e1.clone();
            e1v.push((v, -gy2));
            m.add_le(e1v, prob.gamma_span as f64 - c1);
            let mut e2v = e1;
            e2v.push((v, gy2));
            m.add_ge(e2v, -(prob.gamma_span as f64) - c1);
            // (14): d + v ≤ 1.
            m.add_le([(d, 1.0), (v, 1.0)], 1.0);
            // (13): o ≤ b - a - δ + G(1-d); o ≤ G d; o ≥ -G(1-d).
            let g_o = (b_hi - a_lo).abs() + prob.delta as f64 + 1.0;
            let o = m.add_continuous(&format!("o_{pi}"), -g_o, g_o);
            m.add_le(
                [(o, 1.0), (b, -1.0), (a, 1.0), (d, g_o)],
                g_o - prob.delta as f64,
            );
            m.add_le([(o, 1.0), (d, -g_o)], 0.0);
            m.add_ge([(o, 1.0), (d, -g_o)], -g_o);
            objective.push((o, -prob.epsilon));
            overlap_vars.push(Some((a, b, o, v)));
        }
    }

    m.set_objective(objective);
    (
        m,
        MilpVars {
            lambda,
            net_bounds,
            d: d_vars,
            overlap: overlap_vars,
        },
    )
}

/// Extracts the per-cell candidate assignment from a MILP solution vector.
#[must_use]
pub fn extract_assignment(vars: &MilpVars, values: &[f64]) -> Vec<usize> {
    vars.lambda
        .iter()
        .map(|lams| {
            let mut best = 0usize;
            for k in 1..lams.len() {
                if values[lams[k].index()] > values[lams[best].index()] {
                    best = k;
                }
            }
            best
        })
        .collect()
}

/// Builds a warm-start solution vector for the model from an assignment.
#[must_use]
pub fn warm_start(
    prob: &WindowProblem,
    model: &Model,
    vars: &MilpVars,
    assign: &[usize],
) -> Vec<f64> {
    let mut x = vec![0.0; model.num_vars()];
    for (c, lams) in vars.lambda.iter().enumerate() {
        for (k, lam) in lams.iter().enumerate() {
            x[lam.index()] = if k == assign[c] { 1.0 } else { 0.0 };
        }
    }
    for (n, net) in prob.nets.iter().enumerate() {
        let mut bb: Option<(i64, i64, i64, i64)> = net.fixed;
        for &(cell, slot) in &net.movable {
            let g = prob.pin_geo[cell][assign[cell]][slot];
            bb = Some(match bb {
                None => (g.x, g.y, g.x, g.y),
                Some((x0, y0, x1, y1)) => (x0.min(g.x), y0.min(g.y), x1.max(g.x), y1.max(g.y)),
            });
        }
        let (x0, y0, x1, y1) = bb.unwrap_or((0, 0, 0, 0));
        let (xmin, xmax, ymin, ymax, w) = vars.net_bounds[n];
        x[xmin.index()] = x0 as f64;
        x[xmax.index()] = x1 as f64;
        x[ymin.index()] = y0 as f64;
        x[ymax.index()] = y1 as f64;
        x[w.index()] = (x1 - x0 + y1 - y0) as f64;
    }
    for (pi, pair) in prob.pairs.iter().enumerate() {
        let ga = prob.end_geo(&pair.a, assign);
        let gb = prob.end_geo(&pair.b, assign);
        let within_y = (ga.y - gb.y).abs() <= prob.gamma_span;
        if prob.exact {
            x[vars.d[pi].index()] = f64::from(within_y && ga.x == gb.x);
        } else {
            // Overlap vars exist for every pair of an OpenM1 model; a pair
            // without them just keeps its zeroed entries (the warm start is
            // then rejected as infeasible rather than crashing).
            let Some((a_var, b_var, o_var, v_var)) = vars.overlap[pi] else {
                continue;
            };
            let a = ga.x_lo.max(gb.x_lo);
            let b = ga.x_hi.min(gb.x_hi);
            let ov = b - a;
            let aligned = within_y && ov >= prob.delta;
            x[vars.d[pi].index()] = f64::from(aligned);
            x[v_var.index()] = f64::from(!within_y);
            x[a_var.index()] = a as f64;
            x[b_var.index()] = b as f64;
            x[o_var.index()] = if aligned {
                (ov - prob.delta) as f64
            } else {
                0.0
            };
        }
    }
    x
}

// ---- small expression helpers -------------------------------------------

type Terms = (Vec<(VarId, f64)>, f64); // Σ coeff·var + constant

fn end_terms(
    prob: &WindowProblem,
    lambda: &[Vec<VarId>],
    e: &End,
    f: impl Fn(&crate::problem::PinGeo) -> i64,
) -> (Terms, (i64, i64)) {
    match *e {
        End::Fixed(g) => {
            let v = f(&g);
            ((Vec::new(), v as f64), (v, v))
        }
        End::Movable { cell, slot } => {
            let mut terms = Vec::new();
            let mut rng = (i64::MAX, i64::MIN);
            for (k, &lam) in lambda[cell].iter().enumerate() {
                let v = f(&prob.pin_geo[cell][k][slot]);
                terms.push((lam, v as f64));
                rng.0 = rng.0.min(v);
                rng.1 = rng.1.max(v);
            }
            ((terms, 0.0), rng)
        }
    }
}

fn x_expr(prob: &WindowProblem, lambda: &[Vec<VarId>], e: &End) -> (Terms, (i64, i64)) {
    end_terms(prob, lambda, e, |g| g.x)
}

fn y_expr(prob: &WindowProblem, lambda: &[Vec<VarId>], e: &End) -> (Terms, (i64, i64)) {
    end_terms(prob, lambda, e, |g| g.y)
}

fn x_lo_expr(prob: &WindowProblem, lambda: &[Vec<VarId>], e: &End) -> (Terms, (i64, i64)) {
    end_terms(prob, lambda, e, |g| g.x_lo)
}

fn x_hi_expr(prob: &WindowProblem, lambda: &[Vec<VarId>], e: &End) -> (Terms, (i64, i64)) {
    end_terms(prob, lambda, e, |g| g.x_hi)
}

fn diff_terms(a: &Terms, b: &Terms, out: &mut Vec<(VarId, f64)>, constant: &mut f64) {
    for &(v, c) in &a.0 {
        out.push((v, c));
    }
    for &(v, c) in &b.0 {
        out.push((v, -c));
    }
    *constant = a.1 - b.1;
}

/// Adds `|expr_a - expr_b| ≤ bound + G(1-d)` (the indicator form of
/// constraints (4)/(12) with tight `G`).
fn add_indicator_abs_le(m: &mut Model, a: &Terms, b: &Terms, d: VarId, bound: f64, g: f64) {
    let mut terms = Vec::new();
    let mut c = 0.0;
    diff_terms(a, b, &mut terms, &mut c);
    // expr ≤ bound + G(1-d)  =>  expr + G·d ≤ bound + G.
    let mut e1 = terms.clone();
    e1.push((d, g));
    m.add_le(e1, bound + g - c);
    // expr ≥ -bound - G(1-d)  =>  expr - G·d ≥ -bound - G.
    let mut e2 = terms;
    e2.push((d, -g));
    m.add_ge(e2, -bound - g - c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Overrides;
    use crate::window::Window;
    use crate::Vm1Config;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig, RowMap};
    use vm1_tech::{CellArch, Library};

    fn problem(arch: CellArch, n: usize) -> WindowProblem {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let cfg = if arch == CellArch::OpenM1 {
            Vm1Config::openm1()
        } else {
            Vm1Config::closedm1()
        };
        let rm = RowMap::build(&d);
        let win = Window {
            site0: 0,
            row0: 0,
            w_sites: d.sites_per_row.min(30),
            h_rows: d.num_rows.min(3),
        };
        let movable: Vec<_> = WindowProblem::movable_in_window(&d, &rm, &win, &Overrides::new())
            .into_iter()
            .take(5)
            .collect();
        WindowProblem::build(&d, &rm, win, &movable, 2, 1, false, &cfg, &Overrides::new())
    }

    #[test]
    fn warm_start_is_feasible() {
        for arch in [CellArch::ClosedM1, CellArch::OpenM1] {
            let prob = problem(arch, 200);
            if prob.cells.is_empty() {
                continue;
            }
            let (model, vars) = build_milp(&prob);
            let ws = warm_start(&prob, &model, &vars, &prob.current_assign());
            assert!(
                model.is_feasible(&ws, 1e-6),
                "warm start must satisfy the {arch} formulation"
            );
        }
    }

    #[test]
    fn warm_start_objective_matches_problem_eval() {
        for arch in [CellArch::ClosedM1, CellArch::OpenM1] {
            let prob = problem(arch, 200);
            if prob.cells.is_empty() {
                continue;
            }
            let (model, vars) = build_milp(&prob);
            let cur = prob.current_assign();
            let ws = warm_start(&prob, &model, &vars, &cur);
            let milp_obj = model.objective_value(&ws);
            let prob_obj = prob.eval(&cur);
            assert!(
                (milp_obj - prob_obj).abs() < 1e-6,
                "{arch}: MILP {milp_obj} vs problem {prob_obj}"
            );
        }
    }

    #[test]
    fn extract_assignment_round_trips() {
        let prob = problem(CellArch::ClosedM1, 200);
        let (model, vars) = build_milp(&prob);
        let cur = prob.current_assign();
        let ws = warm_start(&prob, &model, &vars, &cur);
        assert_eq!(extract_assignment(&vars, &ws), cur);
    }

    /// Canonical dump of a model's full structure: variables (name,
    /// kind, bounds), rows in emission order (terms, sense, rhs),
    /// objective, SOS1 groups.
    fn fingerprint(m: &vm1_milp::Model) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for i in 0..m.num_vars() {
            let v = m.var_id(i);
            let (lb, ub) = m.var_bounds(v);
            let _ = writeln!(s, "v {} {:?} {lb} {ub}", m.var_name(v), m.var_kind(v));
        }
        for i in 0..m.num_constraints() {
            let _ = write!(s, "c {:?} {}", m.constraint_sense(i), m.constraint_rhs(i));
            for (v, a) in m.constraint_terms(i) {
                let _ = write!(s, " {}*{a}", v.index());
            }
            s.push('\n');
        }
        let _ = writeln!(s, "obj {:?}", m.objective_coeffs());
        for g in m.sos1_groups() {
            let _ = writeln!(
                s,
                "sos {:?}",
                g.iter().map(|v| v.index()).collect::<Vec<_>>()
            );
        }
        s
    }

    /// Regression for the `site_cover` D1 fix: the cover rows are
    /// grouped by a map keyed on (row, site), so the model's row order —
    /// which downstream fixes the simplex pivoting, branch order, and
    /// certificate layout — must be identical on every build. With a
    /// `HashMap` the row order varied run to run.
    #[test]
    fn build_milp_row_order_is_deterministic() {
        for arch in [CellArch::ClosedM1, CellArch::OpenM1] {
            let prob = problem(arch, 200);
            let (a, _) = build_milp(&prob);
            let (b, _) = build_milp(&prob);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{arch}: model structure must not depend on build order"
            );
        }
    }
}
