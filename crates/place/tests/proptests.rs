//! Property-based tests of placement legality and refinement invariants.

use proptest::prelude::*;
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_place::{greedy_refine, legalize, place, scatter, PlaceConfig};
use vm1_tech::{CellArch, Library};

fn profile_from(idx: u8) -> DesignProfile {
    DesignProfile::ALL[idx as usize % DesignProfile::ALL.len()]
}

fn arch_from(idx: u8) -> CellArch {
    [CellArch::ClosedM1, CellArch::OpenM1, CellArch::Conv12T][idx as usize % 3]
}

fn generate(profile: DesignProfile, arch: CellArch, n: usize, util: f64, seed: u64) -> Design {
    let lib = Library::synthetic_7nm(arch);
    GeneratorConfig::profile(profile)
        .with_insts(n)
        .with_utilization(util)
        .generate(&lib, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn place_always_legal(
        p in 0u8..4,
        a in 0u8..3,
        n in 60usize..240,
        util in 0.5f64..0.85,
        seed in 0u64..1000,
    ) {
        let mut d = generate(profile_from(p), arch_from(a), n, util, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        prop_assert!(d.validate_placement().is_ok());
    }

    #[test]
    fn scatter_always_legal(
        n in 60usize..240,
        util in 0.5f64..0.9,
        seed in 0u64..1000,
    ) {
        let mut d = generate(DesignProfile::Aes, CellArch::ClosedM1, n, util, seed);
        scatter(&mut d, seed.wrapping_mul(31));
        prop_assert!(d.validate_placement().is_ok());
    }

    #[test]
    fn legalize_fixes_collapsed_placements(
        n in 40usize..150,
        seed in 0u64..1000,
    ) {
        let mut d = generate(DesignProfile::M0, CellArch::ClosedM1, n, 0.6, seed);
        // Collapse everything onto the origin.
        let ids: Vec<_> = d.insts().map(|(id, _)| id).collect();
        for id in ids {
            d.move_inst(id, 0, 0, vm1_geom::Orient::North);
        }
        legalize(&mut d).expect("feasible core");
        prop_assert!(d.validate_placement().is_ok());
    }

    #[test]
    fn refine_never_worsens_and_stays_legal(
        n in 60usize..200,
        seed in 0u64..1000,
        disp in 1i64..5,
    ) {
        let mut d = generate(DesignProfile::Aes, CellArch::ClosedM1, n, 0.7, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let stats = greedy_refine(&mut d, disp, 2);
        prop_assert!(stats.hpwl_after <= stats.hpwl_before);
        prop_assert!(d.validate_placement().is_ok());
    }
}
