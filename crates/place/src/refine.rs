//! Greedy wirelength-driven detailed-placement refinement.
//!
//! This is the "traditional HPWL-driven detailed placement" the paper
//! contrasts with (§1.2): it slides each cell within its row and tries
//! flips, accepting any move that reduces the HPWL of the cell's incident
//! nets. It is used (a) to polish the global placement before routing, and
//! (b) as the ablation baseline against the vertical-M1-aware MILP
//! optimizer, which optimizes a *different*, non-monotonic objective.

use crate::RowMap;
use vm1_geom::{Dbu, Orient};
use vm1_netlist::{Design, InstId, NetId};

/// Statistics from [`greedy_refine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "dropping refinement statistics usually means a result went unchecked"]
pub struct RefineStats {
    /// Accepted slide moves.
    pub moves: usize,
    /// Accepted orientation flips.
    pub flips: usize,
    /// HPWL before refinement (nm).
    pub hpwl_before: Dbu,
    /// HPWL after refinement (nm).
    pub hpwl_after: Dbu,
}

/// Greedy per-cell refinement: for each movable instance try sliding up to
/// `max_disp` sites left/right within its row (into free space only) and
/// both orientations, keeping the best HPWL. Repeats for `passes` passes or
/// until no move helps.
///
/// Returns statistics including before/after HPWL.
pub fn greedy_refine(design: &mut Design, max_disp: i64, passes: usize) -> RefineStats {
    let mut stats = RefineStats {
        hpwl_before: design.total_hpwl(),
        ..RefineStats::default()
    };
    let mut map = RowMap::build(design);

    for _ in 0..passes {
        let mut improved = false;
        let ids: Vec<InstId> = design
            .insts()
            .filter(|(_, i)| !i.fixed)
            .map(|(id, _)| id)
            .collect();
        for id in ids {
            let nets = design.inst_nets(id);
            if nets.is_empty() {
                continue;
            }
            let w = design.library().cell(design.inst(id).cell).width_sites;
            let (site0, row, orient0) = {
                let i = design.inst(id);
                (i.site, i.row, i.orient)
            };
            let base = nets_hpwl(design, &nets);
            let mut best: Option<(Dbu, i64, Orient)> = None;
            for d in -max_disp..=max_disp {
                let s = site0 + d;
                for orient in Orient::ALL {
                    if d == 0 && orient == orient0 {
                        continue;
                    }
                    if !map.is_free(row, s, s + w, Some(id)) {
                        continue;
                    }
                    design.move_inst(id, s, row, orient);
                    let cost = nets_hpwl(design, &nets);
                    if cost < base && best.is_none_or(|(b, _, _)| cost < b) {
                        best = Some((cost, s, orient));
                    }
                }
            }
            match best {
                Some((_, s, orient)) => {
                    design.move_inst(id, s, row, orient);
                    map.relocate(id, row, row, s, s + w);
                    if s != site0 {
                        stats.moves += 1;
                    }
                    if orient != orient0 {
                        stats.flips += 1;
                    }
                    improved = true;
                }
                None => design.move_inst(id, site0, row, orient0),
            }
        }
        if !improved {
            break;
        }
    }
    stats.hpwl_after = design.total_hpwl();
    stats
}

fn nets_hpwl(design: &Design, nets: &[NetId]) -> Dbu {
    nets.iter().map(|&n| design.net_hpwl(n)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{place, PlaceConfig};
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    fn placed(n: usize, seed: u64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        d
    }

    #[test]
    fn refinement_reduces_hpwl_and_stays_legal() {
        let mut d = placed(300, 1);
        let stats = greedy_refine(&mut d, 4, 3);
        assert!(stats.hpwl_after <= stats.hpwl_before);
        assert!(stats.moves + stats.flips > 0, "should find some moves");
        d.validate_placement().expect("legal after refine");
    }

    #[test]
    fn refinement_is_idempotent_at_fixpoint() {
        let mut d = placed(150, 2);
        let _ = greedy_refine(&mut d, 3, 10);
        let again = greedy_refine(&mut d, 3, 1);
        assert_eq!(again.hpwl_before, again.hpwl_after, "fixpoint reached");
    }

    #[test]
    fn fixed_cells_never_move() {
        let mut d = placed(100, 3);
        let victim = InstId(0);
        d.inst_mut(victim).fixed = true;
        let pos = (
            d.inst(victim).site,
            d.inst(victim).row,
            d.inst(victim).orient,
        );
        let _ = greedy_refine(&mut d, 4, 2);
        let now = (
            d.inst(victim).site,
            d.inst(victim).row,
            d.inst(victim).orient,
        );
        assert_eq!(pos, now);
    }

    #[test]
    fn zero_displacement_allows_flip_only() {
        let mut d = placed(100, 4);
        let stats = greedy_refine(&mut d, 0, 2);
        assert_eq!(stats.moves, 0);
        assert!(stats.hpwl_after <= stats.hpwl_before);
        d.validate_placement().unwrap();
    }
}
