//! Tetris-style placement legalization.
//!
//! Processes instances in left-to-right order of their (possibly illegal)
//! positions and greedily assigns each to the nearest free span over a
//! window of candidate rows, minimizing displacement. This is the classic
//! Hill "Tetris" scheme, sufficient for the mild overlaps produced by
//! optimizer experiments and for stress tests.

use crate::RowMap;
use vm1_netlist::{Design, DesignError, InstId};

/// Legalizes the design in place (movable instances only).
///
/// # Errors
///
/// Returns [`DesignError`] if some instance cannot be placed anywhere (core
/// genuinely overfull).
pub fn legalize(design: &mut Design) -> Result<(), DesignError> {
    // Sort movable instances by current x (then row) — Tetris order.
    let mut order: Vec<InstId> = design
        .insts()
        .filter(|(_, i)| !i.fixed)
        .map(|(id, _)| id)
        .collect();
    order.sort_by_key(|&id| (design.inst(id).site, design.inst(id).row));

    // Start from an occupancy map containing only fixed instances.
    let mut map = RowMap::build_fixed_only(design);

    for id in order {
        let inst = design.inst(id);
        let w = design.library().cell(inst.cell).width_sites;
        let (want_site, want_row) = (inst.site, inst.row);
        let orient = inst.orient;
        let Some((site, row)) = find_nearest_span(&map, design, want_site, want_row, w) else {
            return Err(DesignError::OutOfCore(design.inst(id).name.clone()));
        };
        map.insert(row, site, site + w, id);
        design.move_inst(id, site, row, orient);
    }
    Ok(())
}

/// Finds the legal span of width `w` nearest to `(want_site, want_row)`.
fn find_nearest_span(
    map: &RowMap,
    design: &Design,
    want_site: i64,
    want_row: i64,
    w: i64,
) -> Option<(i64, i64)> {
    let num_rows = design.num_rows;
    let sites = design.sites_per_row;
    let mut best: Option<(i64, i64, i64)> = None; // (cost, site, row)
                                                  // Expand row search outward from the wanted row.
    for dr in 0..num_rows {
        for row in candidate_rows(want_row, dr, num_rows) {
            if let Some((cost_so_far, _, _)) = best {
                // Row distance alone already exceeds the best cost: done.
                if dr * 8 > cost_so_far {
                    return best.map(|(_, s, r)| (s, r));
                }
            }
            // Scan for the nearest free span in this row.
            if let Some(site) = nearest_free_in_row(map, row, want_site, w, sites) {
                let cost = (site - want_site).abs() + dr * 8; // rows are ~8x taller
                if best.is_none_or(|(c, _, _)| cost < c) {
                    best = Some((cost, site, row));
                }
            }
        }
    }
    best.map(|(_, s, r)| (s, r))
}

fn candidate_rows(want: i64, dr: i64, num_rows: i64) -> Vec<i64> {
    let mut rows = Vec::new();
    if dr == 0 {
        if (0..num_rows).contains(&want) {
            rows.push(want);
        }
        if !(0..num_rows).contains(&want) {
            rows.push(want.clamp(0, num_rows - 1));
        }
    } else {
        for r in [want - dr, want + dr] {
            if (0..num_rows).contains(&r) {
                rows.push(r);
            }
        }
    }
    rows
}

/// Nearest free start site for a span of width `w` in `row`, by scanning
/// outward from `want`.
fn nearest_free_in_row(map: &RowMap, row: i64, want: i64, w: i64, sites: i64) -> Option<i64> {
    let want = want.clamp(0, (sites - w).max(0));
    let max_d = sites;
    for d in 0..max_d {
        for s in [want - d, want + d] {
            if s >= 0 && s + w <= sites && map.is_free(row, s, s + w, None) {
                return Some(s);
            }
        }
    }
    None
}

impl RowMap {
    /// Builds an occupancy index containing only fixed instances; used by
    /// the legalizer, which re-inserts movable cells one at a time.
    #[must_use]
    pub fn build_fixed_only(design: &Design) -> RowMap {
        let mut map = RowMap::empty(design.num_rows, design.sites_per_row);
        for (id, inst) in design.insts() {
            if inst.fixed {
                let w = design.library().cell(inst.cell).width_sites;
                map.insert(inst.row, inst.site, inst.site + w, id);
            }
        }
        map
    }

    /// An empty index with the given dimensions.
    #[must_use]
    pub fn empty(num_rows: i64, sites_per_row: i64) -> RowMap {
        RowMap::from_parts(vec![Vec::new(); num_rows.max(0) as usize], sites_per_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    #[test]
    fn legalizes_overlapping_cells() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = vm1_netlist::Design::new("t", lib, 3, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        for i in 0..6 {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, 0, 0, Orient::North); // all stacked on one spot
        }
        assert!(d.validate_placement().is_err());
        legalize(&mut d).unwrap();
        d.validate_placement().expect("legal after legalize");
    }

    #[test]
    fn preserves_already_legal_placements_mostly() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, 1);
        crate::place(&mut d, &crate::PlaceConfig::default(), 1);
        let before: Vec<(i64, i64)> = d.insts().map(|(_, i)| (i.site, i.row)).collect();
        legalize(&mut d).unwrap();
        d.validate_placement().unwrap();
        let moved = d
            .insts()
            .zip(before)
            .filter(|((_, i), b)| (i.site, i.row) != *b)
            .count();
        // A legal input should barely move.
        assert!(moved < d.num_insts() / 5, "{moved} cells moved");
    }

    #[test]
    fn respects_fixed_cells() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = vm1_netlist::Design::new("t", lib, 2, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let f = d.add_inst("fixed", inv);
        d.move_inst(f, 10, 0, Orient::North);
        d.inst_mut(f).fixed = true;
        let m = d.add_inst("mov", inv);
        d.move_inst(m, 10, 0, Orient::North); // overlaps the fixed cell
        legalize(&mut d).unwrap();
        d.validate_placement().unwrap();
        assert_eq!(d.inst(f).site, 10, "fixed cell must not move");
        assert_ne!((d.inst(m).site, d.inst(m).row), (10, 0));
    }

    #[test]
    fn fails_when_core_overfull() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = vm1_netlist::Design::new("t", lib, 1, 10);
        let inv = d.library().cell_index("INV_X1").unwrap(); // w=4
        for i in 0..4 {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, 0, 0, Orient::North);
        }
        assert!(legalize(&mut d).is_err()); // 16 sites into 10
    }
}
