//! Placement invariant verifier.
//!
//! [`verify_placement`] checks the geometric invariants every stage of
//! the flow must preserve and — unlike
//! `Design::validate_placement`, which stops at the first defect —
//! collects *every* violation, so a corrupted placement produces a full
//! diagnosis instead of a single error.
//!
//! Invariants checked:
//!
//! * **in-core** — every instance lies inside the core (site and row
//!   ranges; site-grid and row alignment are structural in this data
//!   model, where positions are integer site/row indices);
//! * **no overlap** — no two instances share a site of a row;
//! * **fixed cells unmoved** — against a [`PlacementSnapshot`] captured
//!   before an optimization pass, every `fixed` instance retains its
//!   exact site, row, and orientation;
//! * **per-window displacement bounds** — against the same snapshot, no
//!   movable instance moved farther than the pass's local-search radius
//!   ([`DisplacementBounds`]; e.g. `lx` sites / `ly` rows for a perturb
//!   pass, 0/0 for a flip pass, which only changes orientation).
//!
//! Verification is read-only and allocation-light; `core` invokes it
//! behind `debug_assert!` checkpoints at every stage boundary and from
//! the `vm1dp --audit` entry point.

use vm1_geom::Orient;
use vm1_netlist::{Design, InstId};
use vm1_obs::{Counter, MetricsHandle, Stage};

/// Maximum allowed movement of a movable instance between a snapshot
/// and the placement under verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DisplacementBounds {
    /// Maximum |Δsite| of the cell origin.
    pub dx_sites: i64,
    /// Maximum |Δrow|.
    pub dy_rows: i64,
}

/// One invariant violation found by the verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementViolation {
    /// Two instances occupy at least one common site.
    Overlap {
        /// First instance (lower site).
        a: InstId,
        /// Second instance.
        b: InstId,
    },
    /// An instance extends beyond the core's site/row ranges.
    OutOfCore {
        /// The offending instance.
        inst: InstId,
    },
    /// A `fixed` instance changed site, row, or orientation.
    FixedMoved {
        /// The offending instance.
        inst: InstId,
    },
    /// A movable instance moved farther than the pass allows.
    DisplacementExceeded {
        /// The offending instance.
        inst: InstId,
        /// Observed |Δsite|.
        dx_sites: i64,
        /// Observed |Δrow|.
        dy_rows: i64,
    },
    /// The design gained or lost instances since the snapshot.
    InstanceCountChanged {
        /// Instances at capture time.
        before: usize,
        /// Instances now.
        after: usize,
    },
}

impl std::fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementViolation::Overlap { a, b } => {
                write!(f, "instances #{} and #{} overlap", a.0, b.0)
            }
            PlacementViolation::OutOfCore { inst } => {
                write!(f, "instance #{} lies outside the core", inst.0)
            }
            PlacementViolation::FixedMoved { inst } => {
                write!(f, "fixed instance #{} was moved", inst.0)
            }
            PlacementViolation::DisplacementExceeded {
                inst,
                dx_sites,
                dy_rows,
            } => write!(
                f,
                "instance #{} moved {dx_sites} sites / {dy_rows} rows, beyond the pass bounds",
                inst.0
            ),
            PlacementViolation::InstanceCountChanged { before, after } => {
                write!(f, "instance count changed from {before} to {after}")
            }
        }
    }
}

/// The placement state of one instance at capture time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct SnapCell {
    site: i64,
    row: i64,
    orient: Orient,
    fixed: bool,
}

/// An immutable capture of every instance's position, taken before an
/// optimization pass so [`verify_against`] can check what the pass was
/// allowed to change.
#[derive(Clone, Debug)]
pub struct PlacementSnapshot {
    cells: Vec<SnapCell>,
}

impl PlacementSnapshot {
    /// Captures the current position of every instance of `design`.
    #[must_use]
    pub fn capture(design: &Design) -> PlacementSnapshot {
        PlacementSnapshot {
            cells: design
                .insts()
                .map(|(_, inst)| SnapCell {
                    site: inst.site,
                    row: inst.row,
                    orient: inst.orient,
                    fixed: inst.fixed,
                })
                .collect(),
        }
    }

    /// Number of instances captured.
    #[must_use]
    pub fn num_insts(&self) -> usize {
        self.cells.len()
    }
}

/// Result of a placement verification: every violation found, plus how
/// many invariant checks ran.
#[derive(Clone, Debug, Default)]
#[must_use = "a verify report is only useful if its violations are inspected"]
pub struct VerifyReport {
    violations: Vec<PlacementViolation>,
    checks: usize,
}

impl VerifyReport {
    /// Every violation found, in discovery order.
    #[must_use]
    pub fn violations(&self) -> &[PlacementViolation] {
        &self.violations
    }

    /// Number of individual invariant checks performed.
    #[must_use]
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// Whether the placement satisfied every checked invariant.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One line per violation (empty string when clean).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }
}

/// Verifies the standalone invariants (in-core, no overlap). Equivalent
/// to [`verify_against`] without a snapshot.
pub fn verify_placement(design: &Design) -> VerifyReport {
    verify_with(design, None, None, &MetricsHandle::disabled())
}

/// Verifies the standalone invariants plus the snapshot-relative ones:
/// fixed instances unmoved, movable instances within `bounds` (when
/// given; `None` skips the displacement check, e.g. between whole
/// parameter sets where only legality and fixedness are invariant).
pub fn verify_against(
    design: &Design,
    snapshot: &PlacementSnapshot,
    bounds: Option<DisplacementBounds>,
) -> VerifyReport {
    verify_with(design, Some(snapshot), bounds, &MetricsHandle::disabled())
}

/// [`verify_against`] with metrics: charges wall-clock to
/// [`Stage::Audit`] and reports check/violation counts through
/// [`Counter::AuditPlacementChecks`] /
/// [`Counter::AuditPlacementViolations`].
pub fn verify_with(
    design: &Design,
    snapshot: Option<&PlacementSnapshot>,
    bounds: Option<DisplacementBounds>,
    metrics: &MetricsHandle,
) -> VerifyReport {
    let report = metrics.timed(Stage::Audit, || run_checks(design, snapshot, bounds));
    metrics.add(Counter::AuditPlacementChecks, report.checks as u64);
    metrics.add(
        Counter::AuditPlacementViolations,
        report.violations.len() as u64,
    );
    report
}

fn run_checks(
    design: &Design,
    snapshot: Option<&PlacementSnapshot>,
    bounds: Option<DisplacementBounds>,
) -> VerifyReport {
    let mut violations = Vec::new();
    let mut checks = 0usize;

    // In-core ranges, and row spans for the overlap scan.
    let mut rows: Vec<(i64, i64, i64, InstId)> = Vec::with_capacity(design.num_insts());
    for (id, inst) in design.insts() {
        let w = design.library().cell(inst.cell).width_sites;
        checks += 1;
        if inst.row < 0
            || inst.row >= design.num_rows
            || inst.site < 0
            || inst.site + w > design.sites_per_row
        {
            violations.push(PlacementViolation::OutOfCore { inst: id });
        }
        rows.push((inst.row, inst.site, inst.site + w, id));
    }

    // Overlaps: sort by (row, site) and compare neighbours. Unlike
    // `validate_placement` this reports every overlapping pair of
    // neighbours, not just the first.
    rows.sort_unstable();
    for w in rows.windows(2) {
        let (row_a, _, end_a, a) = w[0];
        let (row_b, start_b, _, b) = w[1];
        if row_a == row_b {
            checks += 1;
            if end_a > start_b {
                violations.push(PlacementViolation::Overlap { a, b });
            }
        }
    }

    if let Some(snap) = snapshot {
        if snap.cells.len() == design.num_insts() {
            for (id, inst) in design.insts() {
                let before = snap.cells[id.0];
                if before.fixed || inst.fixed {
                    checks += 1;
                    if (inst.site, inst.row, inst.orient)
                        != (before.site, before.row, before.orient)
                    {
                        violations.push(PlacementViolation::FixedMoved { inst: id });
                    }
                } else if let Some(b) = bounds {
                    checks += 1;
                    let dx = (inst.site - before.site).abs();
                    let dy = (inst.row - before.row).abs();
                    if dx > b.dx_sites || dy > b.dy_rows {
                        violations.push(PlacementViolation::DisplacementExceeded {
                            inst: id,
                            dx_sites: dx,
                            dy_rows: dy,
                        });
                    }
                }
            }
        } else {
            checks += 1;
            violations.push(PlacementViolation::InstanceCountChanged {
                before: snap.cells.len(),
                after: design.num_insts(),
            });
        }
    }

    VerifyReport { violations, checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    fn small_design() -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(60)
            .generate(&lib, 7);
        crate::place(&mut d, &crate::PlaceConfig::default(), 7);
        d
    }

    #[test]
    fn legal_placement_is_clean() {
        let d = small_design();
        let r = verify_placement(&d);
        assert!(r.is_clean(), "{}", r.summary());
        assert!(r.checks() >= d.num_insts());
    }

    #[test]
    fn detects_overlap() {
        let mut d = small_design();
        // Move instance 1 exactly onto instance 0.
        let (site, row, orient) = {
            let i = d.inst(InstId(0));
            (i.site, i.row, i.orient)
        };
        d.move_inst(InstId(1), site, row, orient);
        let r = verify_placement(&d);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, PlacementViolation::Overlap { .. })));
    }

    #[test]
    fn detects_out_of_core() {
        let mut d = small_design();
        let orient = d.inst(InstId(0)).orient;
        d.move_inst(InstId(0), -3, 0, orient);
        d.move_inst(InstId(1), 0, d.num_rows + 5, orient);
        let r = verify_placement(&d);
        let oob = r
            .violations()
            .iter()
            .filter(|v| matches!(v, PlacementViolation::OutOfCore { .. }))
            .count();
        assert_eq!(oob, 2, "{}", r.summary());
    }

    #[test]
    fn detects_fixed_moved() {
        let mut d = small_design();
        d.inst_mut(InstId(0)).fixed = true;
        let snap = PlacementSnapshot::capture(&d);
        let inst = d.inst(InstId(0));
        let (site, row, orient) = (inst.site, inst.row, inst.orient);
        d.move_inst(InstId(0), site, row, orient.flipped());
        let r = verify_against(&d, &snap, None);
        assert!(
            r.violations()
                .iter()
                .any(|v| matches!(v, PlacementViolation::FixedMoved { inst } if inst.0 == 0)),
            "{}",
            r.summary()
        );
    }

    #[test]
    fn detects_displacement_beyond_bounds() {
        let mut d = small_design();
        let snap = PlacementSnapshot::capture(&d);
        let inst = d.inst(InstId(2));
        let (site, row, orient) = (inst.site, inst.row, inst.orient);
        d.move_inst(InstId(2), site + 4, row, orient);
        let tight = DisplacementBounds {
            dx_sites: 2,
            dy_rows: 1,
        };
        let r = verify_against(&d, &snap, Some(tight));
        assert!(r.violations().iter().any(
            |v| matches!(v, PlacementViolation::DisplacementExceeded { inst, .. } if inst.0 == 2)
        ));
        // The same move within generous bounds is fine (overlap aside).
        let loose = DisplacementBounds {
            dx_sites: 50,
            dy_rows: 50,
        };
        let r = verify_against(&d, &snap, Some(loose));
        assert!(!r
            .violations()
            .iter()
            .any(|v| matches!(v, PlacementViolation::DisplacementExceeded { .. })));
    }

    #[test]
    fn flip_is_free_under_zero_bounds() {
        let mut d = small_design();
        let snap = PlacementSnapshot::capture(&d);
        let inst = d.inst(InstId(3));
        let (site, row, orient) = (inst.site, inst.row, inst.orient);
        d.move_inst(InstId(3), site, row, orient.flipped());
        let r = verify_against(
            &d,
            &snap,
            Some(DisplacementBounds {
                dx_sites: 0,
                dy_rows: 0,
            }),
        );
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn detects_instance_count_change() {
        let mut d = small_design();
        let snap = PlacementSnapshot::capture(&d);
        let inv = d.library().cell_index("INV_X1").unwrap();
        d.add_inst("late", inv);
        let r = verify_against(&d, &snap, None);
        assert!(r
            .violations()
            .iter()
            .any(|v| matches!(v, PlacementViolation::InstanceCountChanged { .. })));
    }

    #[test]
    fn metrics_record_checks_and_violations() {
        use std::sync::Arc;
        use vm1_obs::Telemetry;
        let mut d = small_design();
        let orient = d.inst(InstId(0)).orient;
        d.move_inst(InstId(0), -1, 0, orient);
        let sink = Arc::new(Telemetry::new());
        let metrics = MetricsHandle::of(sink.clone());
        let r = verify_with(&d, None, None, &metrics);
        assert_eq!(
            sink.counter(Counter::AuditPlacementChecks),
            r.checks() as u64
        );
        assert_eq!(
            sink.counter(Counter::AuditPlacementViolations),
            r.violations().len() as u64
        );
    }
}
