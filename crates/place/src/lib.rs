//! Placement for the vm1dp workspace: a net-centroid global placer, a
//! Tetris-style legalizer, and a greedy wirelength-driven detailed
//! refinement pass.
//!
//! The paper starts from a commercial (Innovus) placement; this crate
//! produces the equivalent *input* to the vertical-M1 optimization — a
//! legal, wirelength-reasonable placement at a chosen utilization. The
//! greedy refiner doubles as the "traditional wirelength-driven detailed
//! placement" baseline the paper contrasts with (its optimization problem
//! is *not* HPWL-monotonic because dM1 routing is almost free; see §1.2).
//!
//! # Examples
//!
//! ```
//! use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
//! use vm1_place::{place, PlaceConfig};
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let mut d = GeneratorConfig::profile(DesignProfile::M0)
//!     .with_insts(200)
//!     .generate(&lib, 1);
//! place(&mut d, &PlaceConfig::default(), 1);
//! d.validate_placement().unwrap();
//! ```

#![warn(missing_docs)]

mod abacus;
mod global;
mod legalize;
mod refine;
mod rowmap;
pub mod verify;

pub use abacus::legalize_abacus;
pub use global::{place, scatter, PlaceConfig};
pub use legalize::legalize;
pub use refine::{greedy_refine, RefineStats};
pub use rowmap::{RowMap, SpanMove};
pub use verify::{
    verify_against, verify_placement, DisplacementBounds, PlacementSnapshot, PlacementViolation,
    VerifyReport,
};
