//! Abacus-style legalization: row-local optimal cell packing.
//!
//! The classic Abacus algorithm (Spindler et al., ISPD'08) legalizes cells
//! one row at a time: cells assigned to a row are processed in x order and
//! merged into *clusters*; each cluster's position is the weighted mean of
//! its members' desired positions, clamped to the row, and clusters that
//! collide are merged recursively. Within a row this minimizes total
//! squared displacement — a stronger guarantee than the Tetris scan of
//! [`crate::legalize`], at the cost of fixing the row assignment first.
//!
//! Here rows are chosen greedily by nearest-row-with-capacity, then each
//! row is packed optimally.

use vm1_netlist::{Design, DesignError, InstId};

/// Legalizes the design with row-local optimal packing.
///
/// Fixed instances are immovable; if a fixed cell splits a row the packing
/// falls back to the nearest free span for the affected cluster members.
///
/// # Errors
///
/// Returns [`DesignError`] when some row assignment cannot fit (core
/// overfull).
pub fn legalize_abacus(design: &mut Design) -> Result<(), DesignError> {
    let num_rows = design.num_rows;
    let sites = design.sites_per_row;

    // Capacity per row after fixed cells.
    let mut row_free = vec![sites; num_rows as usize];
    for (_, inst) in design.insts() {
        if inst.fixed {
            let w = design.library().cell(inst.cell).width_sites;
            if (0..num_rows).contains(&inst.row) {
                row_free[inst.row as usize] -= w;
            }
        }
    }

    // Assign movable cells to rows: nearest row with remaining capacity.
    let mut movable: Vec<InstId> = design
        .insts()
        .filter(|(_, i)| !i.fixed)
        .map(|(id, _)| id)
        .collect();
    // Deterministic, displacement-friendly order: by |x| then row.
    movable.sort_by_key(|&id| (design.inst(id).site, design.inst(id).row));
    let mut rows: Vec<Vec<InstId>> = vec![Vec::new(); num_rows as usize];
    for &id in &movable {
        let want = design.inst(id).row.clamp(0, num_rows - 1);
        let w = design.library().cell(design.inst(id).cell).width_sites;
        let mut chosen = None;
        for dr in 0..num_rows {
            for r in [want - dr, want + dr] {
                if (0..num_rows).contains(&r) && row_free[r as usize] >= w {
                    chosen = Some(r);
                    break;
                }
            }
            if chosen.is_some() {
                break;
            }
        }
        let Some(r) = chosen else {
            return Err(DesignError::OutOfCore(design.inst(id).name.clone()));
        };
        row_free[r as usize] -= w;
        rows[r as usize].push(id);
    }

    // Pack each row with the Abacus cluster recurrence.
    for (r, members) in rows.iter_mut().enumerate() {
        if members.is_empty() {
            continue;
        }
        members.sort_by_key(|&id| design.inst(id).site);
        let packed = pack_row(design, members, sites)?;
        for (&id, &site) in members.iter().zip(&packed) {
            let orient = design.inst(id).orient;
            design.move_inst(id, site, r as i64, orient);
        }
    }

    // Fixed cells may still collide with packed rows when they fragment a
    // row; resolve residual overlaps with the Tetris fallback.
    if design.validate_placement().is_err() {
        crate::legalize(design)?;
    }
    design.validate_placement()
}

/// Cluster record of the Abacus recurrence.
struct Cluster {
    /// First member index in the row order.
    first: usize,
    /// Total width.
    width: i64,
    /// Σ(desired − offset) over members (uniform weights).
    q: i64,
    /// Member count.
    n: i64,
    /// Resolved position (left edge).
    x: i64,
}

/// Optimal left-edge positions for `members` (sorted by desired x) in a
/// row of `sites` sites, minimizing total squared displacement.
fn pack_row(design: &Design, members: &[InstId], sites: i64) -> Result<Vec<i64>, DesignError> {
    let desired: Vec<i64> = members.iter().map(|&id| design.inst(id).site).collect();
    let widths: Vec<i64> = members
        .iter()
        .map(|&id| design.library().cell(design.inst(id).cell).width_sites)
        .collect();
    let total: i64 = widths.iter().sum();
    if total > sites {
        return Err(DesignError::OutOfCore(design.inst(members[0]).name.clone()));
    }

    let mut clusters: Vec<Cluster> = Vec::new();
    for i in 0..members.len() {
        let mut c = Cluster {
            first: i,
            width: widths[i],
            q: desired[i],
            n: 1,
            x: 0,
        };
        c.x = place_cluster(&c, sites);
        // Merge while overlapping the previous cluster.
        while let Some(prev) = clusters.pop() {
            if prev.x + prev.width > c.x {
                // Merging shifts c's members' offsets by prev.width.
                c = Cluster {
                    first: prev.first,
                    q: prev.q + (c.q - c.n * prev.width),
                    width: prev.width + c.width,
                    n: prev.n + c.n,
                    x: 0,
                };
                c.x = place_cluster(&c, sites);
            } else {
                clusters.push(prev);
                break;
            }
        }
        clusters.push(c);
    }

    let mut out = vec![0i64; members.len()];
    for (k, c) in clusters.iter().enumerate() {
        let end = clusters.get(k + 1).map_or(members.len(), |nxt| nxt.first);
        let mut x = c.x;
        for i in c.first..end {
            out[i] = x;
            x += widths[i];
        }
    }
    Ok(out)
}

/// Optimal (clamped mean) position of a cluster.
fn place_cluster(c: &Cluster, sites: i64) -> i64 {
    let mean = c.q / c.n; // floor of the mean desired position
    mean.clamp(0, sites - c.width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    fn design(sites: i64, rows: i64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        Design::new("t", lib, rows, sites)
    }

    #[test]
    fn packs_overlapping_cells_in_one_row() {
        let mut d = design(40, 1);
        let inv = d.library().cell_index("INV_X1").unwrap(); // w=4
        for i in 0..4 {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, 10, 0, Orient::North); // all want site 10
        }
        legalize_abacus(&mut d).unwrap();
        d.validate_placement().unwrap();
        // Cells pack contiguously around the common desired position.
        let mut sits: Vec<i64> = d.insts().map(|(_, i)| i.site).collect();
        sits.sort_unstable();
        assert_eq!(sits[3] - sits[0], 12, "contiguous 4x4-site pack");
        assert!(sits[0] <= 10 && sits[3] >= 10, "centred near desired x");
    }

    #[test]
    fn minimizes_displacement_vs_naive_shift() {
        // Two cells wanting the same spot: Abacus shifts both by half a
        // cell instead of pushing one cell a full width away.
        let mut d = design(40, 1);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        d.move_inst(a, 12, 0, Orient::North);
        d.move_inst(b, 12, 0, Orient::North);
        legalize_abacus(&mut d).unwrap();
        let sa = d.inst(a).site;
        let sb = d.inst(b).site;
        let disp = (sa - 12).abs() + (sb - 12).abs();
        assert!(disp <= 4, "balanced split, displacement {disp}");
    }

    #[test]
    fn spills_to_adjacent_row_when_full() {
        let mut d = design(9, 2); // room for 2 INVs per row
        let inv = d.library().cell_index("INV_X1").unwrap();
        for i in 0..3 {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, 0, 0, Orient::North);
        }
        legalize_abacus(&mut d).unwrap();
        d.validate_placement().unwrap();
        let rows_used: std::collections::HashSet<i64> = d.insts().map(|(_, i)| i.row).collect();
        assert_eq!(rows_used.len(), 2, "third cell spills to row 1");
    }

    #[test]
    fn random_designs_legal_and_low_displacement() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, 5);
        crate::place(&mut d, &crate::PlaceConfig::default(), 5);
        // Perturb into mild illegality.
        let ids: Vec<InstId> = d.insts().map(|(id, _)| id).collect();
        for (k, id) in ids.iter().enumerate() {
            let i = d.inst(*id);
            let s = (i.site + (k as i64 % 3) - 1).max(0);
            let r = i.row;
            d.move_inst(*id, s, r, i.orient);
        }
        let before: Vec<(i64, i64)> = d.insts().map(|(_, i)| (i.site, i.row)).collect();
        legalize_abacus(&mut d).unwrap();
        d.validate_placement().unwrap();
        // Average displacement should be small (row-local packing).
        let total_disp: i64 = d
            .insts()
            .zip(&before)
            .map(|((_, i), &(s, r))| (i.site - s).abs() + 8 * (i.row - r).abs())
            .sum();
        let avg = total_disp as f64 / d.num_insts() as f64;
        assert!(avg < 6.0, "avg displacement {avg}");
    }

    #[test]
    fn respects_fixed_cells() {
        let mut d = design(40, 2);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let f = d.add_inst("fix", inv);
        d.move_inst(f, 10, 0, Orient::North);
        d.inst_mut(f).fixed = true;
        let m = d.add_inst("mov", inv);
        d.move_inst(m, 11, 0, Orient::North);
        legalize_abacus(&mut d).unwrap();
        d.validate_placement().unwrap();
        assert_eq!((d.inst(f).site, d.inst(f).row), (10, 0));
    }

    #[test]
    fn overfull_core_errors() {
        let mut d = design(7, 1);
        let inv = d.library().cell_index("INV_X1").unwrap();
        for i in 0..2 {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, 0, 0, Orient::North);
        }
        assert!(legalize_abacus(&mut d).is_err());
    }
}
