use vm1_netlist::{Design, InstId};

/// One committed positional move, as needed to patch a [`RowMap`]
/// incrementally: the instance, the row it came from and the span it now
/// occupies. Orientation-only changes (flips) never alter a cell's span
/// and must not be turned into `SpanMove`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanMove {
    /// The moved instance.
    pub inst: InstId,
    /// Row the instance occupied before the move.
    pub old_row: i64,
    /// Row the instance occupies now.
    pub new_row: i64,
    /// First occupied site after the move.
    pub new_start: i64,
    /// One past the last occupied site after the move.
    pub new_end: i64,
}

/// Per-row occupancy index over placement sites.
///
/// Maintains, for every row, the sorted list of occupied `[start, end)`
/// site spans with their owning instances. Used by the legalizer, the
/// refinement pass, and the window optimizer to answer "is this span free?"
/// and to move cells while keeping the index consistent.
///
/// # Examples
///
/// ```
/// use vm1_netlist::Design;
/// use vm1_place::RowMap;
/// use vm1_tech::{CellArch, Library};
///
/// let lib = Library::synthetic_7nm(CellArch::ClosedM1);
/// let mut d = Design::new("t", lib, 2, 40);
/// let inv = d.library().cell_index("INV_X1").unwrap();
/// let u = d.add_inst("u0", inv);
/// let map = RowMap::build(&d);
/// assert!(!map.is_free(0, 0, 4, None)); // occupied by u0
/// assert!(map.is_free(0, 0, 4, Some(u))); // …unless u0 is excluded
/// assert!(map.is_free(0, 4, 8, None));
/// ```
#[derive(Clone, Debug)]
pub struct RowMap {
    /// Per row: sorted `(start, end, inst)` spans.
    rows: Vec<Vec<(i64, i64, InstId)>>,
    sites_per_row: i64,
}

impl RowMap {
    /// Assembles an index from raw parts (crate-internal).
    pub(crate) fn from_parts(rows: Vec<Vec<(i64, i64, InstId)>>, sites_per_row: i64) -> RowMap {
        RowMap {
            rows,
            sites_per_row,
        }
    }

    /// Builds the occupancy index from the current placement.
    #[must_use]
    pub fn build(design: &Design) -> RowMap {
        let mut rows: Vec<Vec<(i64, i64, InstId)>> =
            vec![Vec::new(); design.num_rows.max(0) as usize];
        for (id, inst) in design.insts() {
            let w = design.library().cell(inst.cell).width_sites;
            if inst.row >= 0 && (inst.row as usize) < rows.len() {
                rows[inst.row as usize].push((inst.site, inst.site + w, id));
            }
        }
        for r in &mut rows {
            r.sort_unstable_by_key(|s| s.0);
        }
        RowMap {
            rows,
            sites_per_row: design.sites_per_row,
        }
    }

    /// Whether the site span `[start, end)` of `row` is inside the core and
    /// free of instances (ignoring `exclude`, typically the moving cell
    /// itself).
    #[must_use]
    pub fn is_free(&self, row: i64, start: i64, end: i64, exclude: Option<InstId>) -> bool {
        if row < 0 || row as usize >= self.rows.len() || start < 0 || end > self.sites_per_row {
            return false;
        }
        self.rows[row as usize]
            .iter()
            .filter(|&&(_, _, id)| Some(id) != exclude)
            .all(|&(s, e, _)| e <= start || s >= end)
    }

    /// Instances whose spans intersect `[start, end)` of `row`.
    #[must_use]
    pub fn occupants(&self, row: i64, start: i64, end: i64) -> Vec<InstId> {
        let mut out = Vec::new();
        self.occupants_into(row, start, end, &mut out);
        out
    }

    /// Allocation-free variant of [`RowMap::occupants`]: clears `out` and
    /// fills it with the instances whose spans intersect `[start, end)` of
    /// `row`. Lets hot callers (window-problem construction) reuse one
    /// buffer across windows.
    pub fn occupants_into(&self, row: i64, start: i64, end: i64, out: &mut Vec<InstId>) {
        out.clear();
        if row < 0 || row as usize >= self.rows.len() {
            return;
        }
        out.extend(
            self.rows[row as usize]
                .iter()
                .filter(|&&(s, e, _)| e > start && s < end)
                .map(|&(_, _, id)| id),
        );
    }

    /// Removes an instance's span from the index.
    pub fn remove(&mut self, row: i64, inst: InstId) {
        if row >= 0 && (row as usize) < self.rows.len() {
            self.rows[row as usize].retain(|&(_, _, id)| id != inst);
        }
    }

    /// Inserts an instance span (caller must have checked freeness).
    pub fn insert(&mut self, row: i64, start: i64, end: i64, inst: InstId) {
        let r = &mut self.rows[row as usize];
        let pos = r.partition_point(|s| s.0 < start);
        r.insert(pos, (start, end, inst));
    }

    /// Moves an instance from `(old_row)` to `(row, start..end)`.
    pub fn relocate(&mut self, inst: InstId, old_row: i64, row: i64, start: i64, end: i64) {
        self.remove(old_row, inst);
        self.insert(row, start, end, inst);
    }

    /// Applies a batch of committed positional moves to the index instead
    /// of rebuilding it from the whole design. Returns the number of
    /// *distinct* rows touched (the incremental work done, surfaced as the
    /// `rowmap_rows_patched` counter).
    ///
    /// The moves must be exactly the positional changes committed since
    /// the index was last consistent — recording unchanged cells or flips
    /// as moves would double-count rows, which is why the commit loop
    /// skips them.
    pub fn patch_moves(&mut self, moves: &[SpanMove]) -> usize {
        let mut touched: Vec<i64> = Vec::with_capacity(moves.len() * 2);
        for m in moves {
            self.relocate(m.inst, m.old_row, m.new_row, m.new_start, m.new_end);
            touched.push(m.old_row);
            touched.push(m.new_row);
        }
        touched.sort_unstable();
        touched.dedup();
        touched.len()
    }

    /// Whether the index matches the design's current placement exactly
    /// (same spans, same order). Intended for `debug_assert!` checks after
    /// incremental patching.
    #[must_use]
    pub fn consistent_with(&self, design: &Design) -> bool {
        let fresh = RowMap::build(design);
        self.sites_per_row == fresh.sites_per_row && self.rows == fresh.rows
    }

    /// Number of rows indexed.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Free-site count of a row.
    #[must_use]
    pub fn free_sites(&self, row: i64) -> i64 {
        let used: i64 = self.rows[row as usize].iter().map(|&(s, e, _)| e - s).sum();
        self.sites_per_row - used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_tech::{CellArch, Library};

    fn design_with(placements: &[(i64, i64)]) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("t", lib, 3, 40);
        let inv = d.library().cell_index("INV_X1").unwrap(); // width 4
        for (i, &(site, row)) in placements.iter().enumerate() {
            let id = d.add_inst(&format!("u{i}"), inv);
            d.move_inst(id, site, row, vm1_geom::Orient::North);
        }
        d
    }

    #[test]
    fn build_and_query() {
        let d = design_with(&[(0, 0), (10, 0), (0, 1)]);
        let m = RowMap::build(&d);
        assert!(!m.is_free(0, 0, 4, None));
        assert!(!m.is_free(0, 3, 5, None), "partial overlap");
        assert!(m.is_free(0, 4, 10, None));
        assert!(m.is_free(2, 0, 40, None));
        assert!(!m.is_free(0, 38, 42, None), "outside core");
        assert!(!m.is_free(-1, 0, 4, None));
        assert!(!m.is_free(3, 0, 4, None));
    }

    #[test]
    fn exclude_self() {
        let d = design_with(&[(0, 0)]);
        let m = RowMap::build(&d);
        assert!(m.is_free(0, 0, 4, Some(InstId(0))));
        assert!(m.is_free(0, 2, 6, Some(InstId(0))), "sliding over itself");
    }

    #[test]
    fn occupants_reports_overlapping() {
        let d = design_with(&[(0, 0), (10, 0)]);
        let m = RowMap::build(&d);
        assert_eq!(m.occupants(0, 2, 11), vec![InstId(0), InstId(1)]);
        assert_eq!(m.occupants(0, 4, 10), Vec::<InstId>::new());
    }

    #[test]
    fn relocate_keeps_index_consistent() {
        let d = design_with(&[(0, 0), (10, 0)]);
        let mut m = RowMap::build(&d);
        m.relocate(InstId(0), 0, 1, 5, 9);
        assert!(m.is_free(0, 0, 4, None));
        assert!(!m.is_free(1, 5, 9, None));
        assert_eq!(m.free_sites(0), 36);
        assert_eq!(m.free_sites(1), 36);
    }

    #[test]
    fn occupants_into_reuses_buffer() {
        let d = design_with(&[(0, 0), (10, 0)]);
        let m = RowMap::build(&d);
        let mut buf = vec![InstId(99)]; // stale content must be cleared
        m.occupants_into(0, 2, 11, &mut buf);
        assert_eq!(buf, vec![InstId(0), InstId(1)]);
        m.occupants_into(0, 4, 10, &mut buf);
        assert!(buf.is_empty());
        m.occupants_into(-1, 0, 40, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn patch_moves_matches_full_rebuild() {
        let mut d = design_with(&[(0, 0), (10, 0), (0, 1)]);
        let mut m = RowMap::build(&d);
        assert!(m.consistent_with(&d));
        // Commit two moves on the design and patch the index with them.
        d.move_inst(InstId(0), 20, 2, vm1_geom::Orient::North);
        d.move_inst(InstId(2), 6, 1, vm1_geom::Orient::FlippedNorth);
        let rows = m.patch_moves(&[
            SpanMove {
                inst: InstId(0),
                old_row: 0,
                new_row: 2,
                new_start: 20,
                new_end: 24,
            },
            SpanMove {
                inst: InstId(2),
                old_row: 1,
                new_row: 1,
                new_start: 6,
                new_end: 10,
            },
        ]);
        assert_eq!(rows, 3, "distinct rows 0, 1, 2");
        assert!(m.consistent_with(&d));
        // A flip does not change any span: nothing to patch.
        d.move_inst(InstId(1), 10, 0, vm1_geom::Orient::FlippedNorth);
        assert!(m.consistent_with(&d));
    }

    #[test]
    fn consistent_with_detects_drift() {
        let d = design_with(&[(0, 0)]);
        let mut m = RowMap::build(&d);
        m.relocate(InstId(0), 0, 1, 0, 4);
        assert!(!m.consistent_with(&d));
    }
}
