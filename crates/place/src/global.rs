//! Net-centroid global placement with row packing.
//!
//! The algorithm alternates between computing, per instance, the centroid of
//! its connected nets' pins ("force target") and re-packing rows in target
//! order with evenly distributed whitespace. The result is a legal
//! placement whose wirelength is good enough to serve as the paper's
//! "post-route placement" input.

use vm1_geom::rng::SplitMix64;
use vm1_geom::Orient;
use vm1_netlist::{Design, InstId, NetPin};

/// Parameters of [`place`].
#[derive(Clone, Debug)]
pub struct PlaceConfig {
    /// Global iterations (centroid + repack rounds).
    pub iterations: usize,
    /// Nets with more pins than this are ignored in centroid computation
    /// (the clock net would otherwise pull every flop to the die centre).
    pub max_net_degree: usize,
}

impl Default for PlaceConfig {
    fn default() -> PlaceConfig {
        PlaceConfig {
            iterations: 10,
            max_net_degree: 24,
        }
    }
}

/// Places all movable instances randomly but legally (round-robin row
/// packing in shuffled order). Used as the starting point of [`place`] and
/// useful on its own for worst-case stress tests.
pub fn scatter(design: &mut Design, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<InstId> = design.insts().map(|(id, _)| id).collect();
    rng.shuffle(&mut order);
    pack_rows(design, &order, &mut |_, _| 0.0);
}

/// Runs global placement: see the module docs.
///
/// # Panics
///
/// Panics if the design's core cannot fit its instances (utilization > 1).
pub fn place(design: &mut Design, cfg: &PlaceConfig, seed: u64) {
    assert!(
        design.utilization() <= 1.0,
        "core overfull: utilization {}",
        design.utilization()
    );
    scatter(design, seed);
    for _ in 0..cfg.iterations {
        let targets = centroid_targets(design, cfg.max_net_degree);
        // Re-pack rows with instances bucketed by target y and ordered by
        // target x.
        let mut order: Vec<InstId> = design.insts().map(|(id, _)| id).collect();
        order.sort_by(|&a, &b| {
            targets[a.0]
                .1
                .partial_cmp(&targets[b.0].1)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        pack_rows(design, &order, &mut |id, _| targets[id.0].0);
    }
}

/// Per-instance `(x, y)` centroid of connected pins, in nanometres.
fn centroid_targets(design: &Design, max_degree: usize) -> Vec<(f64, f64)> {
    let mut targets = vec![(0.0f64, 0.0f64, 0usize); design.num_insts()];
    for (_, net) in design.nets() {
        if net.pins.len() > max_degree || net.pins.len() < 2 {
            continue;
        }
        // Net centroid over all pins.
        let mut cx = 0.0;
        let mut cy = 0.0;
        for &p in &net.pins {
            let pos = design.net_pin_position(p);
            cx += pos.x.nm() as f64;
            cy += pos.y.nm() as f64;
        }
        cx /= net.pins.len() as f64;
        cy /= net.pins.len() as f64;
        for &p in &net.pins {
            if let NetPin::Inst(pr) = p {
                let t = &mut targets[pr.inst.0];
                t.0 += cx;
                t.1 += cy;
                t.2 += 1;
            }
        }
    }
    targets
        .into_iter()
        .enumerate()
        .map(|(i, (x, y, n))| {
            if n == 0 {
                // Unconnected (or clock-only) instance: keep current spot.
                let p = design.inst_origin(InstId(i));
                (p.x.nm() as f64, p.y.nm() as f64)
            } else {
                (x / n as f64, y / n as f64)
            }
        })
        .collect()
}

/// Packs instances into rows following `order` (already sorted by desired
/// y); within each row instances are sorted by `target_x` and whitespace is
/// distributed evenly. Produces a legal placement.
fn pack_rows(
    design: &mut Design,
    order: &[InstId],
    target_x: &mut dyn FnMut(InstId, &Design) -> f64,
) {
    let num_rows = design.num_rows;
    let sites_per_row = design.sites_per_row;
    let widths: Vec<i64> = order
        .iter()
        .map(|&id| design.library().cell(design.inst(id).cell).width_sites)
        .collect();
    let total: i64 = widths.iter().sum();

    // Distribute instances to rows with a dynamic budget
    // (remaining width / remaining rows), never exceeding row capacity.
    // Invariant maintained: the width still to place always fits in the
    // rows still available, so the capacity assert below cannot fire as
    // long as total ≤ num_rows · sites_per_row.
    assert!(
        total <= num_rows * sites_per_row,
        "core overfull: {total} sites into {num_rows}x{sites_per_row}"
    );
    let mut row_assign: Vec<Vec<(InstId, i64)>> = vec![Vec::new(); num_rows as usize];
    let mut loads = vec![0i64; num_rows as usize];
    let mut row = 0usize;
    let mut remaining = total;
    for (&id, &w) in order.iter().zip(&widths) {
        let target = if loads[row] + w <= sites_per_row {
            row
        } else if row + 1 < num_rows as usize {
            // Row full: advance.
            row += 1;
            row
        } else {
            // Last row full: fall back to the emptiest earlier row (rare
            // fragmentation case at very high utilization).
            let mut t = 0usize;
            for r in 1..num_rows as usize {
                if loads[r] < loads[t] {
                    t = r;
                }
            }
            assert!(
                loads[t] + w <= sites_per_row,
                "cannot pack rows: total {total} sites into {num_rows}x{sites_per_row}"
            );
            t
        };
        row_assign[target].push((id, w));
        loads[target] += w;
        remaining -= w;
        // Advance once the dynamic budget (remaining width over remaining
        // rows) is consumed, so every row carries a near-equal share.
        if target == row && row + 1 < num_rows as usize {
            let rows_left = (num_rows as usize - row) as i64;
            let budget = (remaining + loads[row] + rows_left - 1) / rows_left;
            if loads[row] >= budget.min(sites_per_row) {
                row += 1;
            }
        }
    }

    for (r, members) in row_assign.iter_mut().enumerate() {
        // Order within the row by target x.
        members.sort_by(|a, b| {
            target_x(a.0, design)
                .partial_cmp(&target_x(b.0, design))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let used: i64 = members.iter().map(|&(_, w)| w).sum();
        let free = (sites_per_row - used).max(0);
        let n = members.len() as i64;
        let mut cum = 0i64; // total width of cells already placed in the row
        let mut cursor = 0i64;
        for (k, &(id, w)) in members.iter().enumerate() {
            // Desired position = packed position plus an even share of the
            // whitespace; never below the running cursor (keeps legality).
            let desired = cum + free * k as i64 / n.max(1);
            let site = desired.max(cursor).min((sites_per_row - w).max(0));
            design.move_inst(id, site, r as i64, Orient::North);
            cursor = site + w;
            cum += w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    fn gen(n: usize, seed: u64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(n)
            .generate(&lib, seed)
    }

    #[test]
    fn scatter_is_legal() {
        let mut d = gen(400, 1);
        scatter(&mut d, 99);
        d.validate_placement().expect("legal scatter");
    }

    #[test]
    fn place_is_legal_and_improves_hpwl() {
        let mut d = gen(400, 2);
        scatter(&mut d, 5);
        let before = d.total_hpwl();
        place(&mut d, &PlaceConfig::default(), 5);
        d.validate_placement().expect("legal placement");
        let after = d.total_hpwl();
        assert!(after < before, "HPWL should improve: {before} -> {after}");
        // Expect a substantial improvement over random.
        assert!((after.nm() as f64) < 0.8 * before.nm() as f64);
    }

    #[test]
    fn place_deterministic() {
        let mut a = gen(200, 3);
        let mut b = gen(200, 3);
        place(&mut a, &PlaceConfig::default(), 7);
        place(&mut b, &PlaceConfig::default(), 7);
        for ((_, ia), (_, ib)) in a.insts().zip(b.insts()) {
            assert_eq!((ia.site, ia.row), (ib.site, ib.row));
        }
    }

    #[test]
    fn high_utilization_still_legal() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(400)
            .with_utilization(0.88)
            .generate(&lib, 4);
        place(&mut d, &PlaceConfig::default(), 4);
        d.validate_placement().expect("legal at high util");
    }

    #[test]
    fn openm1_designs_place_too() {
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(300)
            .generate(&lib, 8);
        place(&mut d, &PlaceConfig::default(), 8);
        d.validate_placement().unwrap();
    }
}
