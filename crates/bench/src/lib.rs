//! Shared helpers for the benchmark harness: CLI parsing for the
//! experiment binaries and common fixtures for the criterion benches.
//!
//! The experiment binaries regenerate the paper's artifacts:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `expt_a1` | Figure 5 — RWL/runtime vs window size & perturbation |
//! | `expt_a2` | Figure 6 — RWL and #dM1 vs α |
//! | `expt_a3` | Figure 7 — the five optimization sequences |
//! | `expt_b` | Table 2 — ClosedM1 and OpenM1 designs |
//! | `expt_fig8` | Figure 8 — DRVs vs utilization |
//!
//! All binaries accept `--scale smoke|reduced|full` (default `reduced`)
//! and, where applicable, `--arch closedm1|openm1|both`. Passing
//! `--audit` enables [`vm1_flow::set_audit_mode`]: every measurement and
//! optimizer run is cross-checked by the placement/dM1 auditor and the
//! binary aborts on the first violation.

#![warn(missing_docs)]

use vm1_flow::experiments::ExperimentScale;
use vm1_tech::CellArch;

pub mod sched_bench;

/// Parsed command-line options of the experiment binaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Run scale.
    pub scale: ExperimentScale,
    /// Architectures to run.
    pub archs: ArchSel,
    /// Audit every measurement/optimizer run (`--audit`).
    pub audit: bool,
}

/// Architecture selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchSel {
    /// ClosedM1 only.
    ClosedM1,
    /// OpenM1 only.
    OpenM1,
    /// Both architectures.
    Both,
}

impl ArchSel {
    /// The selected architectures in run order.
    #[must_use]
    pub fn list(self) -> Vec<CellArch> {
        match self {
            ArchSel::ClosedM1 => vec![CellArch::ClosedM1],
            ArchSel::OpenM1 => vec![CellArch::OpenM1],
            ArchSel::Both => vec![CellArch::ClosedM1, CellArch::OpenM1],
        }
    }
}

/// Parses binary arguments. Unknown arguments abort with a usage message.
///
/// # Panics
///
/// Exits the process (after printing usage) on invalid arguments.
#[must_use]
pub fn parse_cli(args: &[String]) -> Cli {
    let mut cli = Cli {
        scale: ExperimentScale::Reduced,
        archs: ArchSel::Both,
        audit: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                cli.scale = match it.next().map(String::as_str) {
                    Some("smoke") => ExperimentScale::Smoke,
                    Some("reduced") => ExperimentScale::Reduced,
                    Some("full") => ExperimentScale::Full,
                    other => usage(&format!("bad --scale {other:?}")),
                };
            }
            "--arch" => {
                cli.archs = match it.next().map(String::as_str) {
                    Some("closedm1") => ArchSel::ClosedM1,
                    Some("openm1") => ArchSel::OpenM1,
                    Some("both") => ArchSel::Both,
                    other => usage(&format!("bad --arch {other:?}")),
                };
            }
            "--audit" => cli.audit = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    cli
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <binary> [--scale smoke|reduced|full] [--arch closedm1|openm1|both] [--audit]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Collects `std::env::args` (minus the binary name) for [`parse_cli`]
/// and applies process-wide switches (`--audit` enables
/// [`vm1_flow::set_audit_mode`]), so every experiment binary honors them
/// uniformly.
#[must_use]
pub fn env_cli() -> Cli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args);
    vm1_flow::set_audit_mode(cli.audit);
    cli
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn defaults() {
        let cli = parse_cli(&[]);
        assert_eq!(cli.scale, ExperimentScale::Reduced);
        assert_eq!(cli.archs, ArchSel::Both);
    }

    #[test]
    fn parses_scale_and_arch() {
        let cli = parse_cli(&s(&["--scale", "smoke", "--arch", "openm1"]));
        assert_eq!(cli.scale, ExperimentScale::Smoke);
        assert_eq!(cli.archs, ArchSel::OpenM1);
        assert_eq!(cli.archs.list(), vec![CellArch::OpenM1]);
        assert!(!cli.audit);
    }

    #[test]
    fn parses_audit_flag() {
        let cli = parse_cli(&s(&["--audit", "--scale", "smoke"]));
        assert!(cli.audit);
        assert_eq!(cli.scale, ExperimentScale::Smoke);
    }

    #[test]
    fn both_lists_two() {
        assert_eq!(ArchSel::Both.list().len(), 2);
    }
}
