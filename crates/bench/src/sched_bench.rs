//! Shared fixtures for the `DistOpt` scheduler benchmarks (the
//! `distopt_sched` criterion bench and the `bench_distopt_sched` binary
//! that produces the checked-in `BENCH_distopt_sched.json`).

use vm1_core::{DistOptParams, DistOptStats, SchedPolicy, Vm1Config, Vm1Optimizer};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_place::{place, PlaceConfig};
use vm1_tech::{CellArch, Library};

/// A placed ClosedM1 benchmark design of `n` instances (AES profile,
/// fixed seed).
#[must_use]
pub fn bench_design(n: usize) -> Design {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::Aes)
        .with_insts(n)
        .generate(&lib, 7);
    place(&mut d, &PlaceConfig::default(), 7);
    d
}

/// Pass parameters sized so a round has roughly one window per worker of
/// an 8-thread pool — the regime where scheduling policy matters.
#[must_use]
pub fn bench_params(d: &Design) -> DistOptParams {
    DistOptParams {
        tx: 0,
        ty: 0,
        bw_sites: (d.sites_per_row / 10).max(10),
        bh_rows: (d.num_rows / 10).max(2),
        lx: 3,
        ly: 1,
        flip: false,
    }
}

/// The benchmark configuration for a thread count and scheduling policy
/// (cache off so every pass does identical full work).
#[must_use]
pub fn bench_config(threads: usize, sched: SchedPolicy) -> Vm1Config {
    let mut cfg = Vm1Config::closedm1()
        .with_threads(threads)
        .with_sched(sched);
    cfg.smart_window_selection = false;
    cfg
}

/// Runs one uncached `DistOpt` pass on `d` (pool spawned per call; use
/// [`SchedSession`] to reuse a pool across passes).
pub fn pass_once(
    d: &mut Design,
    p: &DistOptParams,
    threads: usize,
    sched: SchedPolicy,
) -> DistOptStats {
    Vm1Optimizer::new(bench_config(threads, sched)).run_pass(d, p)
}

/// A reusable benchmark session holding one persistent worker pool.
#[derive(Debug)]
pub struct SchedSession(Vm1Optimizer);

impl SchedSession {
    /// Spawns the session's pool.
    #[must_use]
    pub fn new(threads: usize, sched: SchedPolicy) -> SchedSession {
        SchedSession(Vm1Optimizer::new(bench_config(threads, sched)))
    }

    /// One `DistOpt` pass on the session's pool.
    pub fn pass(&mut self, d: &mut Design, p: &DistOptParams) -> DistOptStats {
        self.0.run_pass(d, p)
    }
}

/// Order-sensitive digest of a placement, for cross-config bit-identity
/// checks in the benchmark artifacts.
#[must_use]
pub fn placement_digest(d: &Design) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for (_, i) in d.insts() {
        for v in [
            i.site as u64,
            i.row as u64,
            u64::from(i.orient.is_flipped()),
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_policies_agree() {
        let base = bench_design(400);
        let p = bench_params(&base);
        let mut digests = Vec::new();
        for (threads, sched) in [
            (1, SchedPolicy::WorkSteal),
            (2, SchedPolicy::StaticChunk),
            (2, SchedPolicy::WorkSteal),
        ] {
            let mut d = base.clone();
            let stats = pass_once(&mut d, &p, threads, sched);
            assert!(stats.rounds > 0);
            digests.push(placement_digest(&d));
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "scheduling must not change the result"
        );
    }
}
