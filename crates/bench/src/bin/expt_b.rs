//! ExptB / Table 2: the full detailed-placement optimization results for
//! the four design profiles, ClosedM1 and OpenM1.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_b;
use vm1_flow::format_table2;
use vm1_tech::CellArch;

fn main() {
    let cli = env_cli();
    for arch in cli.archs.list() {
        let title = match arch {
            CellArch::OpenM1 => "OpenM1-based designs (alpha = 1000)",
            _ => "ClosedM1-based designs (alpha = 1200)",
        };
        let rows = expt_b(cli.scale, arch);
        print!("{}", format_table2(title, &rows));
        // Aggregate shape statement, mirroring the paper's summary.
        let max_rwl_red = rows
            .iter()
            .map(|r| -r.rwl_delta_pct())
            .fold(f64::NEG_INFINITY, f64::max);
        let max_via_red = rows
            .iter()
            .map(|r| -r.via12_delta_pct())
            .fold(f64::NEG_INFINITY, f64::max);
        let avg_ratio: f64 = rows
            .iter()
            .map(vm1_flow::ExperimentRow::dm1_ratio)
            .filter(|r| r.is_finite())
            .sum::<f64>()
            / rows.len() as f64;
        println!(
            "# up to {max_rwl_red:.1}% RWL reduction, up to {max_via_red:.1}% #via12 reduction, avg dM1 ratio {avg_ratio:.1}x"
        );
        match arch {
            CellArch::OpenM1 => println!("# paper: up to 2.2% RWL, 4.1% #via12, ~1.6x dM1"),
            _ => println!("# paper: up to 6.4% RWL, 14.4% #via12, >4x dM1"),
        }
        println!();
    }
}
