//! ExptA-1 / Figure 5: routed wirelength and runtime versus window size
//! and perturbation range (one DistOpt pair per point), on the aes-like
//! ClosedM1 design.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_a1;

fn main() {
    let cli = env_cli();
    println!("# ExptA-1 (Figure 5): RWL & runtime vs window size / perturbation range");
    println!("# design: aes_like, ClosedM1, alpha=1200, one DistOpt pair per point");
    println!(
        "{:>8} {:>4} {:>4} {:>12} {:>12} {:>10} {:>10}",
        "bw(um)", "lx", "ly", "RWL(um)", "normRWL", "time(ms)", "normTime"
    );
    let rows = expt_a1(cli.scale);
    let min_rwl = rows.iter().map(|r| r.rwl_um).fold(f64::INFINITY, f64::min);
    let min_t = rows.iter().map(|r| r.runtime_ms).min().unwrap_or(1).max(1) as f64;
    for r in &rows {
        println!(
            "{:>8.1} {:>4} {:>4} {:>12.1} {:>12.4} {:>10} {:>10.2}",
            r.bw_um,
            r.lx,
            r.ly,
            r.rwl_um,
            r.rwl_um / min_rwl,
            r.runtime_ms,
            r.runtime_ms as f64 / min_t
        );
    }
    // The paper's selection rule: shortest runtime within 1 % of the best
    // routed wirelength.
    let best = rows
        .iter()
        .filter(|r| r.rwl_um <= min_rwl * 1.01)
        .min_by_key(|r| r.runtime_ms);
    if let Some(b) = best {
        println!(
            "# selected (<=1% RWL, min runtime): bw={} lx={} ly={}  (paper: 20um, 4, 1)",
            b.bw_um, b.lx, b.ly
        );
    }
}
