//! Produces `BENCH_distopt_sched.json`: wall-clock of one `DistOpt` pass
//! under the persistent worker pool with static-chunk vs work-stealing
//! scheduling at 1/2/8 threads, on a ~5k-instance design.
//!
//! Every configuration produces a bit-identical placement (asserted via
//! digest); only wall-clock and the scheduler gauges differ. The JSON
//! records the minimum per-pass time of `--iters` runs per configuration
//! plus the 8-thread work-stealing speedup over static chunking.
//!
//! ```text
//! cargo run --release -p vm1-bench --bin bench_distopt_sched -- \
//!     [--insts N] [--iters K] [--out FILE]
//! ```

use std::time::Instant;
use vm1_bench::sched_bench::{bench_design, bench_params, placement_digest, SchedSession};
use vm1_core::SchedPolicy;

fn main() {
    let mut insts = 5000usize;
    let mut iters = 3usize;
    let mut out = String::from("BENCH_distopt_sched.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> &String {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--insts" => insts = val("--insts").parse().expect("bad --insts"),
            "--iters" => iters = val("--iters").parse().expect("bad --iters"),
            "--out" => out = val("--out").clone(),
            other => {
                eprintln!("usage: bench_distopt_sched [--insts N] [--iters K] [--out FILE]");
                eprintln!("error: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating {insts}-instance benchmark design...");
    let base = bench_design(insts);
    let p = bench_params(&base);

    let configs = [
        ("static", SchedPolicy::StaticChunk, 1usize),
        ("worksteal", SchedPolicy::WorkSteal, 1),
        ("static", SchedPolicy::StaticChunk, 2),
        ("worksteal", SchedPolicy::WorkSteal, 2),
        ("static", SchedPolicy::StaticChunk, 8),
        ("worksteal", SchedPolicy::WorkSteal, 8),
    ];

    let mut results = Vec::new();
    let mut digest: Option<u64> = None;
    for (name, sched, threads) in configs {
        let mut session = SchedSession::new(threads, sched);
        // Warmup: populates allocator/page-cache state and spawns the
        // pool before anything is timed.
        let mut warm = base.clone();
        let _ = session.pass(&mut warm, &p);
        let d0 = placement_digest(&warm);
        match digest {
            None => digest = Some(d0),
            Some(want) => assert_eq!(d0, want, "{name}_{threads}t produced a different placement"),
        }
        let mut best_ms = f64::INFINITY;
        for _ in 0..iters {
            let mut d = base.clone();
            let t0 = Instant::now();
            let _ = session.pass(&mut d, &p);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(ms);
        }
        eprintln!("{name:>9} {threads}t: {best_ms:8.1} ms/pass (best of {iters})");
        results.push((name, threads, best_ms));
    }

    let ms_of = |name: &str, threads: usize| -> f64 {
        results
            .iter()
            .find(|(n, t, _)| *n == name && *t == threads)
            .map(|&(_, _, ms)| ms)
            .expect("config ran")
    };
    let speedup_8t = ms_of("static", 8) / ms_of("worksteal", 8);
    let scaling_ws = ms_of("worksteal", 1) / ms_of("worksteal", 8);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"distopt_sched\",\n");
    json.push_str(&format!(
        "  \"design\": {{\"profile\": \"aes\", \"insts\": {}, \"rows\": {}, \"sites_per_row\": {}}},\n",
        base.num_insts(),
        base.num_rows,
        base.sites_per_row
    ));
    json.push_str(&format!(
        "  \"params\": {{\"bw_sites\": {}, \"bh_rows\": {}, \"lx\": {}, \"ly\": {}, \"flip\": false}},\n",
        p.bw_sites, p.bh_rows, p.lx, p.ly
    ));
    json.push_str(&format!("  \"iters_per_config\": {iters},\n"));
    json.push_str("  \"bit_identical_placements\": true,\n");
    json.push_str("  \"results_ms_per_pass\": [\n");
    for (i, (name, threads, ms)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sched\": \"{name}\", \"threads\": {threads}, \"ms\": {ms:.2}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"worksteal_speedup_over_static_8t\": {speedup_8t:.3},\n"
    ));
    json.push_str(&format!(
        "  \"worksteal_scaling_1t_to_8t\": {scaling_ws:.3}\n"
    ));
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write benchmark artifact");
    println!("wrote {out}");
    println!("work-stealing speedup over static chunking at 8 threads: {speedup_8t:.3}x");
}
