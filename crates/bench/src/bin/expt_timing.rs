//! Timing-criticality-weighted optimization (the paper's future-work
//! item ii): uniform β versus slack-derived β_n under a tightened clock.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_timing_driven;

fn main() {
    let cli = env_cli();
    println!("# Timing-driven extension: criticality boost vs final WNS (aes_like, ClosedM1,");
    println!("# clock tightened 3% below the initial critical path)");
    println!(
        "{:>8} {:>10} {:>8} {:>12}",
        "boost", "WNS(ns)", "#dM1", "RWL(um)"
    );
    for r in expt_timing_driven(cli.scale) {
        println!(
            "{:>8.1} {:>10.3} {:>8} {:>12.1}",
            r.boost, r.wns_ns, r.dm1, r.rwl_um
        );
    }
    println!();
    println!("# boost = 0 is the paper's uniform-β objective; positive boosts weight");
    println!("# critical nets more heavily, trading some alignments for timing.");
}
