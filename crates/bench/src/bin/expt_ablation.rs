//! Ablation of the paper's §1.1 premise: both the detailed placer *and*
//! the router must comprehend vertical alignment to exploit direct
//! vertical M1 routing. 2×2 matrix on the aes-like ClosedM1 design.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_ablation;

fn main() {
    let cli = env_cli();
    println!("# Ablation: placer-awareness x router-awareness (aes_like, ClosedM1)");
    println!(
        "{:>14} {:>14} {:>8} {:>12} {:>8}",
        "placer-aware", "router-aware", "#dM1", "RWL(um)", "#via12"
    );
    for r in expt_ablation(cli.scale) {
        println!(
            "{:>14} {:>14} {:>8} {:>12.1} {:>8}",
            r.placer_aware, r.router_aware, r.dm1, r.rwl_um, r.via12
        );
    }
    println!();
    println!("# expectation: dM1 ≈ 0 whenever the router is unaware; alignment-optimized");
    println!("# placement only pays off in RWL/vias when the router exploits it.");
}
