//! ExptA-2 / Figure 6: sensitivity of routed wirelength and #dM1 to the
//! alignment weight α.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_a2;

fn main() {
    let cli = env_cli();
    for arch in cli.archs.list() {
        println!("# ExptA-2 (Figure 6): RWL and #dM1 vs alpha — {arch}");
        println!(
            "{:>8} {:>12} {:>10} {:>12}",
            "alpha", "RWL(um)", "#dM1", "alignments"
        );
        let rows = expt_a2(cli.scale, arch);
        for r in &rows {
            println!(
                "{:>8.0} {:>12.1} {:>10} {:>12}",
                r.alpha, r.rwl_um, r.dm1, r.alignments
            );
        }
        // Paper observations: #dM1 grows monotonically with α; RWL is
        // non-monotonic with a sweet spot at a mid α (1200 ClosedM1 /
        // 1000 OpenM1).
        let best = rows
            .iter()
            .min_by(|a, b| a.rwl_um.partial_cmp(&b.rwl_um).unwrap());
        if let Some(b) = best {
            println!(
                "# best RWL at alpha = {} (paper: 1200 ClosedM1 / 1000 OpenM1)",
                b.alpha
            );
        }
        println!();
    }
}
