//! ExptA-3 / Figure 7: routed wirelength and runtime for the paper's five
//! optimization sequences (window sizes scaled with the designs).

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_a3;

fn main() {
    let cli = env_cli();
    println!("# ExptA-3 (Figure 7): five optimization sequences, aes_like ClosedM1");
    println!(
        "{:>3}  {:<48} {:>12} {:>10}",
        "id", "sequence (bw, lx, ly)", "RWL(um)", "time(ms)"
    );
    let rows = expt_a3(cli.scale);
    for r in &rows {
        println!(
            "{:>3}  {:<48} {:>12.1} {:>10}",
            r.id, r.label, r.rwl_um, r.runtime_ms
        );
    }
    println!();
    println!("# paper: sequences 1 and 2 (lx=4) give the best RWL; sequence 2 costs ~2x");
    println!("# the runtime of sequence 1, so (20, 4, 1) — here (5, 4, 1) — is preferred.");
}
