//! ExptB-1 congestion study / Figure 8: DRVs before/after optimization
//! and #dM1 on the aes-like ClosedM1 design at raised utilizations.

use vm1_bench::env_cli;
use vm1_flow::experiments::expt_fig8;

fn main() {
    let cli = env_cli();
    println!("# Figure 8: #DRV orig vs opt (and #dM1) vs utilization, aes_like ClosedM1");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "util", "#DRV orig", "#DRV opt", "#dM1 opt"
    );
    let rows = expt_fig8(cli.scale);
    for r in &rows {
        println!(
            "{:>5.0}% {:>12} {:>12} {:>10}",
            r.util * 100.0,
            r.drvs_orig,
            r.drvs_opt,
            r.dm1_opt
        );
    }
    println!();
    println!("# paper: the optimizer consistently removes a substantial fraction of DRVs;");
    println!("# absolute counts remain dominated by initial placement quality.");
}
