//! Micro-benchmarks of the core kernels: HPWL evaluation, window
//! partitioning, routing, window-problem construction, and the
//! solver-engine ablation (exact DFS vs MILP vs greedy on identical
//! window problems — the design choice DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vm1_core::problem::{Overrides, WindowProblem};
use vm1_core::solver::{dfs_solve, greedy_solve, milp_window_solve};
use vm1_core::window::{Window, WindowGrid};
use vm1_core::Vm1Config;
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_place::{place, PlaceConfig, RowMap};
use vm1_route::{route, RouterConfig};
use vm1_tech::{CellArch, Library};

fn placed_design(n: usize) -> Design {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::Aes)
        .with_insts(n)
        .generate(&lib, 7);
    place(&mut d, &PlaceConfig::default(), 7);
    d
}

fn window_problem(d: &Design, cells: usize) -> WindowProblem {
    let cfg = Vm1Config::closedm1();
    let rm = RowMap::build(d);
    let win = Window {
        site0: 0,
        row0: 0,
        w_sites: d.sites_per_row.min(40),
        h_rows: d.num_rows.min(4),
    };
    let movable: Vec<_> = WindowProblem::movable_in_window(d, &rm, &win, &Overrides::new())
        .into_iter()
        .take(cells)
        .collect();
    WindowProblem::build(d, &rm, win, &movable, 3, 1, false, &cfg, &Overrides::new())
}

fn bench_hpwl(c: &mut Criterion) {
    let d = placed_design(800);
    c.bench_function("total_hpwl_800cells", |b| {
        b.iter(|| black_box(d.total_hpwl()))
    });
}

fn bench_alignment_count(c: &mut Criterion) {
    let d = placed_design(800);
    let cfg = Vm1Config::closedm1();
    c.bench_function("count_alignments_800cells", |b| {
        b.iter(|| black_box(vm1_core::count_alignments(&d, &cfg)))
    });
}

fn bench_partition(c: &mut Criterion) {
    let d = placed_design(800);
    c.bench_function("window_partition_and_diagonals", |b| {
        b.iter(|| {
            let g = WindowGrid::partition(&d, 3, 1, 40, 4);
            black_box(g.diagonal_sets())
        })
    });
}

fn bench_problem_build(c: &mut Criterion) {
    let d = placed_design(800);
    c.bench_function("window_problem_build_8cells", |b| {
        b.iter(|| black_box(window_problem(&d, 8)))
    });
}

fn bench_route_small(c: &mut Criterion) {
    let d = placed_design(250);
    let mut g = c.benchmark_group("route");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("route_250cells", |b| {
        b.iter(|| black_box(route(&d, &RouterConfig::default())))
    });
    g.finish();
}

fn bench_solver_ablation(c: &mut Criterion) {
    let d = placed_design(800);
    let prob = window_problem(&d, 6);
    let cfg = Vm1Config::closedm1();
    let mut g = c.benchmark_group("window_solver_ablation");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("dfs_exact", |b| {
        b.iter(|| black_box(dfs_solve(&prob, 300_000)))
    });
    g.bench_function("milp_exact", |b| {
        b.iter(|| black_box(milp_window_solve(&prob, &cfg)))
    });
    g.bench_function("greedy", |b| b.iter(|| black_box(greedy_solve(&prob, 4))));
    g.finish();
}

fn bench_milp_kernel(c: &mut Criterion) {
    // Pure MILP solver on a reference assignment problem.
    use vm1_milp::{solve, Model, SolveParams};
    let n = 6;
    let mut m = Model::new();
    let mut x = vec![vec![]; n];
    for i in 0..n {
        for j in 0..n {
            x[i].push(m.add_binary(&format!("x{i}{j}")));
        }
    }
    for i in 0..n {
        m.add_eq(x[i].iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 1.0);
        m.add_eq((0..n).map(|r| (x[r][i], 1.0)).collect::<Vec<_>>(), 1.0);
        m.add_sos1(x[i].clone());
    }
    let mut obj = Vec::new();
    for i in 0..n {
        for j in 0..n {
            obj.push((x[i][j], ((i * 7 + j * 13) % 10) as f64));
        }
    }
    m.set_objective(obj);
    c.bench_function("milp_assignment_6x6", |b| {
        b.iter(|| black_box(solve(&m, &SolveParams::default())))
    });
}

criterion_group!(
    micro,
    bench_hpwl,
    bench_alignment_count,
    bench_partition,
    bench_problem_build,
    bench_route_small,
    bench_solver_ablation,
    bench_milp_kernel
);
criterion_main!(micro);
