//! Scheduler comparison: one `DistOpt` pass under the persistent worker
//! pool with static-chunk vs work-stealing scheduling, at 1/2/8 threads.
//!
//! The placements and counters are bit-identical across every
//! configuration (see `vm1_core::sched`); only wall-clock differs. The
//! checked-in `BENCH_distopt_sched.json` artifact is produced by the
//! `bench_distopt_sched` binary, which runs this same comparison with
//! plain `Instant` timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vm1_bench::sched_bench::{bench_design, bench_params, pass_once};
use vm1_core::SchedPolicy;

fn bench_distopt_sched(c: &mut Criterion) {
    let base = bench_design(5000);
    let p = bench_params(&base);
    let mut g = c.benchmark_group("distopt_sched");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    for threads in [1usize, 2, 8] {
        for (name, sched) in [
            ("static", SchedPolicy::StaticChunk),
            ("worksteal", SchedPolicy::WorkSteal),
        ] {
            g.bench_function(format!("{name}_{threads}t"), |b| {
                b.iter(|| {
                    let mut d = base.clone();
                    black_box(pass_once(&mut d, &p, threads, sched))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(sched, bench_distopt_sched);
criterion_main!(sched);
