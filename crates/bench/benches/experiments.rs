//! One criterion bench per paper artifact, exercising the *real*
//! experiment code paths at smoke scale so `cargo bench` regenerates a
//! timed sample of every table and figure. The full-size artifacts are
//! produced by the `expt_*` binaries (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vm1_flow::experiments::{expt_a1, expt_a2, expt_a3, expt_b, expt_fig8, ExperimentScale};
use vm1_tech::CellArch;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = group(c, "fig5_window_sweep");
    g.bench_function("expt_a1_smoke", |b| {
        b.iter(|| black_box(expt_a1(ExperimentScale::Smoke)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = group(c, "fig6_alpha_sweep");
    g.bench_function("expt_a2_smoke_closedm1", |b| {
        b.iter(|| black_box(expt_a2(ExperimentScale::Smoke, CellArch::ClosedM1)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = group(c, "fig7_sequences");
    g.bench_function("expt_a3_smoke", |b| {
        b.iter(|| black_box(expt_a3(ExperimentScale::Smoke)))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = group(c, "table2");
    g.bench_function("expt_b_smoke_closedm1", |b| {
        b.iter(|| black_box(expt_b(ExperimentScale::Smoke, CellArch::ClosedM1)))
    });
    g.bench_function("expt_b_smoke_openm1", |b| {
        b.iter(|| black_box(expt_b(ExperimentScale::Smoke, CellArch::OpenM1)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = group(c, "fig8_drv_vs_util");
    g.bench_function("expt_fig8_smoke", |b| {
        b.iter(|| black_box(expt_fig8(ExperimentScale::Smoke)))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_table2,
    bench_fig8
);
criterion_main!(experiments);
