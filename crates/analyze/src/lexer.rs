//! Hand-rolled Rust lexer for the determinism lint pack.
//!
//! Produces a flat token stream with line numbers, plus the waiver
//! comments the rule pack honours. The lexer understands exactly as much
//! Rust as the rules need: line/block comments (nested), string, raw
//! string, byte string and char literals, lifetimes, numeric literals
//! including negative exponents (`1e-6`), identifiers, and single-char
//! punctuation. Multi-character operators arrive as consecutive
//! punctuation tokens (`::` is `:` `:`), which the rules match
//! positionally.
//!
//! Comment and literal *content* never reaches the token stream, so a
//! doc comment mentioning `HashMap` or a panic message containing
//! `panic!(` cannot trip a rule.

/// What kind of lexeme a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `for`, `HashMap`, ...).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (one token even for `1.5e-7`).
    Num,
    /// String, raw string, or byte-string literal (content dropped).
    Str,
    /// Char or byte-char literal (content dropped).
    Char,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Token text. Empty for [`TokKind::Str`] / [`TokKind::Char`].
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Which waiver grammar a comment used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaiverKind {
    /// `// analyze: nondeterministic-ok(<reason>)` — waives D1/D2/D3.
    AnalyzeOk,
    /// `// lint: allow(<reason>)` — waives the ported D5 line checks.
    LintAllow,
}

/// A waiver comment found during lexing.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// Grammar the waiver used.
    pub kind: WaiverKind,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The `<reason>` text between the parentheses.
    pub reason: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literal content stripped.
    pub toks: Vec<Tok>,
    /// Waiver comments, in source order.
    pub waivers: Vec<Waiver>,
}

/// Extracts `(<reason>)` following `marker` inside a comment body, if
/// present. Nested parentheses inside the reason are balanced.
fn waiver_reason(body: &str, marker: &str) -> Option<String> {
    let at = body.find(marker)?;
    let rest = &body[at + marker.len()..];
    let mut depth = 1usize;
    let mut out = String::new();
    for c in rest.chars() {
        match c {
            '(' => {
                depth += 1;
                out.push(c);
            }
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(out.trim().to_string());
                }
                out.push(c);
            }
            _ => out.push(c),
        }
    }
    // Unclosed: take the rest of the line as the reason.
    Some(out.trim().to_string())
}

/// Lexes `src` into tokens and waiver comments.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let body = &src[start..i];
                // Doc comments (`///`, `//!`) are documentation text, not
                // waivers: only a plain `//` comment can waive.
                let is_doc = body.starts_with("///") || body.starts_with("//!");
                if !is_doc {
                    if let Some(reason) = waiver_reason(body, "analyze: nondeterministic-ok(") {
                        out.waivers.push(Waiver {
                            kind: WaiverKind::AnalyzeOk,
                            line,
                            reason,
                        });
                    } else if let Some(reason) = waiver_reason(body, "lint: allow(") {
                        out.waivers.push(Waiver {
                            kind: WaiverKind::LintAllow,
                            line,
                            reason,
                        });
                    }
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let tok_line = line;
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` followed by a non-quote
                // is a lifetime; everything else is a char literal.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let tok_line = line;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => {
                                line += 1;
                                i += 1;
                            }
                            _ => i += 1,
                        }
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line: tok_line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Negative/positive exponent: `1e-6`, `2.5E+3`.
                        if (d == b'e' || d == b'E')
                            && i + 2 < b.len()
                            && (b[i + 1] == b'-' || b[i + 1] == b'+')
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        // `1.5` but not the range `1..n`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br"..".
                if i < b.len() && matches!(text, "r" | "b" | "br" | "rb") {
                    let raw = text.contains('r');
                    let mut hashes = 0usize;
                    let mut j = i;
                    if raw {
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                    }
                    if j < b.len() && b[j] == b'"' {
                        let tok_line = line;
                        j += 1;
                        if raw {
                            // Scan for `"` + hashes `#`s, tracking lines.
                            'raw: while j < b.len() {
                                if b[j] == b'\n' {
                                    line += 1;
                                } else if b[j] == b'"' {
                                    let mut k = 0usize;
                                    while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#'
                                    {
                                        k += 1;
                                    }
                                    if k == hashes {
                                        j += 1 + hashes;
                                        break 'raw;
                                    }
                                }
                                j += 1;
                            }
                        } else {
                            while j < b.len() {
                                match b[j] {
                                    b'\\' => j += 2,
                                    b'\n' => {
                                        line += 1;
                                        j += 1;
                                    }
                                    b'"' => {
                                        j += 1;
                                        break;
                                    }
                                    _ => j += 1,
                                }
                            }
                        }
                        i = j;
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line: tok_line,
                        });
                        continue;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: text.to_string(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_and_literals() {
        let l = lex("let x = \"HashMap.iter()\"; // HashMap\n/* Instant */ y");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
        assert!(l.waivers.is_empty());
    }

    #[test]
    fn captures_waivers_with_reasons() {
        let l = lex(concat!(
            "a(); // analyze: nondeterministic-ok(order is logged only)\n",
            "b(); // lint: allow(documented `# Panics` contract)\n",
            "/// doc text: `// lint: allow(not a waiver)`\n",
        ));
        assert_eq!(l.waivers.len(), 2);
        assert_eq!(l.waivers[0].kind, WaiverKind::AnalyzeOk);
        assert_eq!(l.waivers[0].line, 1);
        assert_eq!(l.waivers[0].reason, "order is logged only");
        assert_eq!(l.waivers[1].kind, WaiverKind::LintAllow);
        assert_eq!(l.waivers[1].reason, "documented `# Panics` contract");
    }

    #[test]
    fn numbers_keep_negative_exponents_whole() {
        let l = lex("let t = 1.5e-7; let r = 0..n;");
        let nums: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.5e-7", "0"]);
    }

    #[test]
    fn lifetimes_and_chars_distinguished() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_swallow_contents() {
        let l = lex("let s = r#\"panic!( \" inner \"#; z");
        assert!(l.toks.iter().any(|t| t.is_ident("z")));
        assert!(!l.toks.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let l = lex("a\n\"two\nline\"\nb");
        let bt = l.toks.iter().find(|t| t.is_ident("b")).map(|t| t.line);
        assert_eq!(bt, Some(4));
    }
}
