//! The determinism & concurrency rule pack (D1-D5).
//!
//! All source rules run over the token stream of [`crate::lexer`]; the
//! manifest and `#[must_use]` checks (part of D5) run over raw file text
//! in the `lib.rs` driver, which also applies waivers and assembles the
//! report. Each rule reports [`Finding`]s.
//!
//! # Rules
//!
//! * **D1 `nondet-iter`** — iteration over a `HashMap`/`HashSet`
//!   (for-loops and `iter`/`keys`/`values`/`drain`/`into_iter`/... calls
//!   on roots the file declares as unordered). Hash iteration order is
//!   seeded per map instance, so any path from it to output, error text,
//!   or accumulated floats is a nondeterminism bug. Waivable with
//!   `// analyze: nondeterministic-ok(<reason>)`.
//! * **D2 `clock-read`** — `Instant`/`SystemTime`/`std::time` reads
//!   outside the sanctioned timer module (`crates/obs/src/timer.rs`).
//!   `std::time::Duration` (a pure value type) is allowed anywhere.
//! * **D3 `float-accum`** — `sum()`/`fold()` at the end of an iterator
//!   chain rooted at an unordered container: float addition is not
//!   associative, so the result depends on hash order.
//! * **D4 `lock-discipline`** — `.lock().unwrap()`/`.lock().expect(...)`
//!   anywhere (poisoning must be handled explicitly; **not waivable**),
//!   and, in scheduler sources (`sched.rs`), a lock guard held across a
//!   channel/telemetry send (`send`/`try_send`/`record_*`).
//! * **D5** — the ported `scripts/lint` checks: `unwrap`/`expect`/
//!   `panic!` in library code (`D5 unwrap`), raw float tolerances and
//!   f64 equality in solver/checker code (`D5 float-tol`), plus the
//!   manifest and `#[must_use]` checks in `lib.rs`.

use crate::lexer::{Tok, TokKind, Waiver};
use crate::{Finding, Rule};
use std::collections::BTreeSet;

/// Iterator-producing methods on unordered containers (rule D1).
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Order-sensitive accumulators (rule D3).
const ACCUM_METHODS: &[&str] = &["sum", "fold"];

/// Calls that hand data to another thread or the telemetry fan-out; a
/// lock guard must not be live across them in scheduler code (rule D4).
const SEND_METHODS: &[&str] = &[
    "send",
    "try_send",
    "record_counter",
    "record_gauge",
    "record_time",
    "record_point",
];

/// Everything the source rules know about one file.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub file: &'a str,
    /// Token stream of the file.
    pub toks: &'a [Tok],
    /// Waiver comments of the file.
    pub waivers: &'a [Waiver],
}

/// A `fn` item with a brace-delimited body.
struct FnSpan {
    /// Line of the `fn` keyword.
    decl_line: u32,
    /// First line of the body.
    body_start: u32,
    /// Last line of the body.
    body_end: u32,
}

/// Runs every token-level rule on one file and returns raw findings
/// (waivers not yet applied).
pub fn scan_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let limit = test_region_start(ctx.toks);
    let toks = &ctx.toks[..limit];
    let mut out = Vec::new();
    let (locals, fields) = collect_unordered(toks);
    scan_iteration(ctx.file, toks, &locals, &fields, &mut out);
    if !ctx.file.ends_with("crates/obs/src/timer.rs") {
        scan_clock_reads(ctx.file, toks, &mut out);
    }
    scan_lock_unwrap(ctx.file, toks, &mut out);
    if ctx.file.ends_with("sched.rs") {
        scan_guard_across_send(ctx.file, toks, &mut out);
    }
    scan_panics(ctx.file, toks, &mut out);
    if in_tolerance_scope(ctx.file) {
        scan_float_tolerances(ctx.file, toks, &mut out);
    }
    out.sort_by(|a, b| (a.line, &a.rule, &a.message).cmp(&(b.line, &b.rule, &b.message)));
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule && a.message == b.message);
    out
}

/// Applies the file's waivers to its raw findings, in place. Returns one
/// extra finding per waiver that suppressed nothing (waiver hygiene).
pub fn apply_waivers(ctx: &FileCtx<'_>, findings: &mut [Finding]) -> Vec<Finding> {
    let fns = fn_spans(ctx.toks);
    let mut used = vec![false; ctx.waivers.len()];
    for f in findings.iter_mut() {
        if !f.rule.waivable() {
            continue;
        }
        for (wi, w) in ctx.waivers.iter().enumerate() {
            if w.kind != f.rule.waiver_kind() {
                continue;
            }
            if waiver_covers(w, f.line, ctx.toks, &fns) {
                f.waived = true;
                f.reason = Some(w.reason.clone());
                used[wi] = true;
                break;
            }
        }
    }
    let mut extra = Vec::new();
    for (wi, w) in ctx.waivers.iter().enumerate() {
        if !used[wi] {
            extra.push(Finding {
                rule: Rule::UnusedWaiver,
                file: ctx.file.to_string(),
                line: w.line,
                message: format!("waiver `{}` suppresses no finding — remove it", w.reason),
                waived: false,
                reason: None,
            });
        }
    }
    extra
}

/// True when waiver `w` covers a finding on `line`: same line, the
/// next source line, or (when the next item is a `fn`) the whole body.
fn waiver_covers(w: &Waiver, line: u32, toks: &[Tok], fns: &[FnSpan]) -> bool {
    if w.line == line {
        return true;
    }
    // First token line after the waiver comment.
    let Some(target) = toks.iter().map(|t| t.line).find(|&l| l > w.line) else {
        return false;
    };
    if target == line {
        return true;
    }
    // Function-level waiver: the comment sits directly above a `fn`.
    if toks
        .iter()
        .filter(|t| t.line == target)
        .any(|t| t.is_ident("fn"))
    {
        if let Some(span) = fns.iter().find(|s| s.decl_line == target) {
            return (span.body_start..=span.body_end).contains(&line);
        }
    }
    false
}

/// Index of the first token of the file's `#[cfg(test)]` tail, or
/// `toks.len()`. The workspace convention (enforced since the original
/// `scripts/lint`) keeps test modules at the end of the file.
fn test_region_start(toks: &[Tok]) -> usize {
    let pat = ["#", "[", "cfg", "(", "test", ")", "]"];
    for i in 0..toks.len() {
        if pat
            .iter()
            .enumerate()
            .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
        {
            return i;
        }
    }
    toks.len()
}

/// True for solver/checker files subject to the float-tolerance check.
fn in_tolerance_scope(file: &str) -> bool {
    (file.contains("crates/milp/src/") || file.contains("crates/certify/src/"))
        && !file.ends_with("/tol.rs")
}

/// Root identifier of a type expression starting at `i`, skipping
/// references, `mut`, lifetimes and path prefixes: the last path segment
/// before `<`, `,`, `)`, `=`, ... So `&mut std::collections::HashMap<K, V>`
/// roots at `HashMap`, while `Vec<HashMap<K, V>>` roots at `Vec`.
fn type_root(toks: &[Tok], mut i: usize) -> Option<String> {
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut") || t.is_ident("dyn")
        {
            i += 1;
        } else {
            break;
        }
    }
    let mut root = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            root = Some(t.text.clone());
            i += 1;
            // Continue through `::` path segments.
            if i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
                i += 2;
                continue;
            }
        }
        break;
    }
    root
}

/// True when the expression starting at `i` is a path call on an
/// unordered constructor: `HashMap::new(...)`, `HashSet::from(...)`, ...
fn is_unordered_constructor(toks: &[Tok], mut i: usize) -> bool {
    let mut saw_unordered = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if t.text == "HashMap" || t.text == "HashSet" {
                saw_unordered = true;
            }
            i += 1;
            // Turbofish on a path segment: `HashMap::<K, V>::new`.
            if i < toks.len() && toks[i].is_punct('<') {
                i = skip_angles(toks, i);
            }
            if i + 1 < toks.len() && toks[i].is_punct(':') && toks[i + 1].is_punct(':') {
                i += 2;
                continue;
            }
        }
        break;
    }
    saw_unordered && i < toks.len() && toks[i].is_punct('(')
}

/// Skips a balanced `<...>` starting at `i` (which must be `<`);
/// returns the index just past the matching `>`.
fn skip_angles(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if toks[i].is_punct(';') || toks[i].is_punct('{') {
            // Bail out of a shift expression mis-parse.
            return i;
        }
        i += 1;
    }
    i
}

/// Skips a balanced `(...)`/`[...]`/`{...}` starting at `i`; returns
/// the index just past the matching closer.
fn skip_balanced(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < toks.len() {
        if toks[i].is_punct('(') || toks[i].is_punct('[') || toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct(')') || toks[i].is_punct(']') || toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// File-local inference of unordered roots: local/parameter names and
/// struct field names declared as `HashMap`/`HashSet`.
fn collect_unordered(toks: &[Tok]) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut locals = BTreeSet::new();
    let mut fields = BTreeSet::new();
    let unordered = |r: &Option<String>| matches!(r.as_deref(), Some("HashMap") | Some("HashSet"));
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                let k = j + 1;
                if k < toks.len()
                    && toks[k].is_punct(':')
                    && !toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                {
                    if unordered(&type_root(toks, k + 1)) {
                        locals.insert(name);
                    }
                } else if k < toks.len()
                    && toks[k].is_punct('=')
                    && is_unordered_constructor(toks, k + 1)
                {
                    locals.insert(name);
                }
            }
            i += 1;
        } else if t.is_ident("fn") {
            // Find the parameter list `(`, skipping the generics.
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct('(') && !toks[j].is_punct('{') {
                if toks[j].is_punct('<') {
                    j = skip_angles(toks, j);
                } else {
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].is_punct('(') {
                let end = skip_balanced(toks, j);
                let mut k = j + 1;
                let mut depth = 1i32;
                while k < end.saturating_sub(1) {
                    let p = &toks[k];
                    if p.is_punct('(') || p.is_punct('[') {
                        depth += 1;
                    } else if p.is_punct(')') || p.is_punct(']') {
                        depth -= 1;
                    } else if depth == 1
                        && p.kind == TokKind::Ident
                        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        && (toks[k - 1].is_punct('(') || toks[k - 1].is_punct(','))
                        && unordered(&type_root(toks, k + 2))
                    {
                        locals.insert(p.text.clone());
                    }
                    k += 1;
                }
                i = end;
                continue;
            }
            i = j;
        } else if t.is_ident("struct") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('<') {
                j = skip_angles(toks, j);
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = skip_balanced(toks, j);
                let mut k = j + 1;
                let mut depth = 1i32;
                while k < end.saturating_sub(1) {
                    let p = &toks[k];
                    if p.is_punct('{') || p.is_punct('(') || p.is_punct('[') {
                        depth += 1;
                    } else if p.is_punct('}') || p.is_punct(')') || p.is_punct(']') {
                        depth -= 1;
                    } else if depth == 1
                        && p.kind == TokKind::Ident
                        && p.text != "pub"
                        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        && (toks[k - 1].is_punct('{')
                            || toks[k - 1].is_punct(',')
                            || toks[k - 1].is_punct(']')
                            || toks[k - 1].is_punct(')'))
                        && unordered(&type_root(toks, k + 2))
                    {
                        fields.insert(p.text.clone());
                    }
                    k += 1;
                }
                i = end;
                continue;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    (locals, fields)
}

/// D1/D3: for-loops over unordered roots and iteration-method chains.
fn scan_iteration(
    file: &str,
    toks: &[Tok],
    locals: &BTreeSet<String>,
    fields: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("for") {
            scan_for_loop(file, toks, i, locals, fields, out);
        }
        if t.kind != TokKind::Ident || !toks.get(i + 1).is_some_and(|n| n.is_punct('.')) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let prev_path = i > 0 && toks[i - 1].is_punct(':');
        let is_root = if prev_dot {
            fields.contains(&t.text)
        } else {
            !prev_path && locals.contains(&t.text)
        };
        if !is_root {
            continue;
        }
        let methods = chain_methods(toks, i + 1);
        report_chain(file, &t.text, &methods, out);
    }
}

/// Collects `(method, line)` for the call chain `.m1(..).m2(..)...`
/// starting at `dot` (which must index a `.`). Field accesses end the
/// chain-method collection but calls continue through them.
fn chain_methods(toks: &[Tok], mut dot: usize) -> Vec<(String, u32)> {
    let mut methods = Vec::new();
    while dot < toks.len() && toks[dot].is_punct('.') {
        let Some(m) = toks.get(dot + 1) else { break };
        if m.kind != TokKind::Ident {
            break;
        }
        let mut k = dot + 2;
        // Turbofish: `.sum::<f64>()`.
        if k + 1 < toks.len() && toks[k].is_punct(':') && toks[k + 1].is_punct(':') {
            k += 2;
            if k < toks.len() && toks[k].is_punct('<') {
                k = skip_angles(toks, k);
            }
        }
        if k < toks.len() && toks[k].is_punct('(') {
            methods.push((m.text.clone(), m.line));
            dot = skip_balanced(toks, k);
        } else {
            // Plain field access: step over it and keep walking.
            dot = k;
        }
    }
    methods
}

/// Emits D1 or D3 for a method chain rooted at unordered `root`.
fn report_chain(file: &str, root: &str, methods: &[(String, u32)], out: &mut Vec<Finding>) {
    let Some(iter_at) = methods
        .iter()
        .position(|(m, _)| ITER_METHODS.contains(&m.as_str()))
    else {
        return;
    };
    let accum = methods[iter_at..]
        .iter()
        .find(|(m, _)| ACCUM_METHODS.contains(&m.as_str()));
    if let Some((m, mline)) = accum {
        out.push(Finding {
            rule: Rule::FloatAccum,
            file: file.to_string(),
            line: *mline,
            message: format!(
                "`{m}()` accumulates over unordered container `{root}` — float addition is order-sensitive; collect and sort first"
            ),
            waived: false,
            reason: None,
        });
    } else {
        let (m, mline) = &methods[iter_at];
        out.push(Finding {
            rule: Rule::NondetIter,
            file: file.to_string(),
            line: *mline,
            message: format!(
                "iteration (`{m}`) over unordered container `{root}` — use BTreeMap/BTreeSet or sort, or waive with a reason"
            ),
            waived: false,
            reason: None,
        });
    }
}

/// D1 for `for <pat> in <expr> {`: resolves the loop expression's root.
fn scan_for_loop(
    file: &str,
    toks: &[Tok],
    i: usize,
    locals: &BTreeSet<String>,
    fields: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    // Locate `in` at bracket depth 0 before the loop body `{` (an `impl
    // Trait for Type {` or HRTB `for<'a>` never has one).
    let mut j = i + 1;
    let mut depth = 0i32;
    let in_at = loop {
        let Some(t) = toks.get(j) else { return };
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return;
        } else if depth == 0 && t.is_ident("in") {
            break j;
        }
        j += 1;
    };
    // Root expression: `&`/`mut` then an ident/field chain.
    let mut k = in_at + 1;
    while toks
        .get(k)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut") || t.is_punct('*'))
    {
        k += 1;
    }
    let Some(first) = toks.get(k) else { return };
    if first.kind != TokKind::Ident {
        return;
    }
    let mut unordered = locals.contains(&first.text);
    let mut seg = k;
    // Walk `a.b.c` field segments (stop at calls; chains with calls are
    // handled by the method-chain scan).
    while toks.get(seg + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(seg + 2).is_some_and(|t| t.kind == TokKind::Ident)
        && !toks.get(seg + 3).is_some_and(|t| t.is_punct('('))
    {
        seg += 2;
        if fields.contains(&toks[seg].text) {
            unordered = true;
        }
    }
    // `for x in map {` / `for x in &self.map {` — flag only when the
    // expression ends here (a call chain is the other scan's job).
    if unordered && toks.get(seg + 1).is_some_and(|t| t.is_punct('{')) {
        out.push(Finding {
            rule: Rule::NondetIter,
            file: file.to_string(),
            line: toks[i].line,
            message: format!(
                "for-loop over unordered container `{}` — use BTreeMap/BTreeSet or sort, or waive with a reason",
                toks[seg].text
            ),
            waived: false,
            reason: None,
        });
    }
}

/// D2: clock reads outside the timer module.
fn scan_clock_reads(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(Finding {
                rule: Rule::ClockRead,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{}` outside vm1_obs::timer — clock reads are nondeterministic; take a Stopwatch instead",
                    t.text
                ),
                waived: false,
                reason: None,
            });
        } else if t.text == "std"
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("time"))
        {
            // `std::time::X` — Duration is a value type and fine; a brace
            // group is judged by its members, and Instant/SystemTime are
            // already reported by the ident check above.
            let next = toks.get(i + 6);
            let allowed = next.is_none_or(|n| {
                n.is_ident("Duration")
                    || n.is_ident("Instant")
                    || n.is_ident("SystemTime")
                    || n.is_punct('{')
                    || n.kind != TokKind::Ident
            });
            if !allowed {
                out.push(Finding {
                    rule: Rule::ClockRead,
                    file: file.to_string(),
                    line: t.line,
                    message: "`std::time` used outside vm1_obs::timer (only Duration is allowed)"
                        .to_string(),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// D4 (part 1): `.lock().unwrap()` / `.lock().expect(...)` — poisoning
/// must be handled, never unwrapped. Not waivable.
fn scan_lock_unwrap(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("lock") || t.is_ident("try_lock"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 5)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && toks.get(i + 6).is_some_and(|t| t.is_punct('('))
        {
            out.push(Finding {
                rule: Rule::LockDiscipline,
                file: file.to_string(),
                line: toks[i + 1].line,
                message: format!(
                    "bare `.{}().{}(...)` — handle PoisonError (e.g. unwrap_or_else(PoisonError::into_inner))",
                    toks[i + 1].text, toks[i + 5].text
                ),
                waived: false,
                reason: None,
            });
        }
    }
}

/// D4 (part 2), scheduler files only: a lock guard bound by `let` (or
/// extended from an `if let`/`while let` scrutinee) must not be live
/// across a channel/telemetry send.
fn scan_guard_across_send(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    // (name-or-None, brace depth the guard dies at)
    let mut guards: Vec<(Option<String>, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|(_, d)| *d <= depth);
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                    if let Some(pos) = guards
                        .iter()
                        .rposition(|(g, _)| g.as_deref() == Some(name.text.as_str()))
                    {
                        guards.remove(pos);
                    }
                }
            }
        } else if t.is_ident("let") {
            if let Some((name, end, block_scoped)) = guard_binding(toks, i) {
                if block_scoped {
                    guards.push((None, depth + 1));
                } else {
                    guards.push((name, depth));
                }
                i = end;
                continue;
            }
        } else if t.kind == TokKind::Ident
            && SEND_METHODS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !guards.is_empty()
        {
            let held: Vec<String> = guards
                .iter()
                .map(|(g, _)| g.clone().unwrap_or_else(|| "<scrutinee temporary>".into()))
                .collect();
            out.push(Finding {
                rule: Rule::LockDiscipline,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{}` called while lock guard(s) [{}] are live — drop the guard before sending",
                    t.text,
                    held.join(", ")
                ),
                waived: false,
                reason: None,
            });
        }
        i += 1;
    }
}

/// Inspects a `let` statement at `i`. Returns `(bound name, index after
/// statement, is-block-scoped)` when the statement binds (or extends) a
/// lock guard: the RHS root is a `lock(...)`/`.lock()` call optionally
/// followed by guard-preserving adapters (`unwrap_or_else`, ...).
fn guard_binding(toks: &[Tok], i: usize) -> Option<(Option<String>, usize, bool)> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone());
    // Advance to the `=` at depth 0 (skip the pattern and `: Type`).
    let mut depth = 0i32;
    let eq = loop {
        let t = toks.get(j)?;
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') && !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
        {
            break j;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return None;
        }
        j += 1;
    };
    // Statement end: `;` at depth 0, or `{` at depth 0 (if/while let).
    let mut k = eq + 1;
    let mut depth = 0i32;
    let (term, resume, block_scoped) = loop {
        let t = toks.get(k)?;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct(';') {
            break (k, k + 1, false);
        } else if depth == 0 && t.is_punct('{') {
            break (k, k, true);
        }
        k += 1;
    };
    if !rhs_is_guard(toks, eq + 1, term) {
        return None;
    }
    Some((name, resume, block_scoped))
}

/// True when the RHS tokens in `[start, end)` evaluate to a live guard:
/// the chain reaches a `lock`/`try_lock` call and every later chain
/// method preserves the guard.
fn rhs_is_guard(toks: &[Tok], start: usize, end: usize) -> bool {
    const PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];
    let mut j = start;
    while j < end && (toks[j].is_punct('&') || toks[j].is_punct('*') || toks[j].is_ident("mut")) {
        j += 1;
    }
    // Free-function form: `lock(&m)` (+ preserving adapters).
    if toks
        .get(j)
        .is_some_and(|t| t.is_ident("lock") || t.is_ident("try_lock"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
    {
        let after = skip_balanced(toks, j + 1);
        return chain_preserves_guard(toks, after, end, PRESERVING);
    }
    // Method form: `expr.lock()` — the receiver must be a plain path
    // (a nested `lock` inside a call argument is a temporary, not the
    // bound value).
    if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
        let mut k = j;
        while k < end {
            if toks[k].is_punct('.')
                && toks
                    .get(k + 1)
                    .is_some_and(|t| t.is_ident("lock") || t.is_ident("try_lock"))
                && toks.get(k + 2).is_some_and(|t| t.is_punct('('))
            {
                let after = skip_balanced(toks, k + 2);
                return chain_preserves_guard(toks, after, end, PRESERVING);
            }
            if toks[k].is_punct('(') || toks[k].is_punct('[') {
                // Receiver involves a call: nested temporaries only.
                return false;
            }
            k += 1;
        }
    }
    false
}

/// After a lock call, every further `.m(...)` up to `end` must be a
/// guard-preserving adapter for the bound value to still be the guard.
fn chain_preserves_guard(toks: &[Tok], mut j: usize, end: usize, preserving: &[&str]) -> bool {
    while j < end && toks[j].is_punct('.') {
        let Some(m) = toks.get(j + 1) else {
            return false;
        };
        if !preserving.contains(&m.text.as_str()) {
            return false;
        }
        let mut k = j + 2;
        if k < end && toks[k].is_punct('(') {
            k = skip_balanced(toks, k);
        }
        j = k;
    }
    j >= end
}

/// D5 (ported check 1): `.unwrap()`, `.expect(...)`, `panic!(...)` in
/// library code. Waivable per line with `// lint: allow(<reason>)`.
fn scan_panics(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            // `.lock().unwrap()` is D4's finding; don't double-report.
            let after_lock = i >= 3
                && toks[i - 1].is_punct(')')
                && toks[i - 2].is_punct('(')
                && (toks[i - 3].is_ident("lock") || toks[i - 3].is_ident("try_lock"));
            if !after_lock {
                out.push(Finding {
                    rule: Rule::Unwrap,
                    file: file.to_string(),
                    line: toks[i + 1].line,
                    message: format!(
                        "`.{}(...)` in library code — return a typed error, or waive a documented-panic API",
                        toks[i + 1].text
                    ),
                    waived: false,
                    reason: None,
                });
            }
        } else if t.is_ident("panic")
            && toks.get(i + 1).is_some_and(|p| p.is_punct('!'))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            out.push(Finding {
                rule: Rule::Unwrap,
                file: file.to_string(),
                line: t.line,
                message: "`panic!(...)` in library code — return a typed error, or waive a documented-panic API".to_string(),
                waived: false,
                reason: None,
            });
        }
    }
}

/// D5 (ported check 4): raw negative-exponent float literals and direct
/// f64 equality in solver/checker code. Named tolerances live in
/// `crates/milp/src/tol.rs` (exempt); `!=` comparisons are not flagged.
fn scan_float_tolerances(file: &str, toks: &[Tok], out: &mut Vec<Finding>) {
    let is_float = |t: &Tok| {
        t.kind == TokKind::Num
            && (t.text.contains('.') || t.text.contains("e-") || t.text.contains("E-"))
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Num && (t.text.contains("e-") || t.text.contains("E-")) {
            out.push(Finding {
                rule: Rule::FloatTol,
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "raw float tolerance literal `{}` — name it in crates/milp/src/tol.rs",
                    t.text
                ),
                waived: false,
                reason: None,
            });
        }
        // `==` with a float literal on either side.
        if t.is_punct('=')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('='))
            && !(i > 0 && (toks[i - 1].is_punct('!') || toks[i - 1].is_punct('=')))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct('='))
        {
            let lhs_float = i > 0 && is_float(&toks[i - 1]);
            let mut r = i + 2;
            if toks.get(r).is_some_and(|n| n.is_punct('-')) {
                r += 1;
            }
            let rhs_float = toks.get(r).is_some_and(&is_float);
            if lhs_float || rhs_float {
                out.push(Finding {
                    rule: Rule::FloatTol,
                    file: file.to_string(),
                    line: t.line,
                    message: "direct f64 equality — compare exactly on integers/rationals or use a named tolerance".to_string(),
                    waived: false,
                    reason: None,
                });
            }
        }
    }
}

/// Brace-matched spans of every `fn` item with a body.
fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let decl_line = toks[i].line;
        let mut j = i + 1;
        // Skip to the parameter list.
        while j < toks.len() && !toks[j].is_punct('(') {
            if toks[j].is_punct('<') {
                j = skip_angles(toks, j);
            } else if toks[j].is_punct(';') || toks[j].is_punct('{') {
                break;
            } else {
                j += 1;
            }
        }
        if j >= toks.len() || !toks[j].is_punct('(') {
            i = j.max(i + 1);
            continue;
        }
        j = skip_balanced(toks, j);
        // Return type / where clause up to the body or a `;`.
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            if toks[j].is_punct('<') {
                j = skip_angles(toks, j);
            } else {
                j += 1;
            }
        }
        if j < toks.len() && toks[j].is_punct('{') {
            let body_start = toks[j].line;
            let end = skip_balanced(toks, j);
            let body_end = toks
                .get(end.saturating_sub(1))
                .map_or(body_start, |t| t.line);
            spans.push(FnSpan {
                decl_line,
                body_start,
                body_end,
            });
            i = j + 1; // descend into the body (nested fns get spans too)
        } else {
            i = j;
        }
    }
    spans
}
