//! vm1-analyze: in-tree static analyzer for the vm1dp workspace.
//!
//! A dependency-free lint pack that walks every workspace library source
//! (`crates/*/src/**/*.rs`, excluding the offline dev-dependency shims
//! and `src/bin/` CLI front ends) and enforces the determinism and
//! concurrency rules the solver stack's bit-identical-output contract
//! rests on. See [`rules`] for the rule catalogue (D1-D5) and DESIGN.md
//! §10 for the rationale.
//!
//! The analyzer lexes Rust with a hand-rolled token stream ([`lexer`]) —
//! no `syn`, no proc-macro machinery — so it builds offline in
//! milliseconds and is itself subject to the rules it enforces (the
//! workspace scan includes `crates/analyze/src`).
//!
//! # Waivers and the baseline
//!
//! A finding of D1/D2/D3 may be waived with
//! `// analyze: nondeterministic-ok(<reason>)` on the same line, the
//! line above, or above the enclosing `fn` (whole-body waiver); the
//! ported D5 line checks keep their historical
//! `// lint: allow(<reason>)` grammar. D4 (mutex discipline) is not
//! waivable. Every waived finding is inventoried as a `rule|file|reason`
//! line; CI pins that inventory to `scripts/analyze-baseline.txt` so a
//! new waiver is a reviewed diff, never a silent drift. A waiver that
//! suppresses nothing is itself a finding.

pub mod lexer;
pub mod rules;

use rules::FileCtx;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Solver/session result types that must carry a struct-level
/// `#[must_use]` (ported `scripts/lint` check 2).
const MUST_USE_TYPES: &[(&str, &str)] = &[
    ("crates/core/src/session.rs", "OptStats"),
    ("crates/core/src/distopt.rs", "DistOptStats"),
    ("crates/core/src/objective.rs", "Objective"),
    ("crates/core/src/audit.rs", "DesignAuditReport"),
    ("crates/place/src/refine.rs", "RefineStats"),
    ("crates/place/src/verify.rs", "VerifyReport"),
    ("crates/milp/src/audit.rs", "AuditReport"),
    ("crates/milp/src/branch.rs", "MilpSolution"),
    ("crates/milp/src/branch.rs", "CertifiedSolution"),
    ("crates/milp/src/cert.rs", "Certificate"),
    ("crates/certify/src/check.rs", "CheckReport"),
    ("crates/obs/src/lib.rs", "MetricsReport"),
];

/// Crate directories that are offline shims of external dev-deps, not
/// product code: excluded from the scan.
const SHIM_CRATES: &[&str] = &["proptest", "criterion"];

/// The rule a finding belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// D1: iteration over an unordered container.
    NondetIter,
    /// D2: clock read outside the timer module.
    ClockRead,
    /// D3: float accumulation over an unordered container.
    FloatAccum,
    /// D4: mutex discipline (bare lock unwrap / guard across send).
    LockDiscipline,
    /// D5: `unwrap`/`expect`/`panic!` in library code.
    Unwrap,
    /// D5: missing struct-level `#[must_use]` on a result type.
    MustUse,
    /// D5: manifest policy (unsafe forbid, `[lints] workspace = true`).
    Manifest,
    /// D5: raw float tolerance / f64 equality in solver or checker.
    FloatTol,
    /// W0: a waiver comment that suppresses no finding.
    UnusedWaiver,
}

impl Rule {
    /// Stable rule identifier used in reports and the baseline.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetIter => "D1-nondet-iter",
            Rule::ClockRead => "D2-clock-read",
            Rule::FloatAccum => "D3-float-accum",
            Rule::LockDiscipline => "D4-lock-discipline",
            Rule::Unwrap => "D5-unwrap",
            Rule::MustUse => "D5-must-use",
            Rule::Manifest => "D5-manifest",
            Rule::FloatTol => "D5-float-tol",
            Rule::UnusedWaiver => "W0-unused-waiver",
        }
    }

    /// Whether a waiver comment can suppress this rule.
    #[must_use]
    pub fn waivable(self) -> bool {
        matches!(
            self,
            Rule::NondetIter | Rule::ClockRead | Rule::FloatAccum | Rule::Unwrap | Rule::FloatTol
        )
    }

    /// The waiver grammar that applies to this rule.
    #[must_use]
    pub fn waiver_kind(self) -> lexer::WaiverKind {
        match self {
            Rule::NondetIter | Rule::ClockRead | Rule::FloatAccum => lexer::WaiverKind::AnalyzeOk,
            _ => lexer::WaiverKind::LintAllow,
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule that fired.
    pub rule: Rule,
    /// Repo-relative file (`/` separators); `Cargo.toml` for manifest
    /// findings.
    pub file: String,
    /// 1-based line (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description of the defect.
    pub message: String,
    /// True when a waiver comment suppressed the finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub reason: Option<String>,
}

/// Error walking or reading the workspace.
#[derive(Debug)]
pub struct AnalyzeError {
    msg: String,
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for AnalyzeError {}

impl AnalyzeError {
    fn new(msg: impl Into<String>) -> AnalyzeError {
        AnalyzeError { msg: msg.into() }
    }
}

/// The full result of an analyzer run.
#[must_use]
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding (waived and not), sorted by file, line, rule.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not suppressed by a waiver — each one fails the gate.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.waived)
    }

    /// Findings suppressed by a waiver (the baseline inventory).
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived)
    }

    /// The waived-finding inventory as sorted, deduplicated
    /// `rule|file|reason` lines (line numbers are deliberately omitted
    /// so unrelated edits don't churn the baseline).
    #[must_use]
    pub fn baseline_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .waived()
            .map(|f| {
                format!(
                    "{}|{}|{}",
                    f.rule.id(),
                    f.file,
                    f.reason.as_deref().unwrap_or("")
                )
            })
            .collect();
        lines.sort();
        lines.dedup();
        lines
    }

    /// Compares the waived inventory against baseline text. Returns
    /// `(missing, unexpected)`: baseline lines no longer produced, and
    /// produced lines absent from the baseline. Both must be empty for
    /// the gate to pass.
    #[must_use]
    pub fn diff_baseline(&self, baseline: &str) -> (Vec<String>, Vec<String>) {
        let current = self.baseline_lines();
        let pinned: Vec<&str> = baseline
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        let missing = pinned
            .iter()
            .filter(|l| !current.iter().any(|c| c == *l))
            .map(|l| (*l).to_string())
            .collect();
        let unexpected = current
            .iter()
            .filter(|c| !pinned.contains(&c.as_str()))
            .cloned()
            .collect();
        (missing, unexpected)
    }

    /// Human-readable report.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for f in self.unwaived() {
            let _ = writeln!(s, "{}:{}: [{}] {}", f.file, f.line, f.rule.id(), f.message);
        }
        let _ = writeln!(
            s,
            "analyze: {} file(s), {} finding(s), {} waived",
            self.files_scanned,
            self.unwaived().count(),
            self.waived().count()
        );
        s
    }

    /// Machine-readable JSON report (hand-rolled; no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"waived\": {}, \"reason\": {}}}",
                if i == 0 { "" } else { "," },
                f.rule.id(),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                f.waived,
                f.reason
                    .as_deref()
                    .map_or_else(|| "null".to_string(), |r| format!("\"{}\"", json_escape(r)))
            );
        }
        let _ = write!(
            s,
            "\n  ],\n  \"summary\": {{\"files_scanned\": {}, \"findings\": {}, \"waived\": {}}}\n}}\n",
            self.files_scanned,
            self.unwaived().count(),
            self.waived().count()
        );
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Analyzes one file's source text under the repo-relative label
/// `file`. Exposed for the fixture tests; [`analyze_workspace`] calls it
/// for every scanned file.
#[must_use]
pub fn analyze_source(file: &str, src: &str) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let ctx = FileCtx {
        file,
        toks: &lexed.toks,
        waivers: &lexed.waivers,
    };
    let mut findings = rules::scan_file(&ctx);
    let extra = rules::apply_waivers(&ctx, &mut findings);
    findings.extend(extra);
    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    findings
}

/// Runs the full analyzer on the workspace rooted at `root` (the
/// directory holding the top-level `Cargo.toml` and `crates/`).
///
/// # Errors
///
/// Fails when `root` is not a workspace root or a source file cannot be
/// read.
pub fn analyze_workspace(root: &Path) -> Result<Report, AnalyzeError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(AnalyzeError::new(format!(
            "{} is not a workspace root (no crates/ directory)",
            root.display()
        )));
    }
    let mut report = Report::default();
    for file in scan_set(&crates_dir)? {
        let rel = rel_label(root, &file);
        let src = fs::read_to_string(&file)
            .map_err(|e| AnalyzeError::new(format!("read {}: {e}", file.display())))?;
        report.findings.extend(analyze_source(&rel, &src));
        report.files_scanned += 1;
    }
    check_must_use(root, &mut report.findings);
    check_manifests(root, &mut report.findings)?;
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(report)
}

/// The library sources in scope, sorted for a deterministic report:
/// `crates/*/src/**/*.rs` minus the shim crates and `src/bin/`.
fn scan_set(crates_dir: &Path) -> Result<Vec<PathBuf>, AnalyzeError> {
    let mut files = Vec::new();
    for krate in sorted_dir(crates_dir)? {
        let name = file_name(&krate);
        if !krate.is_dir() || SHIM_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = krate.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzeError> {
    for entry in sorted_dir(dir)? {
        let name = file_name(&entry);
        if entry.is_dir() {
            // CLI front ends under src/bin/ may exit loudly; they are
            // out of library scope (matches the original scripts/lint).
            if name != "bin" {
                walk_rs(&entry, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// `read_dir` yields OS-dependent order; sort so the analyzer obeys its
/// own rule D1.
fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, AnalyzeError> {
    let rd = fs::read_dir(dir)
        .map_err(|e| AnalyzeError::new(format!("read_dir {}: {e}", dir.display())))?;
    let mut entries = Vec::new();
    for e in rd {
        let e = e.map_err(|e| AnalyzeError::new(format!("read_dir {}: {e}", dir.display())))?;
        entries.push(e.path());
    }
    entries.sort();
    Ok(entries)
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map_or_else(String::new, |n| n.to_string_lossy().into_owned())
}

fn rel_label(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Ported `scripts/lint` check 2: result types carry `#[must_use]`.
fn check_must_use(root: &Path, out: &mut Vec<Finding>) {
    for (file, ty) in MUST_USE_TYPES {
        let Ok(src) = fs::read_to_string(root.join(file)) else {
            out.push(Finding {
                rule: Rule::MustUse,
                file: (*file).to_string(),
                line: 0,
                message: format!(
                    "expected `pub struct {ty}` here (update the table in vm1-analyze)"
                ),
                waived: false,
                reason: None,
            });
            continue;
        };
        let decl = format!("pub struct {ty}");
        let lines: Vec<&str> = src.lines().collect();
        let Some(at) = lines.iter().position(|l| {
            l.starts_with(&decl)
                && l[decl.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !c.is_alphanumeric() && c != '_')
        }) else {
            out.push(Finding {
                rule: Rule::MustUse,
                file: (*file).to_string(),
                line: 0,
                message: format!(
                    "expected `pub struct {ty}` here (update the table in vm1-analyze)"
                ),
                waived: false,
                reason: None,
            });
            continue;
        };
        let lookback = at.saturating_sub(6);
        if !lines[lookback..at].iter().any(|l| l.contains("#[must_use")) {
            out.push(Finding {
                rule: Rule::MustUse,
                file: (*file).to_string(),
                line: u32::try_from(at + 1).unwrap_or(u32::MAX),
                message: format!("`pub struct {ty}` lacks a struct-level #[must_use]"),
                waived: false,
                reason: None,
            });
        }
    }
}

/// Ported `scripts/lint` check 3: unsafe forbidden at the workspace
/// root and `[lints] workspace = true` in every member manifest.
fn check_manifests(root: &Path, out: &mut Vec<Finding>) -> Result<(), AnalyzeError> {
    let root_toml = root.join("Cargo.toml");
    let src = fs::read_to_string(&root_toml)
        .map_err(|e| AnalyzeError::new(format!("read {}: {e}", root_toml.display())))?;
    if !src
        .lines()
        .any(|l| l.contains("unsafe_code") && l.contains("\"forbid\""))
    {
        out.push(Finding {
            rule: Rule::Manifest,
            file: "Cargo.toml".to_string(),
            line: 0,
            message: "root Cargo.toml must forbid unsafe_code under [workspace.lints.rust]"
                .to_string(),
            waived: false,
            reason: None,
        });
    }
    for krate in sorted_dir(&root.join("crates"))? {
        if !krate.is_dir() {
            continue;
        }
        let manifest = krate.join("Cargo.toml");
        let Ok(m) = fs::read_to_string(&manifest) else {
            continue;
        };
        let mut ok = false;
        let mut in_lints = false;
        for l in m.lines() {
            let l = l.trim();
            if l.starts_with('[') {
                in_lints = l == "[lints]";
            } else if in_lints && l.starts_with("workspace") && l.contains("true") {
                ok = true;
            }
        }
        if !ok {
            out.push(Finding {
                rule: Rule::Manifest,
                file: rel_label(root, &manifest),
                line: 0,
                message:
                    "manifest does not inherit [workspace.lints] (add `[lints] workspace = true`)"
                        .to_string(),
                waived: false,
                reason: None,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_diff_detects_both_directions() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: Rule::Unwrap,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            message: "m".into(),
            waived: true,
            reason: Some("documented".into()),
        });
        let (missing, unexpected) =
            r.diff_baseline("# comment\nD5-unwrap|crates/x/src/lib.rs|documented\n");
        assert!(missing.is_empty() && unexpected.is_empty());
        let (missing, unexpected) = r.diff_baseline("D5-unwrap|crates/gone/src/lib.rs|old\n");
        assert_eq!(missing.len(), 1);
        assert_eq!(unexpected.len(), 1);
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let r = Report {
            findings: vec![Finding {
                rule: Rule::ClockRead,
                file: "a\"b.rs".into(),
                line: 1,
                message: "quote \" and backslash \\".into(),
                waived: false,
                reason: None,
            }],
            files_scanned: 1,
        };
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"D2-clock-read\""));
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("\"files_scanned\": 1"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
