//! CLI front end for the vm1-analyze lint pack.
//!
//! ```text
//! vm1-analyze [--root DIR] [--format text|json] \
//!             [--baseline FILE] [--write-baseline FILE]
//! ```
//!
//! Exit codes: 0 clean; 1 unwaived findings or baseline mismatch;
//! 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> String {
    "usage: vm1-analyze [--root DIR] [--format text|json] \
     [--baseline FILE] [--write-baseline FILE]"
        .to_string()
}

fn parse(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        write_baseline: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--root" => opts.root = PathBuf::from(need("--root")?),
            "--format" => {
                opts.json = match need("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}`\n{}", usage())),
                }
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(need("--baseline")?)),
            "--write-baseline" => {
                opts.write_baseline = Some(PathBuf::from(need("--write-baseline")?));
            }
            "-h" | "--help" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let report = match vm1_analyze::analyze_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("vm1-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &opts.write_baseline {
        let mut text = String::from(
            "# vm1-analyze waiver baseline: rule|file|reason for every waived finding.\n\
             # Regenerate with: cargo run -p vm1-analyze -- --write-baseline scripts/analyze-baseline.txt\n",
        );
        for l in report.baseline_lines() {
            text.push_str(&l);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("vm1-analyze: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    print!(
        "{}",
        if opts.json {
            report.to_json()
        } else {
            report.to_text()
        }
    );
    let mut failed = report.unwaived().count() > 0;
    if let Some(path) = &opts.baseline {
        match std::fs::read_to_string(path) {
            Ok(pinned) => {
                let (missing, unexpected) = report.diff_baseline(&pinned);
                for l in &missing {
                    eprintln!("vm1-analyze: baseline entry no longer produced (stale): {l}");
                }
                for l in &unexpected {
                    eprintln!("vm1-analyze: waiver not in baseline (add it deliberately): {l}");
                }
                failed = failed || !missing.is_empty() || !unexpected.is_empty();
            }
            Err(e) => {
                eprintln!("vm1-analyze: read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
