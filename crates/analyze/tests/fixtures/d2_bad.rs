// Fixture: clock reads that must be flagged (file is not the timer module).
use std::time::Instant; // line 2: Instant import

pub fn timed() -> u64 {
    let t0 = Instant::now(); // line 5: Instant read
    let _st = std::time::SystemTime::now(); // line 6: SystemTime read
    t0.elapsed().as_nanos() as u64
}
