// Fixture: ported scripts/lint checks — unwrap/expect/panic! (everywhere)
// and float tolerances / f64 equality (solver scope; the test labels this
// file under crates/milp/src/).

pub fn unwraps(x: Option<u32>, y: Result<u32, ()>) -> u32 {
    let a = x.unwrap(); // line 6: .unwrap()
    let b = y.expect("failed"); // line 7: .expect(...)
    if a + b == 0 {
        panic!("zero"); // line 9: panic!
    }
    a + b
}

pub fn tolerances(v: f64) -> bool {
    let close = (v - 1.0).abs() < 1e-9; // line 15: raw tolerance literal
    let exact = v == 0.5; // line 16: direct f64 equality
    let zero_skip = v != 0.0; // exempt: != is a zero-skip, never flagged
    close && exact && zero_skip
}

pub fn waived_unwrap(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(documented `# Panics` contract)
}
