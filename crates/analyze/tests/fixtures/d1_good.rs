// Fixture: ordered containers and order-free HashMap use — zero findings.
use std::collections::{BTreeMap, BTreeSet, HashMap};

pub fn ordered_iteration() -> Vec<u32> {
    let om: BTreeMap<String, u32> = BTreeMap::new();
    let mut out = Vec::new();
    for (_k, v) in om.iter() {
        out.push(*v);
    }
    let os: BTreeSet<u32> = BTreeSet::new();
    out.extend(os.iter());
    out
}

pub fn hashmap_lookups(hm: &HashMap<u32, u32>) -> u32 {
    let mut hm2 = HashMap::new();
    hm2.insert(1u32, 2u32);
    hm.get(&1).copied().unwrap_or(0) + hm2.len() as u32
}

pub fn vec_accumulation(xs: &[f64]) -> f64 {
    xs.iter().sum() // ordered root: not D3
}
