// Fixture: every D1 site kind the analyzer must flag.
use std::collections::{HashMap, HashSet};

pub struct Holder {
    by_name: HashMap<String, u32>,
}

pub fn let_ascription() -> Vec<u32> {
    let m: HashMap<String, u32> = build();
    let mut out = Vec::new();
    for (_k, v) in m.iter() {
        // line 11: method chain on ascribed local
        out.push(*v);
    }
    out
}

pub fn constructor_root() {
    let mut s = HashSet::new();
    s.insert(1u32);
    for x in &s {
        // line 21: for-loop over constructor-typed local
        let _ = x;
    }
}

pub fn param_root(lookup: &HashMap<u32, u32>) -> Vec<u32> {
    lookup.values().copied().collect() // line 28: values() on param
}

impl Holder {
    pub fn field_root(&self) -> Vec<String> {
        self.by_name.keys().cloned().collect() // line 33: keys() on field
    }
}

pub fn drain_site(mut m: HashMap<u32, u32>) -> Vec<(u32, u32)> {
    m.drain().collect() // line 38: drain() on param
}

fn build() -> HashMap<String, u32> {
    HashMap::new()
}

pub fn lookup_only(m: &HashMap<u32, u32>) -> Option<u32> {
    // Lookups and inserts are order-free: none of these may be flagged.
    m.get(&1).copied()
}
