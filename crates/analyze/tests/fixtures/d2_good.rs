// Fixture: Duration is a value type — allowed anywhere. Zero findings.
use std::time::Duration;

pub fn half(d: Duration) -> Duration {
    let limit = std::time::Duration::from_millis(5);
    d.min(limit) / 2
}
