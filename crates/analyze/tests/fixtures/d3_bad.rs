// Fixture: float accumulation rooted at unordered containers (D3, not D1).
use std::collections::HashMap;

pub fn hash_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum() // line 5: sum over unordered root
}

pub fn hash_fold(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0, |a, b| a + b) // line 9: fold over unordered root
}
