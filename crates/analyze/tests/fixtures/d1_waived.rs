// Fixture: waiver scoping — one waived site, one identical unwaived site.
use std::collections::HashMap;

// analyze: nondeterministic-ok(diagnostic dump only; order never reaches results)
pub fn waived_whole_fn(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() // line 6: covered by the fn-level waiver
}

pub fn same_line_waiver(m: &HashMap<u32, u32>) -> usize {
    m.values().count() // analyze: nondeterministic-ok(count is order-free)
}

pub fn not_waived(m: &HashMap<u32, u32>) -> usize {
    m.keys().count() // line 14: must still be flagged
}
