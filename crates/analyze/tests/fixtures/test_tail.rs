// Fixture: the `#[cfg(test)]` tail is out of scope — unwraps and hash
// iteration inside tests are fine.
use std::collections::HashMap;

pub fn clean(m: &HashMap<u32, u32>) -> Option<u32> {
    m.get(&1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loud_test() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_k, _v) in m.iter() {}
        assert_eq!(clean(&m).unwrap_or(0), 0);
        let _ = std::time::Instant::now();
    }
}
