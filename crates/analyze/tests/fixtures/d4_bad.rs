// Fixture: mutex-discipline violations. Named `*sched.rs` by the test so
// the guard-across-send rule applies; the bare lock-unwrap rule applies
// everywhere.
use std::sync::{Arc, Mutex};

pub fn bare_lock_unwrap(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() // line 7: .lock().unwrap()
}

pub fn bare_lock_expect(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned") // line 11: .lock().expect(...)
}

pub fn guard_across_send(m: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    tx.send(*g).ok(); // line 16: send while `g` live
    drop(g);
    tx.send(0).ok(); // line 18: fine, guard dropped
}

pub fn guard_dropped_by_scope(m: &Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    {
        let _g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    tx.send(1).ok(); // line 25: fine, guard scope closed
}

pub struct Recorder;
impl Recorder {
    pub fn record_gauge(&self, _v: u64) {}
}

pub fn guard_across_telemetry(m: &Mutex<u64>, r: &Recorder) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    r.record_gauge(*g); // line 35: telemetry send while `g` live
}
