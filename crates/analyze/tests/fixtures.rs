//! Fixture tests: known-good and known-bad snippets per rule D1-D5,
//! with exact finding spans. Deleting any determinism fix in the
//! workspace makes `workspace_is_clean` (below) fail the same way these
//! fixtures demonstrate.

use vm1_analyze::{analyze_source, Finding, Rule};

fn spans(findings: &[Finding], rule: Rule) -> Vec<(u32, bool)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.waived))
        .collect()
}

fn other_rules(findings: &[Finding], allowed: &[Rule]) -> Vec<String> {
    findings
        .iter()
        .filter(|f| !allowed.contains(&f.rule))
        .map(|f| format!("{}:{} {}", f.file, f.line, f.message))
        .collect()
}

#[test]
fn d1_flags_every_unordered_root_kind() {
    let src = include_str!("fixtures/d1_bad.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    // Ascribed local (11), constructor local (21), param (28), struct
    // field (33), drain on param (38) — all unwaived.
    assert_eq!(
        spans(&f, Rule::NondetIter),
        vec![
            (11, false),
            (21, false),
            (28, false),
            (33, false),
            (38, false)
        ]
    );
    assert_eq!(other_rules(&f, &[Rule::NondetIter]), Vec::<String>::new());
}

#[test]
fn d1_ordered_and_lookup_only_code_is_clean() {
    let src = include_str!("fixtures/d1_good.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert_eq!(other_rules(&f, &[]), Vec::<String>::new());
}

#[test]
fn d1_waiver_suppresses_precisely_its_own_site() {
    let src = include_str!("fixtures/d1_waived.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    // fn-level waiver covers line 6, same-line waiver covers line 10;
    // the identical pattern on line 14 stays flagged.
    assert_eq!(
        spans(&f, Rule::NondetIter),
        vec![(6, true), (10, true), (14, false)]
    );
    // Both waivers are used: no unused-waiver findings.
    assert_eq!(spans(&f, Rule::UnusedWaiver), Vec::<(u32, bool)>::new());
    let reasons: Vec<&str> = f
        .iter()
        .filter(|x| x.waived)
        .map(|x| x.reason.as_deref().unwrap_or(""))
        .collect();
    assert_eq!(
        reasons,
        vec![
            "diagnostic dump only; order never reaches results",
            "count is order-free"
        ]
    );
}

#[test]
fn d2_flags_clock_reads_outside_timer_module() {
    let src = include_str!("fixtures/d2_bad.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert_eq!(
        spans(&f, Rule::ClockRead),
        vec![(2, false), (5, false), (6, false)]
    );
    assert_eq!(other_rules(&f, &[Rule::ClockRead]), Vec::<String>::new());
}

#[test]
fn d2_duration_is_allowed_and_timer_module_is_exempt() {
    let good = include_str!("fixtures/d2_good.rs");
    let f = analyze_source("crates/x/src/lib.rs", good);
    assert_eq!(other_rules(&f, &[]), Vec::<String>::new());
    // The same clock-reading source is clean when it IS the timer module.
    let bad = include_str!("fixtures/d2_bad.rs");
    let f = analyze_source("crates/obs/src/timer.rs", bad);
    assert_eq!(spans(&f, Rule::ClockRead), Vec::<(u32, bool)>::new());
}

#[test]
fn d3_reports_accumulation_not_plain_iteration() {
    let src = include_str!("fixtures/d3_bad.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert_eq!(spans(&f, Rule::FloatAccum), vec![(5, false), (9, false)]);
    // The iteration is subsumed by the accumulation finding.
    assert_eq!(spans(&f, Rule::NondetIter), Vec::<(u32, bool)>::new());
}

#[test]
fn d4_lock_discipline_exact_sites_and_no_waiver() {
    let src = include_str!("fixtures/d4_bad.rs");
    // Label ends in sched.rs so the guard-across-send rule applies.
    let f = analyze_source("crates/x/src/sched.rs", src);
    assert_eq!(
        spans(&f, Rule::LockDiscipline),
        vec![(7, false), (11, false), (16, false), (35, false)]
    );
    assert!(!Rule::LockDiscipline.waivable(), "D4 must not be waivable");
    // Outside scheduler files only the bare lock-unwrap sites remain.
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert_eq!(
        spans(&f, Rule::LockDiscipline),
        vec![(7, false), (11, false)]
    );
}

#[test]
fn d5_ported_checks_with_line_waiver() {
    let src = include_str!("fixtures/d5_bad.rs");
    // Label under crates/milp/src so the tolerance scope applies.
    let f = analyze_source("crates/milp/src/fix.rs", src);
    assert_eq!(
        spans(&f, Rule::Unwrap),
        vec![(6, false), (7, false), (9, false), (22, true)]
    );
    assert_eq!(spans(&f, Rule::FloatTol), vec![(15, false), (16, false)]);
    // Outside the solver/checker scope the tolerance check is silent.
    let f = analyze_source("crates/flow/src/fix.rs", src);
    assert_eq!(spans(&f, Rule::FloatTol), Vec::<(u32, bool)>::new());
}

#[test]
fn cfg_test_tail_is_out_of_scope() {
    let src = include_str!("fixtures/test_tail.rs");
    let f = analyze_source("crates/x/src/lib.rs", src);
    assert_eq!(other_rules(&f, &[]), Vec::<String>::new());
}

#[test]
fn unused_waiver_is_itself_a_finding() {
    let f = analyze_source(
        "crates/x/src/lib.rs",
        "pub fn ok() {} // lint: allow(nothing here to waive)\n",
    );
    assert_eq!(spans(&f, Rule::UnusedWaiver), vec![(1, false)]);
}
