//! The analyzer gate, as a test: the workspace must carry zero unwaived
//! findings, every waiver must carry a reason, and the waived inventory
//! must match the checked-in baseline. Reverting any determinism fix
//! (e.g. a BTreeMap back to a HashMap, or a Stopwatch back to a raw
//! Instant) fails this test.

use std::path::Path;

#[test]
fn workspace_has_zero_unwaived_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = vm1_analyze::analyze_workspace(&root).expect("workspace scan");
    let bad: Vec<String> = report
        .unwaived()
        .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.id(), f.message))
        .collect();
    assert!(bad.is_empty(), "unwaived findings:\n{}", bad.join("\n"));
    assert!(report.files_scanned > 50, "scan set collapsed unexpectedly");
    for f in report.waived() {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "{}:{} waived without a reason",
            f.file,
            f.line
        );
    }
}

#[test]
fn waived_inventory_matches_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = vm1_analyze::analyze_workspace(&root).expect("workspace scan");
    let baseline = std::fs::read_to_string(root.join("scripts/analyze-baseline.txt"))
        .expect("scripts/analyze-baseline.txt is checked in");
    let (missing, unexpected) = report.diff_baseline(&baseline);
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "baseline drift — stale: {missing:?}; new (regenerate deliberately): {unexpected:?}"
    );
}
