//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be resolved. This shim reimplements exactly the
//! subset of its API that the workspace's property tests use — range and
//! tuple strategies, `prop_map`/`prop_flat_map`, `Just`,
//! `collection::vec`, the `proptest!` macro with `proptest_config`, and
//! the `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros — with a
//! deterministic per-test RNG and no shrinking.
//!
//! Semantic differences from the real crate:
//!
//! * cases are generated from a fixed seed derived from the test name, so
//!   runs are reproducible (the real crate randomizes unless seeded);
//! * a failing case reports the offending input but is not shrunk;
//! * `prop_assume!` rejections retry with fresh inputs up to a bounded
//!   number of attempts.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// SplitMix64 generator used to drive all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift; bias is irrelevant at test-range sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy generates: fixed or ranged.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating a `Vec` of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Runner configuration and case driver.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Why a test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    /// Outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// The default configuration with `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property test: generates inputs from `strategy` until
    /// `config.cases` cases have been accepted, panicking on the first
    /// failure with the offending input.
    // By-value `strategy` mirrors the upstream proptest signature.
    #[allow(clippy::needless_pass_by_value)]
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: S, body: F)
    where
        S: Strategy,
        S::Value: fmt::Debug,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::new(fnv1a(name));
        let mut accepted = 0u32;
        let max_rejects = config.cases.saturating_mul(64).max(1024);
        let mut rejects = 0u32;
        while accepted < config.cases {
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match body(value) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{name}: too many prop_assume! rejections ({rejects}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!("{name}: case #{accepted} failed: {why}\n    input: {shown}")
                }
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(w) => write!(f, "rejected: {w}"),
                TestCaseError::Fail(w) => write!(f, "failed: {w}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests (shim of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    left,
                    right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(*left == *right, $($fmt)+);
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) when the
/// condition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// The glob-importable surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Strategy};
}

impl fmt::Display for TestRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TestRng({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (-4i32..5).generate(&mut rng);
            assert!((-4..5).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(1);
        let s = crate::collection::vec(0u8..10, 3..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = crate::collection::vec(0u8..10, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, -50i64..50).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::new(42);
        let mut r2 = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_surface_works(
            n in 2usize..7,
            xs in crate::collection::vec(-4i32..5, 1..5),
            f in 0.0f64..1.0,
        ) {
            prop_assume!(!xs.is_empty());
            prop_assert!((2..7).contains(&n));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(xs.len(), xs.len());
        }

        #[test]
        fn flat_map_dependent_sizes(
            (n, xs) in (1usize..5).prop_flat_map(|n| {
                (crate::Just(n), crate::collection::vec(0i32..10, n))
            })
        ) {
            prop_assert_eq!(xs.len(), n);
        }
    }
}
