//! A compact DEF-like text format for [`Design`] round-tripping.
//!
//! The paper's implementation consumes LEF/DEF via OpenAccess; the rest of
//! this workspace is in-memory, but experiments still need to snapshot and
//! reload placements (e.g. to compare optimizer variants on the identical
//! input). The format is line-oriented:
//!
//! ```text
//! VM1DEF 1
//! DESIGN aes_like
//! ARCH ClosedM1
//! CORE <num_rows> <sites_per_row>
//! PORT <name> <x_nm> <y_nm> <IN|OUT>
//! INST <name> <cell> <site> <row> <N|FN> <PLACED|FIXED>
//! NET <name> <conn> <conn> ...      # conn = P:<port> | I:<inst>:<pin>
//! END
//! ```

use crate::{Design, DesignError, NetPin};
use std::error::Error;
use std::fmt;
use vm1_geom::{Dbu, Orient, Point};
use vm1_tech::{Library, PinDir};

/// Error from [`read_def`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadDefError {
    /// Line did not match the expected grammar.
    Syntax(usize, String),
    /// Reference to an unknown cell/pin/port/instance.
    Unknown(usize, String),
    /// The library's architecture does not match the file.
    ArchMismatch(String),
    /// The reconstructed design failed validation.
    Invalid(DesignError),
}

impl fmt::Display for ReadDefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadDefError::Syntax(line, msg) => write!(f, "line {line}: syntax error: {msg}"),
            ReadDefError::Unknown(line, what) => write!(f, "line {line}: unknown {what}"),
            ReadDefError::ArchMismatch(a) => {
                write!(f, "library architecture mismatch: file has {a}")
            }
            ReadDefError::Invalid(e) => write!(f, "invalid design: {e}"),
        }
    }
}

impl Error for ReadDefError {}

/// Serializes a design to the VM1DEF text format.
#[must_use]
pub fn write_def(design: &Design) -> String {
    let mut out = String::with_capacity(64 * design.num_insts());
    out.push_str("VM1DEF 1\n");
    out.push_str(&format!("DESIGN {}\n", design.name()));
    out.push_str(&format!("ARCH {}\n", design.library().arch()));
    out.push_str(&format!(
        "CORE {} {}\n",
        design.num_rows, design.sites_per_row
    ));
    for (_, p) in design.ports() {
        let dir = if p.dir == PinDir::In { "IN" } else { "OUT" };
        out.push_str(&format!(
            "PORT {} {} {} {}\n",
            p.name, p.position.x, p.position.y, dir
        ));
    }
    for (_, i) in design.insts() {
        let cell = design.library().cell(i.cell);
        out.push_str(&format!(
            "INST {} {} {} {} {} {}\n",
            i.name,
            cell.name,
            i.site,
            i.row,
            i.orient,
            if i.fixed { "FIXED" } else { "PLACED" }
        ));
    }
    for (_, n) in design.nets() {
        out.push_str(&format!("NET {}", n.name));
        for &pin in &n.pins {
            match pin {
                NetPin::Port(p) => {
                    out.push_str(&format!(" P:{}", design.port(p).name));
                }
                NetPin::Inst(pr) => {
                    let inst = design.inst(pr.inst);
                    let pin_name = &design.library().cell(inst.cell).pins[pr.pin].name;
                    out.push_str(&format!(" I:{}:{}", inst.name, pin_name));
                }
            }
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Parses a VM1DEF file back into a [`Design`] mapped onto `library`.
///
/// # Errors
///
/// Returns [`ReadDefError`] on grammar violations, unknown references, or
/// architecture mismatch. Connectivity is re-validated after parsing.
pub fn read_def(text: &str, library: &Library) -> Result<Design, ReadDefError> {
    use std::collections::HashMap;

    let mut design: Option<Design> = None;
    let mut name = String::from("unnamed");
    let mut port_ids: HashMap<String, crate::PortId> = HashMap::new();
    let mut inst_ids: HashMap<String, crate::InstId> = HashMap::new();
    let mut core: Option<(i64, i64)> = None;

    let syntax = |ln: usize, m: &str| ReadDefError::Syntax(ln + 1, m.to_owned());

    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let kw = tok.next().unwrap_or_default();
        match kw {
            "VM1DEF" | "END" => {}
            "DESIGN" => {
                name = tok
                    .next()
                    .ok_or_else(|| syntax(ln, "DESIGN needs a name"))?
                    .to_owned();
            }
            "ARCH" => {
                let a = tok.next().ok_or_else(|| syntax(ln, "ARCH needs a value"))?;
                if a != library.arch().to_string() {
                    return Err(ReadDefError::ArchMismatch(a.to_owned()));
                }
            }
            "CORE" => {
                let rows: i64 = parse_tok(&mut tok, ln, "rows")?;
                let sites: i64 = parse_tok(&mut tok, ln, "sites")?;
                core = Some((rows, sites));
                design = Some(Design::new(&name, library.clone(), rows, sites));
            }
            "PORT" => {
                let d = design
                    .as_mut()
                    .ok_or_else(|| syntax(ln, "PORT before CORE"))?;
                let pname = tok.next().ok_or_else(|| syntax(ln, "PORT name"))?;
                let x: i64 = parse_tok(&mut tok, ln, "x")?;
                let y: i64 = parse_tok(&mut tok, ln, "y")?;
                let dir = match tok.next() {
                    Some("IN") => PinDir::In,
                    Some("OUT") => PinDir::Out,
                    _ => return Err(syntax(ln, "PORT dir must be IN|OUT")),
                };
                let id = d.add_port(pname, Point::new(Dbu(x), Dbu(y)), dir);
                port_ids.insert(pname.to_owned(), id);
            }
            "INST" => {
                let d = design
                    .as_mut()
                    .ok_or_else(|| syntax(ln, "INST before CORE"))?;
                let iname = tok.next().ok_or_else(|| syntax(ln, "INST name"))?;
                let cname = tok.next().ok_or_else(|| syntax(ln, "INST cell"))?;
                let cell = library
                    .cell_index(cname)
                    .ok_or_else(|| ReadDefError::Unknown(ln + 1, format!("cell {cname}")))?;
                let site: i64 = parse_tok(&mut tok, ln, "site")?;
                let row: i64 = parse_tok(&mut tok, ln, "row")?;
                let orient = match tok.next() {
                    Some("N") => Orient::North,
                    Some("FN") => Orient::FlippedNorth,
                    _ => return Err(syntax(ln, "INST orient must be N|FN")),
                };
                let fixed = match tok.next() {
                    Some("FIXED") => true,
                    Some("PLACED") | None => false,
                    _ => return Err(syntax(ln, "INST status must be PLACED|FIXED")),
                };
                let id = d.add_inst(iname, cell);
                d.move_inst(id, site, row, orient);
                d.inst_mut(id).fixed = fixed;
                inst_ids.insert(iname.to_owned(), id);
            }
            "NET" => {
                let d = design
                    .as_mut()
                    .ok_or_else(|| syntax(ln, "NET before CORE"))?;
                let nname = tok.next().ok_or_else(|| syntax(ln, "NET name"))?;
                let net = d.add_net(nname);
                for conn in tok {
                    if let Some(pname) = conn.strip_prefix("P:") {
                        let &pid = port_ids.get(pname).ok_or_else(|| {
                            ReadDefError::Unknown(ln + 1, format!("port {pname}"))
                        })?;
                        d.connect_port(pid, net);
                    } else if let Some(rest) = conn.strip_prefix("I:") {
                        let (iname, pin) = rest
                            .split_once(':')
                            .ok_or_else(|| syntax(ln, "conn must be I:<inst>:<pin>"))?;
                        let &iid = inst_ids.get(iname).ok_or_else(|| {
                            ReadDefError::Unknown(ln + 1, format!("inst {iname}"))
                        })?;
                        d.connect(iid, pin, net);
                    } else {
                        return Err(syntax(ln, "conn must start with P: or I:"));
                    }
                }
            }
            other => return Err(syntax(ln, &format!("unknown keyword {other}"))),
        }
    }

    let d = design.ok_or_else(|| syntax(0, "missing CORE section"))?;
    let _ = core;
    d.validate_connectivity().map_err(ReadDefError::Invalid)?;
    Ok(d)
}

fn parse_tok<'a, T: std::str::FromStr>(
    tok: &mut impl Iterator<Item = &'a str>,
    ln: usize,
    what: &str,
) -> Result<T, ReadDefError> {
    tok.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ReadDefError::Syntax(ln + 1, format!("expected {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::CellArch;

    fn sample() -> (Design, Library) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(120)
            .generate(&lib, 3);
        (d, lib)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (d, lib) = sample();
        let text = write_def(&d);
        let d2 = read_def(&text, &lib).expect("parse back");
        assert_eq!(d.name(), d2.name());
        assert_eq!(d.num_insts(), d2.num_insts());
        assert_eq!(d.num_nets(), d2.num_nets());
        assert_eq!(d.num_ports(), d2.num_ports());
        assert_eq!(d.num_rows, d2.num_rows);
        assert_eq!(d.sites_per_row, d2.sites_per_row);
        for ((_, a), (_, b)) in d.insts().zip(d2.insts()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.cell, b.cell);
            assert_eq!(a.site, b.site);
            assert_eq!(a.row, b.row);
            assert_eq!(a.orient, b.orient);
        }
        assert_eq!(d.total_hpwl(), d2.total_hpwl());
    }

    #[test]
    fn round_trip_preserves_placement_after_moves() {
        let (mut d, lib) = sample();
        d.move_inst(crate::InstId(0), 7, 1, Orient::FlippedNorth);
        d.inst_mut(crate::InstId(1)).fixed = true;
        let d2 = read_def(&write_def(&d), &lib).unwrap();
        assert_eq!(d2.inst(crate::InstId(0)).site, 7);
        assert_eq!(d2.inst(crate::InstId(0)).orient, Orient::FlippedNorth);
        assert!(d2.inst(crate::InstId(1)).fixed);
    }

    #[test]
    fn arch_mismatch_detected() {
        let (d, _) = sample();
        let open = Library::synthetic_7nm(CellArch::OpenM1);
        assert!(matches!(
            read_def(&write_def(&d), &open),
            Err(ReadDefError::ArchMismatch(_))
        ));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let bad = "VM1DEF 1\nDESIGN x\nARCH ClosedM1\nCORE 2 20\nFROB\n";
        match read_def(bad, &lib) {
            Err(ReadDefError::Syntax(5, _)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_cell_rejected() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let bad = "VM1DEF 1\nDESIGN x\nARCH ClosedM1\nCORE 2 20\nINST u0 NOCELL 0 0 N PLACED\n";
        assert!(matches!(
            read_def(bad, &lib),
            Err(ReadDefError::Unknown(5, _))
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let txt = "VM1DEF 1\n# comment\n\nDESIGN x\nARCH ClosedM1\nCORE 2 20\nEND\n";
        let d = read_def(txt, &lib).unwrap();
        assert_eq!(d.name(), "x");
        assert_eq!(d.num_insts(), 0);
    }
}
