//! Deterministic synthetic design generator.
//!
//! The paper evaluates on an ARM Cortex M0 core and three OpenCores designs
//! (aes, jpeg, vga) synthesized with a commercial flow. Those netlists are
//! not redistributable, so this module generates random-logic designs whose
//! *structural statistics* (instance count, flop ratio, fanout
//! distribution, combinational depth) match each testcase's character, at a
//! configurable scale. Everything is derived from a single `u64` seed via
//! [`SplitMix64`], so a given `(config, seed)` pair always produces the
//! identical design.

use crate::{Design, InstId, NetId};
use vm1_geom::rng::SplitMix64;
use vm1_geom::{Dbu, Point};
use vm1_tech::{Library, PinDir};

/// The four testcases of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DesignProfile {
    /// ARM Cortex M0-like: ~9.9 k instances, flop-rich control logic.
    M0,
    /// aes-like: ~12.3 k instances, XOR-heavy datapath.
    Aes,
    /// jpeg-like: ~54.6 k instances, wide datapath.
    Jpeg,
    /// vga-like: ~68.6 k instances.
    Vga,
}

impl DesignProfile {
    /// All profiles in the paper's table order.
    pub const ALL: [DesignProfile; 4] = [
        DesignProfile::M0,
        DesignProfile::Aes,
        DesignProfile::Jpeg,
        DesignProfile::Vga,
    ];

    /// Canonical lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DesignProfile::M0 => "m0",
            DesignProfile::Aes => "aes",
            DesignProfile::Jpeg => "jpeg",
            DesignProfile::Vga => "vga",
        }
    }

    /// Paper instance count (Table 2 `#Inst`).
    #[must_use]
    pub fn paper_inst_count(self) -> usize {
        match self {
            DesignProfile::M0 => 9_922,
            DesignProfile::Aes => 12_345,
            DesignProfile::Jpeg => 54_570,
            DesignProfile::Vga => 68_606,
        }
    }

    fn ff_ratio(self) -> f64 {
        match self {
            DesignProfile::M0 => 0.16,
            DesignProfile::Aes => 0.10,
            DesignProfile::Jpeg => 0.08,
            DesignProfile::Vga => 0.11,
        }
    }

    fn xor_bias(self) -> f64 {
        match self {
            DesignProfile::Aes => 2.5,
            DesignProfile::Jpeg => 1.5,
            _ => 1.0,
        }
    }
}

/// Parameters for [`GeneratorConfig::generate`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Design name.
    pub name: String,
    /// Number of standard-cell instances.
    pub n_insts: usize,
    /// Fraction of instances that are flip-flops.
    pub ff_ratio: f64,
    /// Number of primary inputs.
    pub n_pi: usize,
    /// Combinational depth (levels).
    pub depth: usize,
    /// Maximum signal-net fanout (the clock net is exempt).
    pub max_fanout: usize,
    /// Target core utilization (the paper uses 75 % for Table 2 and sweeps
    /// 80–84 % for Figure 8).
    pub target_util: f64,
    /// Relative XOR/XNOR weight (datapath-ish designs are XOR-heavy).
    pub xor_bias: f64,
}

impl GeneratorConfig {
    /// Configuration matching one of the paper's testcases at scale 0.1
    /// (≈10 % of the paper's instance count; see DESIGN.md §5).
    #[must_use]
    pub fn profile(profile: DesignProfile) -> GeneratorConfig {
        GeneratorConfig {
            name: format!("{}_like", profile.name()),
            n_insts: (profile.paper_inst_count() as f64 * 0.1) as usize,
            ff_ratio: profile.ff_ratio(),
            n_pi: 32,
            depth: 12,
            max_fanout: 8,
            target_util: 0.75,
            xor_bias: profile.xor_bias(),
        }
    }

    /// Scales the instance count relative to the *paper's* size (1.0 = the
    /// paper's full instance count).
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> GeneratorConfig {
        // `profile` already applied 0.1; recover the base via the name.
        let base = DesignProfile::ALL
            .iter()
            .find(|p| self.name.starts_with(p.name()))
            .map_or(self.n_insts * 10, |p| p.paper_inst_count());
        self.n_insts = ((base as f64 * scale) as usize).max(20);
        self
    }

    /// Overrides the target utilization.
    #[must_use]
    pub fn with_utilization(mut self, util: f64) -> GeneratorConfig {
        assert!(util > 0.1 && util < 1.0, "utilization {util} out of range");
        self.target_util = util;
        self
    }

    /// Overrides the instance count directly.
    #[must_use]
    pub fn with_insts(mut self, n: usize) -> GeneratorConfig {
        self.n_insts = n;
        self
    }

    /// Generates the design (unplaced; run the placer next).
    ///
    /// # Panics
    ///
    /// Panics if the library lacks the generated cell functions (never for
    /// [`Library::synthetic_7nm`]).
    #[must_use]
    pub fn generate(&self, library: &Library, seed: u64) -> Design {
        let mut rng = SplitMix64::new(seed);

        // ---- choose cells ----------------------------------------------
        let comb_choices = comb_cell_weights(library, self.xor_bias);
        let dff = *library.sequential().first().expect("library has a DFF"); // lint: allow(documented `# Panics` contract)
        let n_ff = ((self.n_insts as f64) * self.ff_ratio).round() as usize;
        let n_comb = self.n_insts.saturating_sub(n_ff).max(1);

        // ---- core size --------------------------------------------------
        let mut cells: Vec<usize> = Vec::with_capacity(self.n_insts);
        for _ in 0..n_comb {
            cells.push(weighted_pick(&mut rng, &comb_choices));
        }
        cells.extend(std::iter::repeat_n(dff, n_ff));
        let used_sites: i64 = cells.iter().map(|&c| library.cell(c).width_sites).sum();
        let capacity = (used_sites as f64 / self.target_util).ceil();
        // Square-ish core: S sites per row, R rows, S*sw ≈ R*rh.
        let ratio = library.tech().row_height.nm() as f64 / library.tech().site_width.nm() as f64;
        let rows = (capacity / ratio).sqrt().ceil().max(2.0) as i64;
        let sites = (capacity / rows as f64).ceil() as i64 + 2;

        let mut d = Design::new(&self.name, library.clone(), rows, sites);

        // ---- instances ---------------------------------------------------
        let insts: Vec<InstId> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| d.add_inst(&format!("u{i}"), c))
            .collect();
        let comb = &insts[..n_comb];
        let ffs = &insts[n_comb..];

        // ---- ports --------------------------------------------------------
        let core = d.core_area();
        let clk_port = d.add_port("clk", Point::new(Dbu(0), core.hi().y / 2), PinDir::In);
        let mut pis = Vec::with_capacity(self.n_pi);
        for i in 0..self.n_pi {
            let frac = (i as i64 + 1) * core.hi().y.nm() / (self.n_pi as i64 + 1);
            pis.push(d.add_port(&format!("in{i}"), Point::new(Dbu(0), Dbu(frac)), PinDir::In));
        }

        // ---- levelized wiring --------------------------------------------
        // Levels: FF outputs and PIs are level 0 sources; combinational cell
        // i gets a random level 1..=depth and may only be driven by strictly
        // lower levels (guarantees acyclicity).
        let mut level = vec![0usize; d.num_insts()];
        for &c in comb {
            level[c.0] = rng.range_usize(1, self.depth + 1);
        }

        // Driver pool: (source, level, fanout_so_far, net-once-created).
        struct Driver {
            src: Src,
            level: usize,
            fanout: usize,
            net: Option<NetId>,
        }
        #[derive(Clone, Copy)]
        enum Src {
            InstOut(InstId),
            Pi(usize), // index into pis
        }
        let mut drivers: Vec<Driver> = Vec::new();
        for (i, &pi) in pis.iter().enumerate() {
            let _ = pi;
            drivers.push(Driver {
                src: Src::Pi(i),
                level: 0,
                fanout: 0,
                net: None,
            });
        }
        for &ff in ffs {
            drivers.push(Driver {
                src: Src::InstOut(ff),
                level: 0,
                fanout: 0,
                net: None,
            });
        }
        for &c in comb {
            drivers.push(Driver {
                src: Src::InstOut(c),
                level: level[c.0],
                fanout: 0,
                net: None,
            });
        }
        // Sort drivers by level for fast "level < l" sampling: build index
        // ranges per level.
        drivers.sort_by_key(|dr| dr.level);
        let mut level_end = vec![0usize; self.depth + 2];
        for dr in &drivers {
            level_end[dr.level + 1] += 1;
        }
        for l in 1..level_end.len() {
            level_end[l] += level_end[l - 1];
        }

        let mut net_count = 0usize;
        let get_net = |d: &mut Design, drv: &mut Driver, count: &mut usize| -> NetId {
            if let Some(n) = drv.net {
                return n;
            }
            let n = d.add_net(&format!("n{count}"));
            *count += 1;
            match drv.src {
                Src::InstOut(inst) => {
                    let out = d.library().cell(d.inst(inst).cell).function.output_name();
                    d.connect(inst, out, n);
                }
                Src::Pi(i) => d.connect_port(pis[i], n),
            }
            drv.net = Some(n);
            n
        };

        // Wire every input pin of every instance.
        let mut all_inputs: Vec<(InstId, &'static str, usize)> = Vec::new();
        for &id in &insts {
            let f = d.library().cell(d.inst(id).cell).function;
            let lvl = if f.is_sequential() {
                self.depth + 1
            } else {
                level[id.0]
            };
            for &n in f.input_names() {
                all_inputs.push((id, n, lvl));
            }
        }

        let clk_net = d.add_net("clk_net");
        net_count += 1;
        d.connect_port(clk_port, clk_net);

        for (inst, pin_name, lvl) in all_inputs {
            if pin_name == "CK" {
                d.connect(inst, "CK", clk_net);
                continue;
            }
            // Candidate drivers: all with level < lvl (for FF D inputs,
            // lvl = depth+1, i.e. everything qualifies).
            let hi = level_end[lvl.min(self.depth + 1)];
            debug_assert!(hi > 0, "no drivers below level {lvl}");
            // Prefer low-fanout drivers: a few attempts to respect max_fanout.
            let mut pick = rng.range_usize(0, hi);
            for _ in 0..6 {
                if drivers[pick].fanout < self.max_fanout {
                    break;
                }
                pick = rng.range_usize(0, hi);
            }
            let net = get_net(&mut d, &mut drivers[pick], &mut net_count);
            drivers[pick].fanout += 1;
            d.connect(inst, pin_name, net);
        }

        // Dangling outputs become primary outputs.
        let mut po_count = 0usize;
        for dr in &mut drivers {
            if let Src::InstOut(inst) = dr.src {
                if dr.net.is_none() {
                    let net = get_net(&mut d, dr, &mut net_count);
                    // Spread POs along the right edge.
                    let y = Dbu((po_count as i64 * 977 + 180) % core.hi().y.nm().max(1));
                    let po = d.add_port(
                        &format!("out{po_count}"),
                        Point::new(core.hi().x, y),
                        PinDir::Out,
                    );
                    d.connect_port(po, net);
                    po_count += 1;
                    let _ = inst;
                }
            }
        }

        d
    }
}

/// `(cell index, weight)` pairs for combinational selection.
fn comb_cell_weights(library: &Library, xor_bias: f64) -> Vec<(usize, f64)> {
    let w = |name: &str, weight: f64| -> Option<(usize, f64)> {
        library.cell_index(name).map(|i| (i, weight))
    };
    [
        w("INV_X1", 12.0),
        w("INV_X2", 4.0),
        w("BUF_X1", 6.0),
        w("BUF_X2", 2.0),
        w("NAND2_X1", 16.0),
        w("NOR2_X1", 12.0),
        w("AND2_X1", 8.0),
        w("OR2_X1", 7.0),
        w("AOI21_X1", 7.0),
        w("OAI21_X1", 7.0),
        w("XOR2_X1", 5.0 * xor_bias),
        w("XNOR2_X1", 4.0 * xor_bias),
        w("MUX2_X1", 6.0),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn weighted_pick(rng: &mut SplitMix64, choices: &[(usize, f64)]) -> usize {
    let total: f64 = choices.iter().map(|(_, w)| w).sum();
    let mut r = rng.next_f64() * total;
    // Rounding can leave r marginally positive after the loop; the last
    // visited choice then wins (0 is unreachable: callers never pass an
    // empty choice list).
    let mut pick = 0;
    for &(c, w) in choices {
        pick = c;
        r -= w;
        if r <= 0.0 {
            break;
        }
    }
    pick
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_tech::{CellArch, Function};

    fn tiny(seed: u64) -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(300)
            .generate(&lib, seed)
    }

    #[test]
    fn generates_connected_design() {
        let d = tiny(1);
        assert_eq!(d.num_insts(), 300);
        d.validate_connectivity().expect("valid connectivity");
        assert!(d.num_nets() > 250);
    }

    #[test]
    fn deterministic_for_equal_seed() {
        let a = tiny(7);
        let b = tiny(7);
        assert_eq!(a.num_nets(), b.num_nets());
        for (i, (na, nb)) in a.nets().zip(b.nets()).enumerate() {
            assert_eq!(na.1.pins, nb.1.pins, "net {i} differs");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny(1);
        let b = tiny(2);
        let diff = a
            .nets()
            .zip(b.nets())
            .filter(|(x, y)| x.1.pins != y.1.pins)
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn ff_ratio_respected() {
        let d = tiny(3);
        let ffs = d
            .insts()
            .filter(|(_, i)| d.library().cell(i.cell).function.is_sequential())
            .count();
        let ratio = ffs as f64 / d.num_insts() as f64;
        assert!((ratio - 0.10).abs() < 0.02, "ff ratio {ratio}");
    }

    #[test]
    fn fanout_capped_except_clock() {
        let d = tiny(4);
        for (id, net) in d.nets() {
            if net.name == "clk_net" {
                continue;
            }
            assert!(
                net.pins.len() <= 1 + 8 + 4, // driver + max_fanout slack
                "net {} fanout {}",
                net.name,
                net.pins.len()
            );
            let _ = id;
        }
    }

    #[test]
    fn clock_net_reaches_all_ffs() {
        let d = tiny(5);
        let clk = d.nets().find(|(_, n)| n.name == "clk_net").unwrap().0;
        let ff_count = d
            .insts()
            .filter(|(_, i)| d.library().cell(i.cell).function.is_sequential())
            .count();
        // clock net = clk port + one CK pin per FF
        assert_eq!(d.net(clk).pins.len(), ff_count + 1);
    }

    #[test]
    fn utilization_close_to_target() {
        let d = tiny(6);
        let util = d.utilization();
        assert!((0.60..=0.80).contains(&util), "utilization {util}");
    }

    #[test]
    fn utilization_override() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let d = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(300)
            .with_utilization(0.84)
            .generate(&lib, 1);
        assert!(
            (0.70..=0.88).contains(&d.utilization()),
            "{}",
            d.utilization()
        );
    }

    #[test]
    fn profiles_scale() {
        let cfg = GeneratorConfig::profile(DesignProfile::Jpeg).with_scale(0.01);
        assert_eq!(cfg.n_insts, 545);
        let cfg2 = GeneratorConfig::profile(DesignProfile::M0);
        assert_eq!(cfg2.n_insts, 992);
    }

    #[test]
    fn xor_bias_shifts_mix() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let count_xor = |d: &Design| {
            d.insts()
                .filter(|(_, i)| {
                    matches!(
                        d.library().cell(i.cell).function,
                        Function::Xor2 | Function::Xnor2
                    )
                })
                .count()
        };
        let aes = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(1000)
            .generate(&lib, 9);
        let vga = GeneratorConfig::profile(DesignProfile::Vga)
            .with_insts(1000)
            .generate(&lib, 9);
        assert!(count_xor(&aes) > count_xor(&vga));
    }

    #[test]
    fn openm1_library_works_too() {
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, 11);
        d.validate_connectivity().unwrap();
    }
}
