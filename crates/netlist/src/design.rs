use std::error::Error;
use std::fmt;
use vm1_geom::{Dbu, Interval, Orient, Point, Rect};
use vm1_tech::{Library, MacroPin, PinDir};

/// Handle to an instance of a [`Design`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub usize);

/// Handle to a net of a [`Design`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

/// Handle to a top-level port of a [`Design`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

/// A specific pin occurrence: pin `pin` (index into the macro's pin list)
/// of instance `inst`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinRef {
    /// Owning instance.
    pub inst: InstId,
    /// Index into the instance's macro `pins` array.
    pub pin: usize,
}

/// One connection point of a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetPin {
    /// An instance pin.
    Inst(PinRef),
    /// A top-level port.
    Port(PortId),
}

/// A placed standard-cell instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Instance name (unique in the design).
    pub name: String,
    /// Index of the macro in the design's library.
    pub cell: usize,
    /// X position of the left cell edge, in sites.
    pub site: i64,
    /// Placement row index.
    pub row: i64,
    /// Orientation.
    pub orient: Orient,
    /// Fixed instances may not be moved by any optimization.
    pub fixed: bool,
    /// Net connected to each macro pin (parallel to the macro's `pins`).
    pub pin_nets: Vec<Option<NetId>>,
}

/// A top-level design port with a fixed location on the die boundary.
#[derive(Clone, Debug)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Absolute location.
    pub position: Point,
    /// Direction as seen from outside (an input port drives a net).
    pub dir: PinDir,
    /// Connected net.
    pub net: Option<NetId>,
}

/// A signal net.
#[derive(Clone, Debug, Default)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Connection points. By convention the driver (cell output pin or
    /// input port) is listed first when known.
    pub pins: Vec<NetPin>,
}

/// Error raised by [`Design`] validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DesignError {
    /// Two instances occupy a common site.
    Overlap(String, String),
    /// An instance lies outside the core area.
    OutOfCore(String),
    /// A net has no driver or multiple drivers.
    BadDriver(String),
    /// A pin references a missing net or vice versa.
    Dangling(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Overlap(a, b) => write!(f, "instances {a} and {b} overlap"),
            DesignError::OutOfCore(a) => write!(f, "instance {a} outside core area"),
            DesignError::BadDriver(n) => write!(f, "net {n} has no unique driver"),
            DesignError::Dangling(s) => write!(f, "dangling connection: {s}"),
        }
    }
}

impl Error for DesignError {}

/// A complete design: library reference, netlist, and placement state.
///
/// # Examples
///
/// ```
/// use vm1_netlist::Design;
/// use vm1_tech::{CellArch, Library};
///
/// let lib = Library::synthetic_7nm(CellArch::ClosedM1);
/// let mut d = Design::new("demo", lib, 4, 100);
/// let inv = d.library().cell_index("INV_X1").unwrap();
/// let a = d.add_inst("u1", inv);
/// let b = d.add_inst("u2", inv);
/// let n = d.add_net("n1");
/// d.connect(a, "ZN", n);
/// d.connect(b, "A", n);
/// assert_eq!(d.net(n).pins.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Design {
    name: String,
    library: Library,
    insts: Vec<Instance>,
    nets: Vec<Net>,
    ports: Vec<Port>,
    /// Number of placement rows in the core.
    pub num_rows: i64,
    /// Number of sites per row.
    pub sites_per_row: i64,
}

impl Design {
    /// Creates an empty design with a core of `num_rows` × `sites_per_row`.
    #[must_use]
    pub fn new(name: &str, library: Library, num_rows: i64, sites_per_row: i64) -> Design {
        Design {
            name: name.to_owned(),
            library,
            insts: Vec::new(),
            nets: Vec::new(),
            ports: Vec::new(),
            num_rows,
            sites_per_row,
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The standard-cell library this design is mapped to.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Core area rectangle in nanometres.
    #[must_use]
    pub fn core_area(&self) -> Rect {
        let t = self.library.tech();
        Rect::new(
            Point::ORIGIN,
            Point::new(t.site_to_x(self.sites_per_row), t.row_to_y(self.num_rows)),
        )
    }

    /// Adds an unplaced instance of library cell `cell`; returns its id.
    pub fn add_inst(&mut self, name: &str, cell: usize) -> InstId {
        let n_pins = self.library.cell(cell).pins.len();
        let id = InstId(self.insts.len());
        self.insts.push(Instance {
            name: name.to_owned(),
            cell,
            site: 0,
            row: 0,
            orient: Orient::North,
            fixed: false,
            pin_nets: vec![None; n_pins],
        });
        id
    }

    /// Adds an empty net; returns its id.
    pub fn add_net(&mut self, name: &str) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net {
            name: name.to_owned(),
            pins: Vec::new(),
        });
        id
    }

    /// Adds a port at `position`.
    pub fn add_port(&mut self, name: &str, position: Point, dir: PinDir) -> PortId {
        let id = PortId(self.ports.len());
        self.ports.push(Port {
            name: name.to_owned(),
            position,
            dir,
            net: None,
        });
        id
    }

    /// Connects instance pin `pin_name` of `inst` to `net`.
    ///
    /// # Panics
    ///
    /// Panics if the pin name does not exist on the instance's macro or the
    /// pin is already connected.
    pub fn connect(&mut self, inst: InstId, pin_name: &str, net: NetId) {
        let cell = self.insts[inst.0].cell;
        let pin = self
            .library
            .cell(cell)
            .pin_index(pin_name)
            .unwrap_or_else(|| panic!("no pin {pin_name} on {}", self.library.cell(cell).name)); // lint: allow(documented `# Panics` contract)
        assert!(
            self.insts[inst.0].pin_nets[pin].is_none(),
            "pin {pin_name} of {} already connected",
            self.insts[inst.0].name
        );
        self.insts[inst.0].pin_nets[pin] = Some(net);
        self.nets[net.0]
            .pins
            .push(NetPin::Inst(PinRef { inst, pin }));
    }

    /// Connects a port to a net.
    ///
    /// # Panics
    ///
    /// Panics if the port is already connected.
    pub fn connect_port(&mut self, port: PortId, net: NetId) {
        assert!(
            self.ports[port.0].net.is_none(),
            "port {} already connected",
            self.ports[port.0].name
        );
        self.ports[port.0].net = Some(net);
        self.nets[net.0].pins.push(NetPin::Port(port));
    }

    /// Number of instances.
    #[must_use]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of ports.
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Instance by id.
    #[must_use]
    pub fn inst(&self, id: InstId) -> &Instance {
        &self.insts[id.0]
    }

    /// Mutable instance by id.
    #[must_use]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Instance {
        &mut self.insts[id.0]
    }

    /// Net by id.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Port by id.
    #[must_use]
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id.0]
    }

    /// Iterator over `(InstId, &Instance)`.
    pub fn insts(&self) -> impl Iterator<Item = (InstId, &Instance)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId(i), inst))
    }

    /// Iterator over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i), n))
    }

    /// Iterator over `(PortId, &Port)`.
    pub fn ports(&self) -> impl Iterator<Item = (PortId, &Port)> {
        self.ports.iter().enumerate().map(|(i, p)| (PortId(i), p))
    }

    /// The macro pin behind a [`PinRef`].
    #[must_use]
    pub fn macro_pin(&self, pr: PinRef) -> &MacroPin {
        let inst = &self.insts[pr.inst.0];
        &self.library.cell(inst.cell).pins[pr.pin]
    }

    /// Moves an instance (no legality check; use [`Design::validate_placement`]).
    pub fn move_inst(&mut self, id: InstId, site: i64, row: i64, orient: Orient) {
        let inst = &mut self.insts[id.0];
        inst.site = site;
        inst.row = row;
        inst.orient = orient;
    }

    /// Absolute lower-left corner of an instance, in nanometres.
    #[must_use]
    pub fn inst_origin(&self, id: InstId) -> Point {
        let t = self.library.tech();
        let inst = &self.insts[id.0];
        Point::new(t.site_to_x(inst.site), t.row_to_y(inst.row))
    }

    /// Absolute outline rectangle of an instance.
    #[must_use]
    pub fn inst_rect(&self, id: InstId) -> Rect {
        let inst = &self.insts[id.0];
        let cell = self.library.cell(inst.cell);
        let origin = self.inst_origin(id);
        Rect::new(origin, origin + Point::new(cell.width, cell.height))
    }

    /// Absolute centre position of a pin (the MILP's `(x_c + x_p, y_c + y_p)`).
    #[must_use]
    pub fn pin_position(&self, pr: PinRef) -> Point {
        let inst = &self.insts[pr.inst.0];
        let cell = self.library.cell(inst.cell);
        let pin = &cell.pins[pr.pin];
        let origin = self.inst_origin(pr.inst);
        Point::new(
            origin.x + pin.x_center(inst.orient, cell.width),
            origin.y + pin.y_center(),
        )
    }

    /// Absolute x-extent of a pin shape (the MILP's
    /// `[x_c + x_min,p, x_c + x_max,p]` used for OpenM1 overlap).
    #[must_use]
    pub fn pin_x_range(&self, pr: PinRef) -> Interval {
        let inst = &self.insts[pr.inst.0];
        let cell = self.library.cell(inst.cell);
        let pin = &cell.pins[pr.pin];
        let origin = self.inst_origin(pr.inst);
        pin.x_range(inst.orient, cell.width).shifted(origin.x)
    }

    /// Absolute position of any net connection point.
    #[must_use]
    pub fn net_pin_position(&self, np: NetPin) -> Point {
        match np {
            NetPin::Inst(pr) => self.pin_position(pr),
            NetPin::Port(p) => self.ports[p.0].position,
        }
    }

    /// Half-perimeter wirelength of one net (constraint (2) of the paper).
    #[must_use]
    pub fn net_hpwl(&self, id: NetId) -> Dbu {
        let positions = self.nets[id.0]
            .pins
            .iter()
            .map(|&p| self.net_pin_position(p));
        Rect::bounding_box(positions).map_or(Dbu::ZERO, Rect::half_perimeter)
    }

    /// Total HPWL over all nets (β = 1 for every net, as in the paper's
    /// experiments).
    #[must_use]
    pub fn total_hpwl(&self) -> Dbu {
        (0..self.nets.len()).map(|i| self.net_hpwl(NetId(i))).sum()
    }

    /// Core utilization: occupied sites / available sites.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let used: i64 = self
            .insts
            .iter()
            .map(|i| self.library.cell(i.cell).width_sites)
            .sum();
        used as f64 / (self.num_rows * self.sites_per_row) as f64
    }

    /// The driver connection of a net, if exactly one exists.
    #[must_use]
    pub fn net_driver(&self, id: NetId) -> Option<NetPin> {
        let mut driver = None;
        for &np in &self.nets[id.0].pins {
            let is_driver = match np {
                NetPin::Inst(pr) => self.macro_pin(pr).dir == PinDir::Out,
                NetPin::Port(p) => self.ports[p.0].dir == PinDir::In,
            };
            if is_driver {
                if driver.is_some() {
                    return None;
                }
                driver = Some(np);
            }
        }
        driver
    }

    /// Checks structural netlist invariants (unique drivers, no dangling
    /// references).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_connectivity(&self) -> Result<(), DesignError> {
        for (i, net) in self.nets.iter().enumerate() {
            if net.pins.is_empty() {
                return Err(DesignError::Dangling(format!("net {} empty", net.name)));
            }
            if self.net_driver(NetId(i)).is_none() {
                return Err(DesignError::BadDriver(net.name.clone()));
            }
        }
        for inst in &self.insts {
            let cell = self.library.cell(inst.cell);
            for (p, net) in inst.pin_nets.iter().enumerate() {
                if cell.pins[p].dir == PinDir::Power {
                    continue;
                }
                if let Some(n) = net {
                    if n.0 >= self.nets.len() {
                        return Err(DesignError::Dangling(format!(
                            "{}/{} -> missing net",
                            inst.name, cell.pins[p].name
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks placement legality: instances inside the core, site-aligned
    /// by construction, and no two instances sharing a site.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate_placement(&self) -> Result<(), DesignError> {
        // Ordered by row so "the first violated invariant" is the same
        // violation on every run (a hash map here made the reported
        // overlap hash-order-dependent).
        let mut rows: std::collections::BTreeMap<i64, Vec<(i64, i64, usize)>> =
            std::collections::BTreeMap::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let w = self.library.cell(inst.cell).width_sites;
            if inst.row < 0
                || inst.row >= self.num_rows
                || inst.site < 0
                || inst.site + w > self.sites_per_row
            {
                return Err(DesignError::OutOfCore(inst.name.clone()));
            }
            rows.entry(inst.row)
                .or_default()
                .push((inst.site, inst.site + w, i));
        }
        for spans in rows.values_mut() {
            spans.sort_unstable();
            for w in spans.windows(2) {
                if w[0].1 > w[1].0 {
                    return Err(DesignError::Overlap(
                        self.insts[w[0].2].name.clone(),
                        self.insts[w[1].2].name.clone(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// All nets that touch instance `id`.
    #[must_use]
    pub fn inst_nets(&self, id: InstId) -> Vec<NetId> {
        let mut out: Vec<NetId> = self.insts[id.0]
            .pin_nets
            .iter()
            .filter_map(|n| *n)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_tech::CellArch;

    fn small_design() -> Design {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("t", lib, 4, 60);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let nand = d.library().cell_index("NAND2_X1").unwrap();
        let u1 = d.add_inst("u1", inv);
        let u2 = d.add_inst("u2", nand);
        let u3 = d.add_inst("u3", inv);
        let pi = d.add_port("in1", Point::new(Dbu(0), Dbu(0)), PinDir::In);
        let po = d.add_port("out1", Point::new(Dbu(2880), Dbu(1440)), PinDir::Out);
        let n0 = d.add_net("n0");
        d.connect_port(pi, n0);
        d.connect(u1, "A", n0);
        let n1 = d.add_net("n1");
        d.connect(u1, "ZN", n1);
        d.connect(u2, "A", n1);
        let n2 = d.add_net("n2");
        d.connect(u2, "ZN", n2);
        d.connect(u3, "A", n2);
        d.connect(u2, "B", n0);
        let n3 = d.add_net("n3");
        d.connect(u3, "ZN", n3);
        d.connect_port(po, n3);
        d.move_inst(u1, 0, 0, Orient::North);
        d.move_inst(u2, 10, 1, Orient::North);
        d.move_inst(u3, 20, 2, Orient::FlippedNorth);
        d
    }

    #[test]
    fn construction_and_queries() {
        let d = small_design();
        assert_eq!(d.num_insts(), 3);
        assert_eq!(d.num_nets(), 4);
        assert_eq!(d.num_ports(), 2);
        assert!(d.validate_connectivity().is_ok());
        assert!(d.validate_placement().is_ok());
        assert!(d.utilization() > 0.0 && d.utilization() < 1.0);
    }

    #[test]
    fn pin_positions_respect_placement_and_flip() {
        let d = small_design();
        let u1 = InstId(0);
        let inv = d.library().cell(d.inst(u1).cell);
        let a_idx = inv.pin_index("A").unwrap();
        let p = d.pin_position(PinRef {
            inst: u1,
            pin: a_idx,
        });
        // u1 at site 0 row 0: pin A at col 1 centre = 72.
        assert_eq!(p.x, Dbu(72));
        // u3 flipped at site 20: A col 1 -> flipped to width-72 = 192-72=120.
        let u3 = InstId(2);
        let p3 = d.pin_position(PinRef {
            inst: u3,
            pin: a_idx,
        });
        assert_eq!(p3.x, Dbu(20 * 48 + 120));
        assert_eq!(p3.y, d.library().tech().row_to_y(2) + Dbu(180));
    }

    #[test]
    fn hpwl_matches_hand_computation() {
        let d = small_design();
        // n1: u1.ZN (site 0, col 2 => x=120, y=180) to u2.A (site 10 col 1 => 480+72=552, y=360+180=540)
        let n1 = NetId(2 - 1);
        let hpwl = d.net_hpwl(n1);
        assert_eq!(hpwl, Dbu((552 - 120) + (540 - 180)));
        assert_eq!(
            d.total_hpwl(),
            (0..d.num_nets()).map(|i| d.net_hpwl(NetId(i))).sum()
        );
    }

    #[test]
    fn overlap_detection() {
        let mut d = small_design();
        d.move_inst(InstId(1), 2, 0, Orient::North); // INV_X1 at 0 is 4 sites wide
        assert!(matches!(
            d.validate_placement(),
            Err(DesignError::Overlap(_, _))
        ));
        d.move_inst(InstId(1), 4, 0, Orient::North); // abutment is legal
        assert!(d.validate_placement().is_ok());
    }

    /// Regression for determinism rule D1: with overlaps in several rows,
    /// `validate_placement` must always report the lowest-row, lowest-site
    /// violation. The old `HashMap` grouping reported whichever row the
    /// hasher visited first.
    #[test]
    fn overlap_report_is_lowest_row_first() {
        let mut d = small_design();
        // Overlap in row 2 (u3 on itself is impossible; pile u2 onto u3)...
        d.move_inst(InstId(1), 20, 2, Orient::North);
        // ...and another overlap in row 0 (u1 sits at site 0, width 4).
        let inv = d.library().cell_index("INV_X1").unwrap();
        let u4 = d.add_inst("u4", inv);
        d.move_inst(u4, 2, 0, Orient::North);
        for _ in 0..4 {
            match d.validate_placement() {
                Err(DesignError::Overlap(a, b)) => {
                    assert_eq!((a.as_str(), b.as_str()), ("u1", "u4"));
                }
                other => panic!("expected overlap, got {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_core_detection() {
        let mut d = small_design();
        d.move_inst(InstId(0), 58, 0, Orient::North); // width 4 > 60-58
        assert!(matches!(
            d.validate_placement(),
            Err(DesignError::OutOfCore(_))
        ));
        d.move_inst(InstId(0), 0, -1, Orient::North);
        assert!(matches!(
            d.validate_placement(),
            Err(DesignError::OutOfCore(_))
        ));
    }

    #[test]
    fn driver_identification() {
        let d = small_design();
        // n0 is driven by the input port.
        assert!(matches!(d.net_driver(NetId(0)), Some(NetPin::Port(_))));
        // n1 is driven by u1.ZN.
        match d.net_driver(NetId(1)) {
            Some(NetPin::Inst(pr)) => {
                assert_eq!(pr.inst, InstId(0));
                assert_eq!(d.macro_pin(pr).name, "ZN");
            }
            other => panic!("unexpected driver {other:?}"),
        }
    }

    #[test]
    fn bad_driver_detected() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("bad", lib, 2, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let u1 = d.add_inst("u1", inv);
        let n = d.add_net("floating");
        d.connect(u1, "A", n); // no driver
        assert!(matches!(
            d.validate_connectivity(),
            Err(DesignError::BadDriver(_))
        ));
    }

    #[test]
    fn inst_nets_dedups() {
        let d = small_design();
        let nets = d.inst_nets(InstId(1)); // u2: A->n1, B->n0, ZN->n2
        assert_eq!(nets, vec![NetId(0), NetId(1), NetId(2)]);
    }

    #[test]
    fn pin_x_range_shifts_with_instance() {
        let d = small_design();
        let u1 = InstId(0);
        let inv = d.library().cell(d.inst(u1).cell);
        let zn = inv.pin_index("ZN").unwrap();
        let r0 = d.pin_x_range(PinRef { inst: u1, pin: zn });
        let mut d2 = d.clone();
        d2.move_inst(u1, 5, 0, Orient::North);
        let r1 = d2.pin_x_range(PinRef { inst: u1, pin: zn });
        assert_eq!(r1.lo() - r0.lo(), Dbu(5 * 48));
        assert_eq!(r1.len(), r0.len());
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("x", lib, 2, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let u1 = d.add_inst("u1", inv);
        let n1 = d.add_net("n1");
        let n2 = d.add_net("n2");
        d.connect(u1, "A", n1);
        d.connect(u1, "A", n2);
    }
}
