//! Design database for the vm1dp workspace: instances, nets, ports,
//! placement rows, plus a deterministic synthetic-netlist generator and a
//! simple DEF-style text format.
//!
//! The paper's flow reads LEF/DEF through OpenAccess and operates on
//! post-route Innovus databases; this crate provides the equivalent
//! in-memory structure the rest of the workspace (placer, router, MILP
//! optimizer, timer) operates on:
//!
//! * [`Design`] — the netlist plus placement state. Coordinates are
//!   site/row indices (placement is always site-aligned); absolute
//!   nanometre positions derive from the [`vm1_tech::Technology`].
//! * [`generator`] — seeded random designs with the size/shape profiles of
//!   the paper's four testcases (`m0`, `aes`, `jpeg`, `vga`).
//! * [`io`] — a compact DEF-like serialization with full round-trip
//!   support.
//!
//! # Examples
//!
//! ```
//! use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let cfg = GeneratorConfig::profile(DesignProfile::M0).with_scale(0.02);
//! let design = cfg.generate(&lib, 42);
//! assert!(design.num_insts() > 100);
//! design.validate_connectivity().unwrap();
//! ```

#![warn(missing_docs)]

mod design;
pub mod generator;
pub mod io;

pub use design::{Design, DesignError, InstId, Instance, Net, NetId, NetPin, PinRef, Port, PortId};
