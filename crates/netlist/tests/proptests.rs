//! Property-based tests of the generator and the DEF round trip.

use proptest::prelude::*;
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::io::{read_def, write_def};
use vm1_netlist::NetPin;
use vm1_place::{place, PlaceConfig};
use vm1_tech::{CellArch, Library, PinDir};

fn arch_from(idx: u8) -> CellArch {
    [CellArch::ClosedM1, CellArch::OpenM1, CellArch::Conv12T][idx as usize % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_designs_are_structurally_valid(
        a in 0u8..3,
        n in 50usize..400,
        ff in 0.05f64..0.25,
        util in 0.5f64..0.85,
        seed in 0u64..10_000,
    ) {
        let lib = Library::synthetic_7nm(arch_from(a));
        let mut cfg = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(n)
            .with_utilization(util);
        cfg.ff_ratio = ff;
        let d = cfg.generate(&lib, seed);
        prop_assert!(d.validate_connectivity().is_ok());
        // Every net has exactly one driver.
        for (id, _) in d.nets() {
            prop_assert!(d.net_driver(id).is_some());
        }
        // Every signal input pin of every instance is connected.
        for (_, inst) in d.insts() {
            let cell = d.library().cell(inst.cell);
            for (k, pin) in cell.pins.iter().enumerate() {
                if pin.dir == PinDir::In {
                    prop_assert!(inst.pin_nets[k].is_some(), "dangling input");
                }
            }
        }
        // Core capacity is sufficient.
        prop_assert!(d.utilization() <= 1.0);
    }

    #[test]
    fn def_round_trip_is_lossless(
        a in 0u8..3,
        n in 50usize..250,
        seed in 0u64..10_000,
    ) {
        let arch = arch_from(a);
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let text = write_def(&d);
        let d2 = read_def(&text, &lib).expect("parse");
        prop_assert_eq!(d.num_insts(), d2.num_insts());
        prop_assert_eq!(d.num_nets(), d2.num_nets());
        prop_assert_eq!(d.total_hpwl(), d2.total_hpwl());
        for ((_, x), (_, y)) in d.insts().zip(d2.insts()) {
            prop_assert_eq!(x.site, y.site);
            prop_assert_eq!(x.row, y.row);
            prop_assert_eq!(x.orient, y.orient);
            prop_assert_eq!(x.cell, y.cell);
        }
        for ((_, x), (_, y)) in d.nets().zip(d2.nets()) {
            prop_assert_eq!(&x.pins, &y.pins);
        }
        // Second round trip is byte-identical (canonical form).
        prop_assert_eq!(text, write_def(&d2));
    }

    #[test]
    fn nets_have_at_most_one_port_driver(
        n in 50usize..200,
        seed in 0u64..10_000,
    ) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let d = GeneratorConfig::profile(DesignProfile::Jpeg)
            .with_insts(n)
            .generate(&lib, seed);
        for (_, net) in d.nets() {
            let drivers = net
                .pins
                .iter()
                .filter(|&&p| match p {
                    NetPin::Inst(pr) => d.macro_pin(pr).dir == PinDir::Out,
                    NetPin::Port(pid) => d.port(pid).dir == PinDir::In,
                })
                .count();
            prop_assert_eq!(drivers, 1);
        }
    }
}
