//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be resolved. This shim reimplements the subset
//! of its API that the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size` / `measurement_time`, and `Bencher::iter` — with a
//! simple min/mean/max timing loop instead of criterion's statistical
//! analysis. Benches compile and produce honest wall-clock numbers; they
//! do not produce HTML reports or regression detection.

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement backends (only wall-clock exists in the shim).
pub mod measurement {
    /// Wall-clock time measurement.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Per-benchmark timing driver handed to the `bench_function` closure.
pub struct Bencher {
    samples: usize,
    budget: Duration,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `f` over the configured number of samples (stopping early
    /// when the measurement-time budget runs out).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup pass.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.timings.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        budget,
        timings: Vec::new(),
    };
    f(&mut b);
    if b.timings.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.timings.iter().min().copied().unwrap_or_default();
    let max = b.timings.iter().max().copied().unwrap_or_default();
    let mean = b.timings.iter().sum::<Duration>() / b.timings.len() as u32;
    println!(
        "{name:<40} [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.timings.len()
    );
}

/// The benchmark registry/driver (shim of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_, measurement::WallTime> {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
            _measurement: PhantomData,
        }
    }
}

/// A group of related benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the per-benchmark measurement-time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups (shim of
/// `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_chaining_works() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        g.bench_function("noop", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert!(fmt_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(500)).ends_with(" s"));
    }
}
