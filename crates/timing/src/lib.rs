//! Static timing analysis and power estimation for the vm1dp workspace.
//!
//! The paper reports WNS and total power for every optimized design
//! (Table 2). This crate provides the corresponding estimates:
//!
//! * **STA** ([`analyze`]) — a lumped single-arc model: cell delay
//!   `intrinsic + R_drive · C_load`, wire delay from an Elmore-style
//!   estimate over the routed (or HPWL-estimated) net RC, ideal clock,
//!   setup-checked flop endpoints. Units are ps / kΩ / fF.
//! * **Power** ([`power`]) — dynamic switching (`α · C · V² · f`) +
//!   cell-internal energy + leakage, in mW.
//! * [`min_clock_period`] — used by the flow to pick a clock so the initial
//!   design closes timing (WNS ≈ 0), mirroring the paper's testcases.
//!
//! # Examples
//!
//! ```
//! use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
//! use vm1_place::{place, PlaceConfig};
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let mut d = GeneratorConfig::profile(DesignProfile::M0)
//!     .with_insts(100)
//!     .generate(&lib, 1);
//! place(&mut d, &PlaceConfig::default(), 1);
//! let period = vm1_timing::min_clock_period(&d, None).unwrap() * 1.02;
//! let report = vm1_timing::analyze(&d, None, period).unwrap();
//! assert!(report.wns_ps >= 0.0);
//! ```

#![warn(missing_docs)]

mod characterize;
mod power;
mod rc;
mod sta;

pub use characterize::{pin_extension_study, worst_delay_delta_ps, PinExtensionStudy};
pub use power::{power, PowerReport};
pub use rc::net_wire_cap_ff;
pub use sta::{analyze, min_clock_period, net_slacks, TimingError, TimingReport};
