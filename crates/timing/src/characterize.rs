//! Library-characterization study of direct vertical M1 routing
//! (the paper's §6 / footnote 6).
//!
//! A dM1 route extends a ClosedM1 cell's M1 pin shape beyond the cell
//! boundary, which adds a little capacitance to the pin and could in
//! principle invalidate the cell's characterized timing. The paper
//! modified pin shapes by 32 nm in the ASAP7 PDK, re-extracted, and
//! measured ≤ 0.1 ps delay/slew impact — concluding the effect is
//! negligible. This module reproduces that study on the synthetic
//! libraries with the lumped timing model.

use vm1_geom::Dbu;
use vm1_tech::{Layer, Library};

/// Result of extending one cell's pin by a fixed length.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PinExtensionStudy {
    /// Extra pin capacitance from the extension (fF).
    pub added_cap_ff: f64,
    /// Resulting unloaded-delay increase (ps).
    pub delay_delta_ps: f64,
    /// Delay increase relative to the cell's intrinsic delay.
    pub relative_delta: f64,
}

/// Evaluates the timing impact of lengthening every cell's output pin by
/// `extension` (the paper uses 32 nm), per cell.
///
/// Returns `(cell name, study)` pairs in library order.
#[must_use]
pub fn pin_extension_study(library: &Library, extension: Dbu) -> Vec<(String, PinExtensionStudy)> {
    let cap_per_nm = library.tech().electrical.layer_cap[Layer::M1.index()];
    library
        .cells()
        .iter()
        .map(|cell| {
            let added_cap_ff = extension.nm() as f64 * cap_per_nm;
            let delay_delta_ps = cell.timing.drive_res * added_cap_ff;
            (
                cell.name.clone(),
                PinExtensionStudy {
                    added_cap_ff,
                    delay_delta_ps,
                    relative_delta: delay_delta_ps / cell.timing.intrinsic_ps,
                },
            )
        })
        .collect()
}

/// The worst delay increase across the library (ps).
#[must_use]
pub fn worst_delay_delta_ps(library: &Library, extension: Dbu) -> f64 {
    pin_extension_study(library, extension)
        .iter()
        .map(|(_, s)| s.delay_delta_ps)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_tech::CellArch;

    #[test]
    fn paper_footnote_32nm_extension_is_negligible() {
        // Paper: "increase the pin length by 32nm … delay and slew impacts
        // … are negligible (≤ 0.1 ps)".
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let worst = worst_delay_delta_ps(&lib, Dbu(32));
        assert!(worst <= 0.1, "worst delta {worst} ps must be ≤ 0.1 ps");
        assert!(worst > 0.0);
    }

    #[test]
    fn study_covers_every_cell_and_scales_with_extension() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let s32 = pin_extension_study(&lib, Dbu(32));
        let s64 = pin_extension_study(&lib, Dbu(64));
        assert_eq!(s32.len(), lib.cells().len());
        for ((n1, a), (n2, b)) in s32.iter().zip(&s64) {
            assert_eq!(n1, n2);
            assert!((b.added_cap_ff - 2.0 * a.added_cap_ff).abs() < 1e-12);
            assert!(b.delay_delta_ps > a.delay_delta_ps);
            assert!(a.relative_delta < 0.05, "{n1}: {:.4}", a.relative_delta);
        }
    }

    #[test]
    fn stronger_cells_are_less_sensitive() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let s = pin_extension_study(&lib, Dbu(32));
        let x1 = s.iter().find(|(n, _)| n == "INV_X1").unwrap().1;
        let x2 = s.iter().find(|(n, _)| n == "INV_X2").unwrap().1;
        assert!(x2.delay_delta_ps < x1.delay_delta_ps);
    }
}
