//! Switching + internal + leakage power estimation.

use crate::rc::net_load_ff;
use vm1_netlist::Design;
use vm1_route::RouteResult;

/// Result of [`power`], in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerReport {
    /// Net-switching power.
    pub switching_mw: f64,
    /// Cell-internal power.
    pub internal_mw: f64,
    /// Leakage power.
    pub leakage_mw: f64,
}

impl PowerReport {
    /// Total power in mW (the paper's "Power" column).
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.switching_mw + self.internal_mw + self.leakage_mw
    }
}

/// Estimates design power at clock period `clock_period_ps`.
///
/// Switching power is `α · C_net · V² · f` summed over nets (µW with
/// fF · V² · GHz), internal power is the per-cell toggle energy at the same
/// activity, leakage is summed from the library.
#[must_use]
pub fn power(design: &Design, routes: Option<&RouteResult>, clock_period_ps: f64) -> PowerReport {
    let e = &design.library().tech().electrical;
    let f_ghz = if clock_period_ps > 0.0 {
        1000.0 / clock_period_ps
    } else {
        0.0
    };
    let vdd2 = e.vdd * e.vdd;

    let mut switching_uw = 0.0;
    for (id, net) in design.nets() {
        // The clock toggles every cycle (activity 1); data nets at α.
        let activity = if net.name == "clk_net" {
            1.0
        } else {
            e.activity
        };
        switching_uw += activity * net_load_ff(design, routes, id) * vdd2 * f_ghz;
    }

    let mut internal_uw = 0.0;
    let mut leakage_nw = 0.0;
    for (_, inst) in design.insts() {
        let cell = design.library().cell(inst.cell);
        let activity = if cell.function.is_sequential() {
            0.5
        } else {
            e.activity
        };
        internal_uw += activity * cell.timing.internal_fj * f_ghz;
        leakage_nw += cell.timing.leakage_nw;
    }

    PowerReport {
        switching_mw: switching_uw / 1000.0,
        internal_mw: internal_uw / 1000.0,
        leakage_mw: leakage_nw / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_route::{route, RouterConfig};
    use vm1_tech::{CellArch, Library};

    fn setup() -> (Design, RouteResult) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(150)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let r = route(&d, &RouterConfig::default());
        (d, r)
    }

    #[test]
    fn all_components_positive() {
        let (d, r) = setup();
        let p = power(&d, Some(&r), 1000.0);
        assert!(p.switching_mw > 0.0);
        assert!(p.internal_mw > 0.0);
        assert!(p.leakage_mw > 0.0);
        assert!(p.total_mw() > p.switching_mw);
    }

    #[test]
    fn faster_clock_more_power() {
        let (d, r) = setup();
        let slow = power(&d, Some(&r), 2000.0);
        let fast = power(&d, Some(&r), 1000.0);
        assert!(fast.total_mw() > slow.total_mw());
        // Leakage is frequency independent.
        assert!((fast.leakage_mw - slow.leakage_mw).abs() < 1e-12);
    }

    #[test]
    fn shorter_wires_less_power() {
        let (mut d, _) = setup();
        let placed = power(&d, None, 1000.0);
        vm1_place::scatter(&mut d, 7);
        let scattered = power(&d, None, 1000.0);
        assert!(scattered.switching_mw > placed.switching_mw);
    }

    #[test]
    fn zero_frequency_leaves_only_leakage() {
        let (d, r) = setup();
        let p = power(&d, Some(&r), 0.0);
        assert_eq!(p.switching_mw, 0.0);
        assert_eq!(p.internal_mw, 0.0);
        assert!(p.leakage_mw > 0.0);
    }
}
