//! Levelized static timing analysis.

use crate::rc::{driver_to_sink_res_kohm, net_load_ff, net_wire_cap_ff};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use vm1_netlist::{Design, InstId, NetId, NetPin};
use vm1_route::RouteResult;
use vm1_tech::PinDir;

/// STA failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimingError {
    /// The combinational netlist contains a cycle.
    CombinationalLoop,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::CombinationalLoop => write!(f, "combinational loop detected"),
        }
    }
}

impl Error for TimingError {}

/// Result of [`analyze`].
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Worst negative slack in ps (≥ 0 when timing is met — the paper
    /// reports 0.000 for met designs).
    pub wns_ps: f64,
    /// Total negative slack in ps (sum over violating endpoints, ≤ 0).
    pub tns_ps: f64,
    /// Latest data arrival at any endpoint (ps).
    pub max_arrival_ps: f64,
    /// Number of timing endpoints (flop D pins + output ports).
    pub endpoints: usize,
}

impl TimingReport {
    /// WNS the way the paper prints it: 0.000 when met, negative otherwise
    /// (in ns).
    #[must_use]
    pub fn wns_ns_paper(&self) -> f64 {
        if self.wns_ps >= 0.0 {
            0.0
        } else {
            self.wns_ps / 1000.0
        }
    }
}

/// Arrival-time engine shared by [`analyze`] and [`min_clock_period`].
///
/// Returns per-net driver-output arrival times (ps) or a loop error.
fn arrivals(design: &Design, routes: Option<&RouteResult>) -> Result<Vec<f64>, TimingError> {
    arrivals_with_order(design, routes).map(|(a, _)| a)
}

/// Like [`arrivals`] but also returns the combinational instances in the
/// topological order they were processed (for the backward required-time
/// pass).
fn arrivals_with_order(
    design: &Design,
    routes: Option<&RouteResult>,
) -> Result<(Vec<f64>, Vec<InstId>), TimingError> {
    let clk_q_ps = |inst: InstId| -> f64 {
        design
            .library()
            .cell(design.inst(inst).cell)
            .timing
            .intrinsic_ps
    };

    let mut arr_net: Vec<f64> = vec![f64::NAN; design.num_nets()];
    // In-degree of a combinational cell = number of signal input pins.
    let mut indeg: Vec<usize> = vec![0; design.num_insts()];
    let mut is_comb: Vec<bool> = vec![false; design.num_insts()];
    for (id, inst) in design.insts() {
        let cell = design.library().cell(inst.cell);
        if cell.function.is_sequential() {
            continue;
        }
        is_comb[id.0] = true;
        indeg[id.0] = cell
            .pins
            .iter()
            .enumerate()
            .filter(|(k, p)| p.dir == PinDir::In && inst.pin_nets[*k].is_some())
            .count();
    }

    // Seed: nets driven by input ports or flop outputs.
    let mut ready: VecDeque<InstId> = VecDeque::new();
    let mut resolved = vec![false; design.num_nets()];
    let resolve = |net: NetId,
                   arr: f64,
                   arr_net: &mut Vec<f64>,
                   resolved: &mut Vec<bool>,
                   indeg: &mut Vec<usize>,
                   ready: &mut VecDeque<InstId>,
                   design: &Design| {
        if resolved[net.0] {
            return;
        }
        resolved[net.0] = true;
        arr_net[net.0] = arr;
        for &np in &design.net(net).pins {
            if let NetPin::Inst(pr) = np {
                let pin = design.macro_pin(pr);
                if pin.dir == PinDir::In && pin.name != "CK" && is_comb[pr.inst.0] {
                    indeg[pr.inst.0] -= 1;
                    if indeg[pr.inst.0] == 0 {
                        ready.push_back(pr.inst);
                    }
                }
            }
        }
    };

    for (id, _) in design.nets() {
        match design.net_driver(id) {
            Some(NetPin::Port(_)) => {
                resolve(
                    id,
                    0.0,
                    &mut arr_net,
                    &mut resolved,
                    &mut indeg,
                    &mut ready,
                    design,
                );
            }
            Some(NetPin::Inst(pr)) => {
                let inst = design.inst(pr.inst);
                if design.library().cell(inst.cell).function.is_sequential() {
                    // Flop output: clk→q from an ideal clock edge at 0.
                    let arr = clk_q_ps(pr.inst)
                        + design.library().cell(inst.cell).timing.drive_res
                            * net_load_ff(design, routes, id);
                    resolve(
                        id,
                        arr,
                        &mut arr_net,
                        &mut resolved,
                        &mut indeg,
                        &mut ready,
                        design,
                    );
                }
            }
            None => {}
        }
    }
    // Combinational cells with no connected inputs are sources too.
    for (id, _) in design.insts() {
        if is_comb[id.0] && indeg[id.0] == 0 {
            ready.push_back(id);
        }
    }

    let mut processed = vec![false; design.num_insts()];
    let mut topo_order: Vec<InstId> = Vec::new();
    while let Some(inst_id) = ready.pop_front() {
        if processed[inst_id.0] {
            continue;
        }
        processed[inst_id.0] = true;
        topo_order.push(inst_id);
        let inst = design.inst(inst_id);
        let cell = design.library().cell(inst.cell);
        // Latest input arrival including wire delay from each input net's
        // driver to this pin.
        let mut worst_in: f64 = 0.0;
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir != PinDir::In || pin.name == "CK" {
                continue;
            }
            if let Some(net) = inst.pin_nets[k] {
                let base = arr_net[net.0];
                let sink = NetPin::Inst(vm1_netlist::PinRef {
                    inst: inst_id,
                    pin: k,
                });
                let wire = wire_delay_ps(design, routes, net, sink);
                worst_in = worst_in.max(base + wire);
            }
        }
        // Output net.
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir == PinDir::Out {
                if let Some(net) = inst.pin_nets[k] {
                    let delay = cell.timing.intrinsic_ps
                        + cell.timing.drive_res * net_load_ff(design, routes, net);
                    resolve(
                        net,
                        worst_in + delay,
                        &mut arr_net,
                        &mut resolved,
                        &mut indeg,
                        &mut ready,
                        design,
                    );
                }
            }
        }
    }

    // Any unresolved comb cell with inputs => cycle.
    for (id, _) in design.insts() {
        if is_comb[id.0] && !processed[id.0] && indeg[id.0] > 0 {
            return Err(TimingError::CombinationalLoop);
        }
    }
    Ok((arr_net, topo_order))
}

/// Per-net slack (ps): required time minus arrival time at the net's
/// driver output, under an ideal clock of `clock_period_ps`. Nets that
/// reach no timing endpoint (e.g. the clock net) get `+∞`.
///
/// # Errors
///
/// Returns [`TimingError::CombinationalLoop`] for cyclic netlists.
pub fn net_slacks(
    design: &Design,
    routes: Option<&RouteResult>,
    clock_period_ps: f64,
) -> Result<Vec<f64>, TimingError> {
    let (arr, topo) = arrivals_with_order(design, routes)?;
    let mut req = vec![f64::INFINITY; design.num_nets()];

    let tighten = |net: NetId, r: f64, req: &mut Vec<f64>| {
        if r < req[net.0] {
            req[net.0] = r;
        }
    };

    // Endpoint requirements.
    for (id, inst) in design.insts() {
        let cell = design.library().cell(inst.cell);
        if !cell.function.is_sequential() {
            continue;
        }
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir == PinDir::In && pin.name == "D" {
                if let Some(net) = inst.pin_nets[k] {
                    let sink = NetPin::Inst(vm1_netlist::PinRef { inst: id, pin: k });
                    let wire = wire_delay_ps(design, routes, net, sink);
                    tighten(net, clock_period_ps - cell.timing.setup_ps - wire, &mut req);
                }
            }
        }
    }
    for (pid, port) in design.ports() {
        if port.dir == PinDir::Out {
            if let Some(net) = port.net {
                let wire = wire_delay_ps(design, routes, net, NetPin::Port(pid));
                tighten(net, clock_period_ps - wire, &mut req);
            }
        }
    }

    // Backward propagation through combinational cells (reverse topo).
    for &inst_id in topo.iter().rev() {
        let inst = design.inst(inst_id);
        let cell = design.library().cell(inst.cell);
        // Required at the cell's inputs = required at its output net minus
        // the cell delay and each input's wire delay.
        let mut out_req = f64::INFINITY;
        let mut out_delay = 0.0;
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir == PinDir::Out {
                if let Some(net) = inst.pin_nets[k] {
                    out_req = req[net.0];
                    out_delay = cell.timing.intrinsic_ps
                        + cell.timing.drive_res * crate::rc::net_load_ff(design, routes, net);
                }
            }
        }
        if !out_req.is_finite() {
            continue;
        }
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir == PinDir::In && pin.name != "CK" {
                if let Some(net) = inst.pin_nets[k] {
                    let sink = NetPin::Inst(vm1_netlist::PinRef {
                        inst: inst_id,
                        pin: k,
                    });
                    let wire = wire_delay_ps(design, routes, net, sink);
                    tighten(net, out_req - out_delay - wire, &mut req);
                }
            }
        }
    }

    Ok(req
        .iter()
        .zip(&arr)
        .map(|(&r, &a)| {
            if r.is_finite() && !a.is_nan() {
                r - a
            } else {
                f64::INFINITY
            }
        })
        .collect())
}

/// Elmore-style wire delay from the net driver to `sink`, in ps.
fn wire_delay_ps(design: &Design, routes: Option<&RouteResult>, net: NetId, sink: NetPin) -> f64 {
    let r = driver_to_sink_res_kohm(design, net, sink);
    let cw = net_wire_cap_ff(design, routes, net);
    let csink = match sink {
        NetPin::Inst(pr) => design.macro_pin(pr).cap_ff,
        NetPin::Port(_) => 1.0,
    };
    r * (0.5 * cw + csink)
}

/// Runs STA with an ideal clock of the given period (ps).
///
/// # Errors
///
/// Returns [`TimingError::CombinationalLoop`] for cyclic netlists.
pub fn analyze(
    design: &Design,
    routes: Option<&RouteResult>,
    clock_period_ps: f64,
) -> Result<TimingReport, TimingError> {
    let arr = arrivals(design, routes)?;
    let mut wns = f64::INFINITY;
    let mut tns = 0.0;
    let mut max_arr: f64 = 0.0;
    let mut endpoints = 0;

    // Flop D endpoints.
    for (id, inst) in design.insts() {
        let cell = design.library().cell(inst.cell);
        if !cell.function.is_sequential() {
            continue;
        }
        for (k, pin) in cell.pins.iter().enumerate() {
            if pin.dir == PinDir::In && pin.name == "D" {
                if let Some(net) = inst.pin_nets[k] {
                    if arr[net.0].is_nan() {
                        continue;
                    }
                    let sink = NetPin::Inst(vm1_netlist::PinRef { inst: id, pin: k });
                    let a = arr[net.0] + wire_delay_ps(design, routes, net, sink);
                    let slack = clock_period_ps - cell.timing.setup_ps - a;
                    endpoints += 1;
                    max_arr = max_arr.max(a);
                    wns = wns.min(slack);
                    if slack < 0.0 {
                        tns += slack;
                    }
                }
            }
        }
    }
    // Output-port endpoints.
    for (pid, port) in design.ports() {
        if port.dir == PinDir::Out {
            if let Some(net) = port.net {
                if arr[net.0].is_nan() {
                    continue;
                }
                let a = arr[net.0] + wire_delay_ps(design, routes, net, NetPin::Port(pid));
                let slack = clock_period_ps - a;
                endpoints += 1;
                max_arr = max_arr.max(a);
                wns = wns.min(slack);
                if slack < 0.0 {
                    tns += slack;
                }
            }
        }
    }

    Ok(TimingReport {
        wns_ps: if endpoints == 0 { 0.0 } else { wns },
        tns_ps: tns,
        max_arrival_ps: max_arr,
        endpoints,
    })
}

/// The smallest clock period (ps) at which the design meets timing, i.e.
/// the critical arrival plus worst setup.
///
/// # Errors
///
/// Returns [`TimingError::CombinationalLoop`] for cyclic netlists.
pub fn min_clock_period(design: &Design, routes: Option<&RouteResult>) -> Result<f64, TimingError> {
    // Probe with period 0: WNS = -(max arrival + setup margin).
    let report = analyze(design, routes, 0.0)?;
    Ok(-report.wns_ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_route::{route, RouterConfig};
    use vm1_tech::{CellArch, Library};

    fn setup(n: usize) -> (Design, RouteResult) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let r = route(&d, &RouterConfig::default());
        (d, r)
    }

    #[test]
    fn min_period_closes_timing() {
        let (d, r) = setup(150);
        let t = min_clock_period(&d, Some(&r)).unwrap();
        assert!(t > 0.0);
        let rep = analyze(&d, Some(&r), t * 1.02).unwrap();
        assert!(rep.wns_ps >= 0.0, "wns {}", rep.wns_ps);
        assert_eq!(rep.wns_ns_paper(), 0.0);
        assert_eq!(rep.tns_ps, 0.0);
        assert!(rep.endpoints > 0);
    }

    #[test]
    fn tight_clock_fails_timing() {
        let (d, r) = setup(150);
        let t = min_clock_period(&d, Some(&r)).unwrap();
        let rep = analyze(&d, Some(&r), t * 0.5).unwrap();
        assert!(rep.wns_ps < 0.0);
        assert!(rep.tns_ps < 0.0);
        assert!(rep.wns_ns_paper() < 0.0);
    }

    #[test]
    fn longer_wires_mean_later_arrivals() {
        let (mut d, _) = setup(150);
        let base = min_clock_period(&d, None).unwrap();
        // Scatter destroys placement quality => longer wires => slower.
        vm1_place::scatter(&mut d, 123);
        let scattered = min_clock_period(&d, None).unwrap();
        assert!(scattered > base, "scattered {scattered} vs placed {base}");
    }

    #[test]
    fn routed_vs_estimated_are_both_positive() {
        let (d, r) = setup(100);
        let a = min_clock_period(&d, Some(&r)).unwrap();
        let b = min_clock_period(&d, None).unwrap();
        assert!(a > 0.0 && b > 0.0);
    }

    #[test]
    fn wns_monotone_in_period() {
        let (d, r) = setup(100);
        let t = min_clock_period(&d, Some(&r)).unwrap();
        let r1 = analyze(&d, Some(&r), t).unwrap();
        let r2 = analyze(&d, Some(&r), t + 100.0).unwrap();
        assert!(r2.wns_ps > r1.wns_ps - 1e-9);
        assert_eq!(r1.max_arrival_ps, r2.max_arrival_ps);
    }
}

#[cfg(test)]
mod slack_tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_route::{route, RouterConfig};
    use vm1_tech::{CellArch, Library};

    fn setup() -> (Design, vm1_route::RouteResult) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(150)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let r = route(&d, &RouterConfig::default());
        (d, r)
    }

    #[test]
    fn worst_net_slack_matches_wns() {
        let (d, r) = setup();
        let t = min_clock_period(&d, Some(&r)).unwrap() * 1.02;
        let rep = analyze(&d, Some(&r), t).unwrap();
        let slacks = net_slacks(&d, Some(&r), t).unwrap();
        let worst = slacks.iter().copied().fold(f64::INFINITY, f64::min);
        // Net slacks include the endpooint wire-delay model, so the worst
        // net slack equals the endpoint WNS within tolerance.
        assert!(
            (worst - rep.wns_ps).abs() < 1.0,
            "worst {worst} vs wns {}",
            rep.wns_ps
        );
    }

    #[test]
    fn clock_net_has_infinite_slack() {
        let (d, r) = setup();
        let t = min_clock_period(&d, Some(&r)).unwrap();
        let slacks = net_slacks(&d, Some(&r), t).unwrap();
        let clk = d.nets().find(|(_, n)| n.name == "clk_net").unwrap().0;
        assert_eq!(slacks[clk.0], f64::INFINITY);
    }

    #[test]
    fn slacks_shift_with_clock_period() {
        let (d, r) = setup();
        let t = min_clock_period(&d, Some(&r)).unwrap();
        let s1 = net_slacks(&d, Some(&r), t).unwrap();
        let s2 = net_slacks(&d, Some(&r), t + 100.0).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            if a.is_finite() {
                assert!((b - a - 100.0).abs() < 1e-6, "{a} -> {b}");
            }
        }
    }

    #[test]
    fn critical_nets_exist_at_min_period() {
        let (d, r) = setup();
        let t = min_clock_period(&d, Some(&r)).unwrap();
        let slacks = net_slacks(&d, Some(&r), t).unwrap();
        let near_zero = slacks.iter().filter(|s| s.is_finite() && **s < 1.0).count();
        assert!(near_zero >= 1, "some critical net at the minimum period");
    }
}
