//! Net RC extraction from routed segments or HPWL estimates.

use vm1_netlist::{Design, NetId, NetPin};
use vm1_route::RouteResult;
use vm1_tech::PinDir;

/// Wire capacitance of a net in fF.
///
/// With a routing result, sums segment lengths weighted by per-layer
/// capacitance plus via capacitance; otherwise estimates from HPWL at the
/// M2 capacitance (the usual pre-route estimate).
#[must_use]
pub fn net_wire_cap_ff(design: &Design, routes: Option<&RouteResult>, net: NetId) -> f64 {
    let e = &design.library().tech().electrical;
    match routes {
        Some(r) => {
            let nr = r.net(net);
            let mut cap = 0.0;
            for s in &nr.segments {
                let len = ((s.x1 - s.x0).abs() * design.library().tech().site_width.nm()
                    + (s.y1 - s.y0).abs()
                        * (design.library().tech().row_height.nm()
                            / design.library().tech().arch.tracks_per_row()))
                    as f64;
                cap += len * e.layer_cap[s.layer.index()];
            }
            cap + nr.vias.iter().sum::<usize>() as f64 * e.via_cap
        }
        None => design.net_hpwl(net).nm() as f64 * e.layer_cap[2],
    }
}

/// Total load on a net's driver: wire capacitance plus every sink pin's
/// input capacitance, in fF.
#[must_use]
pub fn net_load_ff(design: &Design, routes: Option<&RouteResult>, net: NetId) -> f64 {
    let mut load = net_wire_cap_ff(design, routes, net);
    for &np in &design.net(net).pins {
        if let NetPin::Inst(pr) = np {
            let pin = design.macro_pin(pr);
            if pin.dir == PinDir::In {
                load += pin.cap_ff;
            }
        }
    }
    load
}

/// Wire resistance estimate from the net driver to a specific sink, in kΩ:
/// Manhattan distance at the M2 resistivity (a star approximation of the
/// routed tree).
#[must_use]
pub fn driver_to_sink_res_kohm(design: &Design, net: NetId, sink: NetPin) -> f64 {
    let e = &design.library().tech().electrical;
    let Some(driver) = design.net_driver(net) else {
        return 0.0;
    };
    let a = design.net_pin_position(driver);
    let b = design.net_pin_position(sink);
    a.manhattan_distance(b).nm() as f64 * e.layer_res[2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_route::{route, RouterConfig};
    use vm1_tech::{CellArch, Library};

    fn setup() -> (Design, RouteResult) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(100)
            .generate(&lib, 1);
        place(&mut d, &PlaceConfig::default(), 1);
        let r = route(&d, &RouterConfig::default());
        (d, r)
    }

    use vm1_netlist::Design;
    use vm1_route::RouteResult as RR;
    type RouteResultAlias = RR;

    #[test]
    fn routed_cap_positive_and_scales_with_length() {
        let (d, r) = setup();
        let mut caps: Vec<(i64, f64)> = Vec::new();
        for (id, _) in d.nets() {
            let c = net_wire_cap_ff(&d, Some(&r), id);
            assert!(c >= 0.0);
            caps.push((d.net_hpwl(id).nm(), c));
        }
        // Longest routed net should have much more cap than a zero-length
        // net.
        caps.sort_by_key(|&(l, _)| l);
        assert!(caps.last().unwrap().1 > caps.first().unwrap().1);
    }

    #[test]
    fn load_includes_pin_caps() {
        let (d, r) = setup();
        for (id, _) in d.nets() {
            assert!(net_load_ff(&d, Some(&r), id) >= net_wire_cap_ff(&d, Some(&r), id));
        }
    }

    #[test]
    fn hpwl_estimate_when_unrouted() {
        let (d, _) = setup();
        let (id, _) = d.nets().next().unwrap();
        let est = net_wire_cap_ff(&d, None, id);
        assert!((est - d.net_hpwl(id).nm() as f64 * 1.9e-4).abs() < 1e-9);
    }

    #[test]
    fn sink_resistance_grows_with_distance() {
        let (d, _) = setup();
        // Find a net with at least 2 sinks and compare.
        for (id, net) in d.nets() {
            if net.pins.len() >= 3 {
                let driver = d.net_driver(id).unwrap();
                let sinks: Vec<_> = net.pins.iter().filter(|&&p| p != driver).collect();
                let r0 = driver_to_sink_res_kohm(&d, id, *sinks[0]);
                assert!(r0 >= 0.0);
                break;
            }
        }
    }

    #[allow(dead_code)]
    fn type_uses(_: RouteResultAlias) {}
}
