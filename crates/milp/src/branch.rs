//! Branch-and-bound MILP solver on top of the LP relaxation in [`crate::lp`].
//!
//! Branching strategy:
//!
//! * If the model declares SOS1 groups (the single-cell-placement candidate
//!   sets of the detailed-placement formulations), the group whose LP values
//!   are most fractional is split into two halves by LP weight, and each
//!   child forbids one half. This is exponentially more effective than 0/1
//!   branching on individual candidate variables.
//! * Otherwise the most fractional integer variable is branched floor/ceil.
//!
//! A rounding heuristic at every node tries to snap the LP point to an
//! integer-feasible solution, which provides early incumbents; callers can
//! also supply a warm-start assignment (the current placement, which is
//! always feasible).

use crate::cert::{BranchStep, CertNode, Certificate, NodeOutcome};
use crate::lp::{solve_lp, LpStatus};
use crate::model::{Model, VarId, VarKind};
use crate::presolve::presolve;
use crate::tol::{DEFAULT_ABS_GAP, FEASIBILITY_TOL, INT_TOL};
use vm1_obs::timer::Stopwatch;
use vm1_obs::{Counter, MetricsHandle};

/// Outcome class of a MILP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal solution found.
    Optimal,
    /// A feasible solution was found but optimality was not proven before a
    /// node/time limit.
    Feasible,
    /// The model has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
    /// No feasible solution found before a node/time limit.
    Unknown,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
#[must_use = "a solver result must be inspected for its status"]
pub struct MilpSolution {
    /// Outcome class.
    pub status: Status,
    /// Objective of `values` (+∞ when no solution was found).
    pub objective: f64,
    /// Best assignment found (empty when none).
    pub values: Vec<f64>,
    /// Best proven lower bound on the optimum.
    pub best_bound: f64,
    /// Number of branch-and-bound nodes processed.
    pub nodes: usize,
    /// Nodes cut off without branching (parent-bound prunes before the LP
    /// solve, bound prunes after it, and LP-infeasible children).
    pub nodes_pruned: usize,
    /// LP relaxations solved (node LPs plus rounding-heuristic LPs).
    pub lp_solves: usize,
    /// Simplex pivots performed over all LP solves.
    pub pivots: u64,
}

impl MilpSolution {
    /// Whether a usable assignment is available.
    #[must_use]
    pub fn has_solution(&self) -> bool {
        matches!(self.status, Status::Optimal | Status::Feasible)
    }

    /// Value of `var` in the best assignment.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        assert!(self.has_solution(), "no MILP solution available");
        self.values[var.index()]
    }
}

/// Tunable limits for [`solve`].
#[derive(Clone, Debug)]
pub struct SolveParams {
    /// Maximum branch-and-bound nodes before giving up with the incumbent.
    pub max_nodes: usize,
    /// Wall-clock limit in milliseconds.
    pub time_limit_ms: u64,
    /// Accept incumbents within this absolute gap of the best bound.
    pub abs_gap: f64,
    /// Optional warm-start assignment (full variable vector). If feasible it
    /// seeds the incumbent.
    pub warm_start: Option<Vec<f64>>,
    /// Metrics sinks the solve reports its counters to (disabled by
    /// default; the same statistics are always returned in
    /// [`MilpSolution`]).
    pub metrics: MetricsHandle,
}

impl Default for SolveParams {
    fn default() -> SolveParams {
        SolveParams {
            max_nodes: 100_000,
            time_limit_ms: 60_000,
            abs_gap: DEFAULT_ABS_GAP,
            warm_start: None,
            metrics: MetricsHandle::disabled(),
        }
    }
}

/// Convenience wrapper around [`Solver`].
pub fn solve(model: &Model, params: &SolveParams) -> MilpSolution {
    Solver::new(model, params.clone()).run()
}

/// A solve result together with its replayable [`Certificate`].
#[derive(Clone, Debug)]
#[must_use = "a certified solve must have its certificate checked"]
pub struct CertifiedSolution {
    /// The usual solve result.
    pub solution: MilpSolution,
    /// The recorded search trace for independent verification.
    pub certificate: Certificate,
}

/// Like [`solve`], but records a [`Certificate`] of the search that an
/// independent checker (the `vm1-certify` crate) can verify in exact
/// arithmetic.
pub fn solve_certified(model: &Model, params: &SolveParams) -> CertifiedSolution {
    let mut solver = Solver::new(model, params.clone());
    solver.cert = Some(CertRecorder::default());
    let solution = solver.run_inner();
    let rec = solver.cert.take().unwrap_or_default();
    // Integer coordinates of the incumbent are integral only up to the
    // solver's tolerance; the certificate records them rounded so the
    // checker can demand *exact* integrality.
    let incumbent = if solution.has_solution() {
        let mut vals = solution.values.clone();
        for v in model.integer_vars() {
            vals[v.index()] = vals[v.index()].round();
        }
        Some(vals)
    } else {
        None
    };
    let certificate = Certificate {
        status: solution.status,
        objective: solution.objective,
        best_bound: solution.best_bound,
        abs_gap: solver.params.abs_gap,
        incumbent,
        root_lb: rec.root_lb,
        root_ub: rec.root_ub,
        nodes: rec.nodes,
    };
    CertifiedSolution {
        solution,
        certificate,
    }
}

/// Index meaning "certificate recording disabled" for [`Node::cert_id`].
const NO_CERT: usize = usize::MAX;

/// Accumulates the certificate while the search runs.
#[derive(Default)]
struct CertRecorder {
    nodes: Vec<CertNode>,
    root_lb: Vec<f64>,
    root_ub: Vec<f64>,
}

impl CertRecorder {
    fn push(&mut self, parent: Option<usize>, step: Option<BranchStep>) -> usize {
        self.nodes.push(CertNode {
            parent,
            step,
            outcome: NodeOutcome::Open,
        });
        self.nodes.len() - 1
    }

    fn set_outcome(&mut self, id: usize, outcome: NodeOutcome) {
        if let Some(n) = self.nodes.get_mut(id) {
            n.outcome = outcome;
        }
    }
}

struct Node {
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// LP bound inherited from the parent (for pruning before solving).
    parent_bound: f64,
    depth: usize,
    /// Index of this node in the certificate recorder ([`NO_CERT`] when
    /// recording is disabled).
    cert_id: usize,
}

/// Branch-and-bound engine. Most callers should use [`solve`]; the struct
/// form exists so long-running callers can inspect statistics.
pub struct Solver<'a> {
    model: &'a Model,
    params: SolveParams,
    int_vars: Vec<VarId>,
    incumbent: Option<Vec<f64>>,
    incumbent_obj: f64,
    best_bound: f64,
    nodes: usize,
    nodes_pruned: usize,
    lp_solves: usize,
    pivots: u64,
    cert: Option<CertRecorder>,
}

impl<'a> Solver<'a> {
    /// Creates a solver for `model` with the given limits.
    pub fn new(model: &'a Model, params: SolveParams) -> Solver<'a> {
        Solver {
            model,
            params,
            int_vars: model.integer_vars(),
            incumbent: None,
            incumbent_obj: f64::INFINITY,
            best_bound: f64::NEG_INFINITY,
            nodes: 0,
            nodes_pruned: 0,
            lp_solves: 0,
            pivots: 0,
            cert: None,
        }
    }

    /// Runs branch and bound to completion or to a limit.
    pub fn run(mut self) -> MilpSolution {
        self.run_inner()
    }

    fn run_inner(&mut self) -> MilpSolution {
        let start = Stopwatch::start();

        if let Some(ws) = self.params.warm_start.take() {
            if self.model.is_feasible(&ws, FEASIBILITY_TOL) {
                self.incumbent_obj = self.model.objective_value(&ws);
                self.incumbent = Some(ws);
            }
        }

        // Root presolve: tightened bounds + early infeasibility.
        let pre = presolve(self.model);
        let pre_tightenings = pre.tightenings;
        let pre_redundant = pre.redundant.iter().filter(|&&r| r).count();
        if pre.infeasible {
            if let Some(rec) = &mut self.cert {
                // Record a lone root whose infeasibility the checker
                // re-derives from its own exact presolve replay.
                rec.root_lb = pre.lb.clone();
                rec.root_ub = pre.ub.clone();
                let id = rec.push(None, None);
                rec.set_outcome(id, NodeOutcome::Infeasible { farkas: Vec::new() });
            }
            self.emit_metrics(pre_tightenings, pre_redundant);
            return MilpSolution {
                // A feasible warm start contradicts presolve-infeasible;
                // presolve only proves infeasibility from valid bound
                // arithmetic, so trust the incumbent if one exists.
                status: if self.incumbent.is_some() {
                    Status::Feasible
                } else {
                    Status::Infeasible
                },
                objective: self.incumbent_obj,
                values: self.incumbent.take().unwrap_or_default(),
                best_bound: f64::INFINITY,
                nodes: 0,
                nodes_pruned: 0,
                lp_solves: 0,
                pivots: 0,
            };
        }
        let root_lb: Vec<f64> = pre.lb;
        let root_ub: Vec<f64> = pre.ub;
        let root_cert = match &mut self.cert {
            Some(rec) => {
                rec.root_lb = root_lb.clone();
                rec.root_ub = root_ub.clone();
                rec.push(None, None)
            }
            None => NO_CERT,
        };
        let mut stack = vec![Node {
            lb: root_lb,
            ub: root_ub,
            parent_bound: f64::NEG_INFINITY,
            depth: 0,
            cert_id: root_cert,
        }];
        // Tracks the minimum LP bound over open nodes for `best_bound`.
        let mut saw_limit = false;
        let mut root_status: Option<Status> = None;

        while let Some(node) = stack.pop() {
            if self.nodes >= self.params.max_nodes
                || start.elapsed_ms() >= self.params.time_limit_ms
            {
                saw_limit = true;
                break;
            }
            if node.parent_bound >= self.incumbent_obj - self.params.abs_gap {
                self.nodes_pruned += 1;
                continue;
            }
            self.nodes += 1;

            let mut lp = self.solve_node_lp(&node.lb, &node.ub);
            match lp.status {
                LpStatus::Infeasible => {
                    if node.depth == 0 {
                        root_status = Some(Status::Infeasible);
                    }
                    if let Some(rec) = &mut self.cert {
                        rec.set_outcome(
                            node.cert_id,
                            NodeOutcome::Infeasible {
                                farkas: std::mem::take(&mut lp.farkas),
                            },
                        );
                    }
                    self.nodes_pruned += 1;
                    continue;
                }
                LpStatus::Unbounded => {
                    if node.depth == 0 {
                        root_status = Some(Status::Unbounded);
                    }
                    // Unbounded below a node with an incumbent cannot happen
                    // for bounded-variable models; treat as prune otherwise.
                    self.nodes_pruned += 1;
                    continue;
                }
                LpStatus::IterLimit => {
                    saw_limit = true;
                    continue;
                }
                LpStatus::Optimal => {
                    if let Some(rec) = &mut self.cert {
                        rec.set_outcome(
                            node.cert_id,
                            NodeOutcome::Bounded {
                                duals: std::mem::take(&mut lp.duals),
                            },
                        );
                    }
                }
            }
            if node.depth == 0 {
                self.best_bound = lp.objective;
            }
            if lp.objective >= self.incumbent_obj - self.params.abs_gap {
                self.nodes_pruned += 1;
                continue;
            }

            // Integer feasible?
            let frac_var = self.most_fractional(&lp.values);
            match frac_var {
                None => {
                    // LP point is integral: new incumbent.
                    if lp.objective < self.incumbent_obj {
                        self.incumbent_obj = lp.objective;
                        self.incumbent = Some(lp.values);
                    }
                    continue;
                }
                Some((var, _)) => {
                    // Try rounding heuristic for an early incumbent.
                    if self.incumbent.is_none() {
                        self.try_rounding(&lp.values, &node.lb, &node.ub);
                    }
                    self.branch(node, var, &lp.values, lp.objective, &mut stack);
                }
            }
        }

        let status = if let Some(s) = root_status {
            s
        } else if self.incumbent.is_some() {
            if saw_limit || !stack.is_empty() {
                Status::Feasible
            } else {
                Status::Optimal
            }
        } else if saw_limit || !stack.is_empty() {
            Status::Unknown
        } else {
            Status::Infeasible
        };

        self.emit_metrics(pre_tightenings, pre_redundant);
        MilpSolution {
            status,
            objective: self.incumbent_obj,
            values: self.incumbent.take().unwrap_or_default(),
            best_bound: if status == Status::Optimal {
                self.incumbent_obj
            } else {
                self.best_bound
            },
            nodes: self.nodes,
            nodes_pruned: self.nodes_pruned,
            lp_solves: self.lp_solves,
            pivots: self.pivots,
        }
    }

    /// Solves one LP relaxation, accumulating the solve and pivot counts.
    fn solve_node_lp(&mut self, lb: &[f64], ub: &[f64]) -> crate::lp::LpResult {
        let lp = solve_lp(self.model, Some((lb, ub)));
        self.lp_solves += 1;
        self.pivots += lp.pivots;
        lp
    }

    /// Reports the accumulated counters to the caller's metrics sinks.
    fn emit_metrics(&self, tightenings: usize, redundant: usize) {
        let metrics = &self.params.metrics;
        if !metrics.is_enabled() {
            return;
        }
        metrics.add(Counter::BbNodes, self.nodes as u64);
        metrics.add(Counter::BbNodesPruned, self.nodes_pruned as u64);
        metrics.add(Counter::LpSolves, self.lp_solves as u64);
        metrics.add(Counter::SimplexPivots, self.pivots);
        metrics.add(Counter::PresolveTightenings, tightenings as u64);
        metrics.add(Counter::PresolveRedundantRows, redundant as u64);
    }

    /// Most fractional integer variable at the LP point, if any.
    fn most_fractional(&self, values: &[f64]) -> Option<(VarId, f64)> {
        let mut best: Option<(VarId, f64)> = None;
        for &v in &self.int_vars {
            let x = values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > INT_TOL {
                let score = (x - x.floor() - 0.5).abs(); // smaller = more fractional
                if best.is_none_or(|(_, s)| score < s) {
                    best = Some((v, score));
                }
            }
        }
        best
    }

    /// Rounds the LP point (SOS1 groups to their heaviest member, remaining
    /// integers to nearest) and accepts the result if feasible.
    fn try_rounding(&mut self, values: &[f64], lb: &[f64], ub: &[f64]) {
        let mut rounded = values.to_vec();
        for group in &self.model.sos1 {
            // Heaviest member that is still allowed at this node wins.
            let winner = group.iter().filter(|v| ub[v.index()] > 0.5).max_by(|a, b| {
                values[a.index()]
                    .partial_cmp(&values[b.index()])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let Some(&winner) = winner else { return };
            for &v in group {
                rounded[v.index()] = if v == winner { 1.0 } else { 0.0 };
            }
        }
        for &v in &self.int_vars {
            let x = rounded[v.index()].round();
            rounded[v.index()] = x.clamp(lb[v.index()], ub[v.index()]);
        }
        // Re-optimize continuous variables with the integers fixed.
        let mut flb = lb.to_vec();
        let mut fub = ub.to_vec();
        for &v in &self.int_vars {
            flb[v.index()] = rounded[v.index()];
            fub[v.index()] = rounded[v.index()];
        }
        let lp = self.solve_node_lp(&flb, &fub);
        if lp.status == LpStatus::Optimal
            && self.model.is_feasible(&lp.values, FEASIBILITY_TOL)
            && lp.objective < self.incumbent_obj
        {
            self.incumbent_obj = lp.objective;
            self.incumbent = Some(lp.values);
        }
    }

    /// Records a child node in the certificate (no-op when recording is
    /// disabled) and returns its certificate index.
    fn cert_child(&mut self, parent: usize, step: BranchStep) -> usize {
        match &mut self.cert {
            Some(rec) => rec.push(Some(parent), Some(step)),
            None => NO_CERT,
        }
    }

    fn branch(
        &mut self,
        node: Node,
        frac_var: VarId,
        values: &[f64],
        bound: f64,
        stack: &mut Vec<Node>,
    ) {
        // SOS1 branching: if the fractional variable belongs to a group with
        // several active members, split the group by LP weight.
        if let Some((gi, group)) = self
            .model
            .sos1
            .iter()
            .enumerate()
            .find(|(_, g)| g.contains(&frac_var))
        {
            let mut active: Vec<VarId> = group
                .iter()
                .copied()
                .filter(|v| node.ub[v.index()] > 0.5)
                .collect();
            if active.len() >= 2 {
                active.sort_by(|a, b| {
                    values[b.index()]
                        .partial_cmp(&values[a.index()])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let half = active.len().div_ceil(2);
                let (heavy, light) = active.split_at(half);
                let forbid_light: Vec<usize> = light.iter().map(|v| v.index()).collect();
                let forbid_heavy: Vec<usize> = heavy.iter().map(|v| v.index()).collect();

                let mut child_a = Node {
                    lb: node.lb.clone(),
                    ub: node.ub.clone(),
                    parent_bound: bound,
                    depth: node.depth + 1,
                    cert_id: self.cert_child(
                        node.cert_id,
                        BranchStep::ForbidSet {
                            group: gi,
                            vars: forbid_light.clone(),
                        },
                    ),
                };
                for v in &forbid_light {
                    child_a.ub[*v] = 0.0;
                }
                let mut child_b = Node {
                    lb: node.lb,
                    ub: node.ub,
                    parent_bound: bound,
                    depth: node.depth + 1,
                    cert_id: self.cert_child(
                        node.cert_id,
                        BranchStep::ForbidSet {
                            group: gi,
                            vars: forbid_heavy.clone(),
                        },
                    ),
                };
                for v in &forbid_heavy {
                    child_b.ub[*v] = 0.0;
                }
                // DFS explores the heavy half first (pushed last).
                stack.push(child_b);
                stack.push(child_a);
                return;
            }
        }

        // Plain floor/ceil branching.
        let x = values[frac_var.index()];
        let mut down = Node {
            lb: node.lb.clone(),
            ub: node.ub.clone(),
            parent_bound: bound,
            depth: node.depth + 1,
            cert_id: self.cert_child(
                node.cert_id,
                BranchStep::SetUb {
                    var: frac_var.index(),
                    ub: x.floor(),
                },
            ),
        };
        down.ub[frac_var.index()] = x.floor();
        let mut up = Node {
            lb: node.lb,
            ub: node.ub,
            parent_bound: bound,
            depth: node.depth + 1,
            cert_id: self.cert_child(
                node.cert_id,
                BranchStep::SetLb {
                    var: frac_var.index(),
                    lb: x.ceil(),
                },
            ),
        };
        up.lb[frac_var.index()] = x.ceil();
        // Explore the side closer to the LP value first.
        if x - x.floor() > 0.5 {
            stack.push(down);
            stack.push(up);
        } else {
            stack.push(up);
            stack.push(down);
        }
    }
}

// Ensure VarKind is referenced (integer_vars filters on it).
const _: fn() = || {
    let _ = VarKind::Continuous;
};

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mirror the matrix formulations
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_close(a: f64, b: f64) {
        // Relative comparison: window objectives reach 1e9, where an
        // absolute 1e-5 test would be meaninglessly strict.
        assert!(crate::tol::approx_eq_rel(a, b, 1e-6), "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c + 4d st 3a+4b+2c+d <= 7
        let mut m = Model::new();
        let vars: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| m.add_binary(n))
            .collect();
        let weights = [3.0, 4.0, 2.0, 1.0];
        let values = [10.0, 13.0, 7.0, 4.0];
        m.add_le(
            vars.iter()
                .zip(&weights)
                .map(|(&v, &w)| (v, w))
                .collect::<Vec<_>>(),
            7.0,
        );
        m.set_objective(
            vars.iter()
                .zip(&values)
                .map(|(&v, &p)| (v, -p))
                .collect::<Vec<_>>(),
        );
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);
        // best: b + c + d = 13+7+4 = 24 (weight 7)
        assert_close(sol.objective, -24.0);
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 1+2+3 = 6 on the diagonal.
        let cost = [[1.0, 9.0, 9.0], [9.0, 2.0, 9.0], [9.0, 9.0, 3.0]];
        let mut m = Model::new();
        let mut x = vec![vec![]; 3];
        for i in 0..3 {
            for j in 0..3 {
                x[i].push(m.add_binary(&format!("x{i}{j}")));
            }
        }
        for i in 0..3 {
            m.add_eq(x[i].iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 1.0);
            m.add_eq((0..3).map(|r| (x[r][i], 1.0)).collect::<Vec<_>>(), 1.0);
            m.add_sos1(x[i].clone());
        }
        let mut obj = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.push((x[i][j], cost[i][j]));
            }
        }
        m.set_objective(obj);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 6.0);
        assert_close(sol.value(x[0][0]), 1.0);
        assert_close(sol.value(x[1][1]), 1.0);
        assert_close(sol.value(x[2][2]), 1.0);
    }

    #[test]
    fn big_m_indicator() {
        // Classic indicator: x <= 10*d, maximize x - 3*d with x in [0, 7].
        // d=1,x=7 gives 4; d=0,x=0 gives 0. Optimal -4 in min form.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 7.0);
        let d = m.add_binary("d");
        m.add_le([(x, 1.0), (d, -10.0)], 0.0);
        m.set_objective([(x, -1.0), (d, 3.0)]);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, -4.0);
        assert_close(sol.value(d), 1.0);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 3.0);
        m.set_objective([(a, 1.0)]);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Infeasible);
        assert!(!sol.has_solution());
    }

    #[test]
    fn integer_variable_branching() {
        // min -k st 3k <= 10, k integer in [0, 10] => k = 3.
        let mut m = Model::new();
        let k = m.add_integer("k", 0, 10);
        m.add_le([(k, 3.0)], 10.0);
        m.set_objective([(k, -1.0)]);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.value(k), 3.0);
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_le([(a, 1.0), (b, 1.0)], 1.0);
        m.set_objective([(a, -2.0), (b, -1.0)]);
        let params = SolveParams {
            warm_start: Some(vec![0.0, 1.0]),
            max_nodes: 0, // no search at all: only the warm start survives
            ..SolveParams::default()
        };
        let sol = solve(&m, &params);
        assert_eq!(sol.status, Status::Feasible);
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn node_limit_reports_feasible_not_optimal() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(&format!("v{i}"))).collect();
        let w: Vec<f64> = (0..12).map(|i| ((i * 7) % 5 + 1) as f64).collect();
        m.add_le(
            vars.iter()
                .zip(&w)
                .map(|(&v, &wi)| (v, wi))
                .collect::<Vec<_>>(),
            17.0,
        );
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, -((i % 4 + 1) as f64)))
                .collect::<Vec<_>>(),
        );
        let params = SolveParams {
            max_nodes: 3,
            ..SolveParams::default()
        };
        let sol = solve(&m, &params);
        // With only 3 nodes the rounding heuristic should still find something.
        assert!(matches!(
            sol.status,
            Status::Feasible | Status::Unknown | Status::Optimal
        ));
    }

    #[test]
    fn sos1_model_solves_exactly() {
        // Pick one "position" per "cell" from 3 candidates each; forbid
        // conflicting pairs; minimize candidate costs. Brute-force verified.
        let costs = [[3.0, 1.0, 2.0], [2.0, 2.5, 0.5]];
        // conflict: cell0-cand1 conflicts with cell1-cand2
        let mut m = Model::new();
        let mut lam = vec![vec![]; 2];
        for c in 0..2 {
            for k in 0..3 {
                lam[c].push(m.add_binary(&format!("l{c}{k}")));
            }
            m.add_eq(lam[c].iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 1.0);
            m.add_sos1(lam[c].clone());
        }
        m.add_le([(lam[0][1], 1.0), (lam[1][2], 1.0)], 1.0);
        let mut obj = Vec::new();
        for c in 0..2 {
            for k in 0..3 {
                obj.push((lam[c][k], costs[c][k]));
            }
        }
        m.set_objective(obj);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);

        // Brute force.
        let mut best = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                if a == 1 && b == 2 {
                    continue;
                }
                best = best.min(costs[0][a] + costs[1][b]);
            }
        }
        assert_close(sol.objective, best);
    }

    #[test]
    fn solve_stats_are_populated_and_reported() {
        use std::sync::Arc;
        use vm1_obs::Telemetry;

        let mut m = Model::new();
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(&format!("v{i}"))).collect();
        let w: Vec<f64> = (0..8).map(|i| ((i * 3) % 5 + 1) as f64).collect();
        m.add_le(
            vars.iter()
                .zip(&w)
                .map(|(&v, &wi)| (v, wi))
                .collect::<Vec<_>>(),
            9.0,
        );
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, -((i % 3 + 1) as f64)))
                .collect::<Vec<_>>(),
        );
        let sink = Arc::new(Telemetry::new());
        let params = SolveParams {
            metrics: MetricsHandle::of(sink.clone()),
            ..SolveParams::default()
        };
        let sol = solve(&m, &params);
        assert_eq!(sol.status, Status::Optimal);
        assert!(sol.nodes >= 1);
        assert!(sol.lp_solves >= sol.nodes);
        assert!(sol.pivots >= 1);
        // The metrics sink saw exactly the returned statistics.
        let r = sink.report();
        assert_eq!(r.counter(Counter::BbNodes), sol.nodes as u64);
        assert_eq!(r.counter(Counter::BbNodesPruned), sol.nodes_pruned as u64);
        assert_eq!(r.counter(Counter::LpSolves), sol.lp_solves as u64);
        assert_eq!(r.counter(Counter::SimplexPivots), sol.pivots);
    }

    #[test]
    fn equality_only_binary_system() {
        // a + b == 1, b + c == 1, minimize a + c. Optimal: b=1, a=c=0.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_eq([(a, 1.0), (b, 1.0)], 1.0);
        m.add_eq([(b, 1.0), (c, 1.0)], 1.0);
        m.set_objective([(a, 1.0), (c, 1.0)]);
        let sol = solve(&m, &SolveParams::default());
        assert_eq!(sol.status, Status::Optimal);
        assert_close(sol.objective, 0.0);
        assert_close(sol.value(b), 1.0);
    }
}
