use std::fmt;

/// Handle to a variable of a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable inside its model (also the index into
    /// [`MilpSolution::values`](crate::MilpSolution::values)).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Integrality class of a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Either 0 or 1.
    Binary,
    /// Integer-valued within its bounds.
    Integer,
}

/// Direction of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConstraintSense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear expression `sum coeff_i * var_i` (no constant term; constants
/// belong on the right-hand side of constraints).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms. May contain repeated variables;
    /// they are summed when the model is solved.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// Creates an empty expression.
    #[must_use]
    pub fn new() -> LinExpr {
        LinExpr { terms: Vec::new() }
    }

    /// Adds `coeff * var` to the expression (builder style).
    pub fn add(&mut self, var: VarId, coeff: f64) -> &mut LinExpr {
        self.terms.push((var, coeff));
        self
    }
}

impl<I: IntoIterator<Item = (VarId, f64)>> From<I> for LinExpr {
    fn from(iter: I) -> LinExpr {
        LinExpr {
            terms: iter.into_iter().collect(),
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lb: f64,
    pub ub: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub sense: ConstraintSense,
    pub rhs: f64,
}

/// A mixed-integer linear program in minimization form.
///
/// Build variables with [`Model::add_binary`] / [`Model::add_continuous`] /
/// [`Model::add_integer`], add constraints with [`Model::add_le`] /
/// [`Model::add_ge`] / [`Model::add_eq`], set the (minimized) objective with
/// [`Model::set_objective`], then call [`crate::solve`].
///
/// Variable bounds must be finite for structural reasons except that
/// continuous upper bounds may be `f64::INFINITY`; the formulations in this
/// workspace always provide finite bounds, which keeps the simplex simple
/// and fast.
///
/// # Examples
///
/// ```
/// use vm1_milp::Model;
///
/// let mut m = Model::new();
/// let x = m.add_continuous("x", 0.0, 10.0);
/// let b = m.add_binary("b");
/// m.add_le([(x, 1.0), (b, -10.0)], 0.0); // x <= 10 b
/// m.set_objective([(x, -1.0)]); // maximize x
/// assert_eq!(m.num_vars(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Vec<f64>,
    /// Groups of binary variables of which exactly one is 1 (the model must
    /// also contain the corresponding `sum == 1` constraint); used for SOS1
    /// branching.
    pub(crate) sos1: Vec<Vec<VarId>>,
}

impl Model {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Model {
        Model::default()
    }

    /// Adds a continuous variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub`, if `lb` is not finite, or if `ub` is NaN.
    pub fn add_continuous(&mut self, name: &str, lb: f64, ub: f64) -> VarId {
        assert!(lb.is_finite(), "lower bound of {name} must be finite");
        assert!(
            !ub.is_nan() && lb <= ub,
            "invalid bounds [{lb}, {ub}] for {name}"
        );
        self.push_var(name, VarKind::Continuous, lb, ub)
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self, name: &str) -> VarId {
        self.push_var(name, VarKind::Binary, 0.0, 1.0)
    }

    /// Adds a general integer variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lb > ub`.
    pub fn add_integer(&mut self, name: &str, lb: i64, ub: i64) -> VarId {
        assert!(lb <= ub, "invalid bounds [{lb}, {ub}] for {name}");
        self.push_var(name, VarKind::Integer, lb as f64, ub as f64)
    }

    fn push_var(&mut self, name: &str, kind: VarKind, lb: f64, ub: f64) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            name: name.to_owned(),
            kind,
            lb,
            ub,
        });
        self.objective.push(0.0);
        id
    }

    /// Adds the constraint `expr <= rhs`.
    pub fn add_le(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Le, rhs);
    }

    /// Adds the constraint `expr >= rhs`.
    pub fn add_ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Ge, rhs);
    }

    /// Adds the constraint `expr == rhs`.
    pub fn add_eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.add_constraint(expr, ConstraintSense::Eq, rhs);
    }

    /// Adds a constraint with an explicit sense.
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable that does not belong to this
    /// model or if a coefficient or the rhs is not finite.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, sense: ConstraintSense, rhs: f64) {
        let expr = expr.into();
        for &(v, c) in &expr.terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown {v}");
            assert!(c.is_finite(), "non-finite coefficient {c} on {v}");
        }
        assert!(rhs.is_finite(), "non-finite rhs {rhs}");
        self.constraints.push(Constraint { expr, sense, rhs });
    }

    /// Sets the minimized objective. Terms replace any previous objective;
    /// repeated variables are summed.
    ///
    /// # Panics
    ///
    /// Panics if a term references an unknown variable.
    pub fn set_objective(&mut self, expr: impl Into<LinExpr>) {
        self.objective.iter_mut().for_each(|c| *c = 0.0);
        for (v, c) in expr.into().terms {
            assert!(v.0 < self.vars.len(), "objective references unknown {v}");
            self.objective[v.0] += c;
        }
    }

    /// Declares that the given binary variables form an SOS1 group (exactly
    /// one of them is 1 in any feasible solution). The caller must also add
    /// the corresponding `sum == 1` constraint; the group declaration only
    /// guides branching.
    ///
    /// # Panics
    ///
    /// Panics if any member is not a binary variable of this model.
    pub fn add_sos1(&mut self, members: Vec<VarId>) {
        for &v in &members {
            assert!(
                v.0 < self.vars.len() && self.vars[v.0].kind == VarKind::Binary,
                "SOS1 member {v} must be a binary variable of this model"
            );
        }
        self.sos1.push(members);
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Name of a variable (as given at creation).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Handle to the `i`-th variable (the inverse of [`VarId::index`]),
    /// for callers that iterate variables positionally — e.g. the
    /// certificate checker walking a recorded bound vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a variable index of this model.
    #[must_use]
    pub fn var_id(&self, i: usize) -> VarId {
        assert!(i < self.vars.len(), "no variable with index {i}");
        VarId(i)
    }

    /// Integrality class of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_kind(&self, var: VarId) -> VarKind {
        self.vars[var.0].kind
    }

    /// Declared `(lower, upper)` bounds of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_bounds(&self, var: VarId) -> (f64, f64) {
        (self.vars[var.0].lb, self.vars[var.0].ub)
    }

    /// Terms of constraint `i` as given (duplicates not merged).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn constraint_terms(&self, i: usize) -> &[(VarId, f64)] {
        &self.constraints[i].expr.terms
    }

    /// Sense of constraint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn constraint_sense(&self, i: usize) -> ConstraintSense {
        self.constraints[i].sense
    }

    /// Right-hand side of constraint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn constraint_rhs(&self, i: usize) -> f64 {
        self.constraints[i].rhs
    }

    /// The minimized objective as one coefficient per variable.
    #[must_use]
    pub fn objective_coeffs(&self) -> &[f64] {
        &self.objective
    }

    /// The declared SOS1 groups, in declaration order.
    #[must_use]
    pub fn sos1_groups(&self) -> &[Vec<VarId>] {
        &self.sos1
    }

    /// Ids of all integer-constrained (binary or integer) variables.
    pub(crate) fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind != VarKind::Continuous)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Evaluates the objective at a full assignment.
    #[must_use]
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Checks whether `values` satisfies all constraints, bounds, and
    /// integrality requirements within tolerance `tol`.
    #[must_use]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            if x < v.lb - tol || x > v.ub + tol {
                return false;
            }
            if v.kind != VarKind::Continuous && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.expr.terms.iter().map(|&(v, co)| co * values[v.0]).sum();
            let ok = match c.sense {
                ConstraintSense::Le => lhs <= c.rhs + tol,
                ConstraintSense::Ge => lhs >= c.rhs - tol,
                ConstraintSense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        let b = m.add_binary("b");
        let k = m.add_integer("k", -2, 7);
        m.add_le([(x, 1.0), (b, 2.0)], 4.0);
        m.add_eq([(k, 1.0)], 3.0);
        m.set_objective([(x, 1.0), (k, -1.0)]);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 2);
        assert_eq!(m.integer_vars(), vec![b, k]);
        assert_eq!(m.objective_value(&[2.0, 0.0, 3.0]), -1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        let b = m.add_binary("b");
        m.add_le([(x, 1.0), (b, 2.0)], 4.0);
        assert!(m.is_feasible(&[2.0, 1.0], 1e-9));
        assert!(!m.is_feasible(&[3.0, 1.0], 1e-9), "constraint violated");
        assert!(!m.is_feasible(&[2.0, 0.5], 1e-9), "binary fractional");
        assert!(!m.is_feasible(&[6.0, 0.0], 1e-9), "bound violated");
        assert!(!m.is_feasible(&[1.0], 1e-9), "wrong arity");
    }

    #[test]
    fn set_objective_replaces_and_merges() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.set_objective([(x, 2.0), (x, 3.0)]);
        assert_eq!(m.objective_value(&[1.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn foreign_var_panics() {
        let mut other = Model::new();
        let foreign = other.add_binary("f");
        let mut m = Model::new();
        m.add_le([(foreign, 1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn infinite_lower_bound_panics() {
        let mut m = Model::new();
        let _ = m.add_continuous("x", f64::NEG_INFINITY, 0.0);
    }

    #[test]
    #[should_panic(expected = "SOS1")]
    fn sos1_rejects_continuous() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_sos1(vec![x]);
    }
}
