//! Pre-solve static model linter.
//!
//! [`audit`] inspects a [`Model`] *before* it is handed to the solver and
//! reports structural defects that would otherwise surface only as wrong
//! answers or wasted branch-and-bound effort:
//!
//! * **trivial infeasibility** — interval (activity-bound) propagation
//!   over the constraint matrix, iterated to a fixpoint, proves that no
//!   assignment within the variable bounds can satisfy every row;
//! * **loose big-M coefficients** — a binary term of an indicator row
//!   whose magnitude exceeds what the derived variable bounds require.
//!   Each finding carries an exact feasibility-preserving [`BigMFix`]
//!   that [`apply_big_m_fixes`] can apply;
//! * **malformed SOS1 groups** — empty groups, duplicate members, and
//!   groups without the `sum == 1` convexity row that
//!   [`Model::add_sos1`] documents as the caller's obligation;
//! * **unused variables** — no constraint term and no objective term;
//! * **redundant constraints** — rows satisfied by every assignment
//!   within the derived bounds;
//! * **poor conditioning** — a coefficient-magnitude spread wide enough
//!   to endanger the simplex tolerances.
//!
//! Findings flow through the `vm1-obs` metrics layer
//! ([`audit_with`]) so they land in `--metrics-out` reports.
//!
//! # The big-M tightening rule
//!
//! The workspace emits indicator rows of the form `expr + G·d ≤ bound + G`
//! (and the `≥` mirror): at `d = 1` the row binds, at `d = 0` it must be
//! vacuous, which only requires `G ≥ max(expr) − bound`. For a general
//! `≤` row `rest + a·d ≤ b` with binary `d` and `a > 0`, the relaxed
//! branch is `d = 0` and its slack is `s = b − max(rest)`. When `s > 0`
//! the coefficient is loose: with `δ = min(s, a)`, replacing `a → a − δ`
//! and `b → b − δ` leaves the binding branch (`rest ≤ b − a`) unchanged
//! and keeps the relaxed branch vacuous (`b − δ ≥ max(rest)`), so the
//! feasible set over `d ∈ {0, 1}` is exactly preserved while the LP
//! relaxation tightens. Terms with `a < 0` and `≥` rows are handled by
//! negation; `==` rows are never touched.
//!
//! # Examples
//!
//! ```
//! use vm1_milp::{audit, Model};
//!
//! let mut m = Model::new();
//! let x = m.add_continuous("x", 0.0, 10.0);
//! let d = m.add_binary("d");
//! // x ≤ 2 when d = 0, vacuous when d = 1 — but G = 1e6 is far looser
//! // than the G = 8 the bounds require.
//! m.add_le([(x, 1.0), (d, 1e6)], 2.0 + 1e6);
//! let report = audit::audit(&m);
//! assert!(report.has_warnings());
//! assert_eq!(report.big_m_fixes().count(), 1);
//! ```

use std::fmt;

use vm1_obs::{Counter, MetricsHandle, Stage};

use crate::model::{ConstraintSense, Model, VarId, VarKind};
use crate::presolve::presolve;
use crate::tol::{BIGM_SLACK_TOL, COEFF_ZERO_TOL, UNIT_COEFF_TOL};

/// Coefficient-magnitude spread (max/min over nonzero entries) beyond
/// which the matrix is flagged as poorly conditioned for the dense
/// simplex and its fixed tolerances.
const CONDITIONING_LIMIT: f64 = 1e10;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// Severity of an [`AuditFinding`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditSeverity {
    /// Informational: harmless, but worth knowing (dead variables,
    /// redundant rows).
    Info,
    /// Suspicious: the model solves, but suboptimally conditioned or
    /// formulated (loose big-M, wide coefficient range).
    Warning,
    /// Defective: the model cannot produce a meaningful answer
    /// (infeasible bounds, malformed SOS1 structure).
    Error,
}

/// What kind of defect an [`AuditFinding`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuditKind {
    /// Interval propagation proved no feasible assignment exists.
    TriviallyInfeasible,
    /// A big-M indicator coefficient is looser than the derived bounds
    /// require (a feasibility-preserving fix is attached).
    LooseBigM,
    /// An SOS1 group has no members.
    Sos1Empty,
    /// An SOS1 group lists the same variable more than once.
    Sos1DuplicateMember,
    /// An SOS1 group has no matching `sum == 1` convexity constraint.
    Sos1MissingConvexityRow,
    /// A variable appears in no constraint and has no objective weight.
    UnusedVariable,
    /// A constraint is satisfied by every assignment within the derived
    /// bounds.
    RedundantConstraint,
    /// The nonzero coefficient magnitudes span a range wide enough to
    /// endanger the simplex tolerances.
    PoorConditioning,
}

impl AuditKind {
    /// The severity class of this kind of finding.
    #[must_use]
    pub fn severity(self) -> AuditSeverity {
        match self {
            AuditKind::TriviallyInfeasible
            | AuditKind::Sos1Empty
            | AuditKind::Sos1DuplicateMember
            | AuditKind::Sos1MissingConvexityRow => AuditSeverity::Error,
            AuditKind::LooseBigM | AuditKind::PoorConditioning => AuditSeverity::Warning,
            AuditKind::UnusedVariable | AuditKind::RedundantConstraint => AuditSeverity::Info,
        }
    }

    /// Stable snake_case name (JSON/CSV-friendly).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AuditKind::TriviallyInfeasible => "trivially_infeasible",
            AuditKind::LooseBigM => "loose_big_m",
            AuditKind::Sos1Empty => "sos1_empty",
            AuditKind::Sos1DuplicateMember => "sos1_duplicate_member",
            AuditKind::Sos1MissingConvexityRow => "sos1_missing_convexity_row",
            AuditKind::UnusedVariable => "unused_variable",
            AuditKind::RedundantConstraint => "redundant_constraint",
            AuditKind::PoorConditioning => "poor_conditioning",
        }
    }
}

/// An exact, feasibility-preserving tightening of one loose big-M term
/// (see the module docs for the rule and its proof sketch).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BigMFix {
    /// Index of the constraint to rewrite.
    pub constraint: usize,
    /// Index of the term (within that constraint's expression) whose
    /// coefficient changes.
    pub term: usize,
    /// Replacement coefficient for the term.
    pub new_coeff: f64,
    /// Replacement right-hand side for the constraint.
    pub new_rhs: f64,
}

/// One defect reported by the model linter.
#[derive(Clone, Debug)]
pub struct AuditFinding {
    /// The defect class.
    pub kind: AuditKind,
    /// Offending constraint index, when the finding is about a row.
    pub constraint: Option<usize>,
    /// Offending variable, when the finding is about a variable.
    pub var: Option<VarId>,
    /// Human-readable explanation with concrete numbers.
    pub detail: String,
    /// Attached automatic fix ([`AuditKind::LooseBigM`] only).
    pub fix: Option<BigMFix>,
}

impl AuditFinding {
    /// The severity class of this finding.
    #[must_use]
    pub fn severity(&self) -> AuditSeverity {
        self.kind.severity()
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {}: {}",
            self.severity(),
            self.kind.name(),
            self.detail
        )
    }
}

/// Result of a model lint: every finding, most severe first.
#[derive(Clone, Debug, Default)]
#[must_use = "an audit report is only useful if its findings are inspected"]
pub struct AuditReport {
    findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// All findings, sorted most severe first.
    #[must_use]
    pub fn findings(&self) -> &[AuditFinding] {
        &self.findings
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: AuditSeverity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity() == severity)
            .count()
    }

    /// Whether any error-severity finding was reported.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(AuditSeverity::Error) > 0
    }

    /// Whether any warning-severity finding was reported.
    #[must_use]
    pub fn has_warnings(&self) -> bool {
        self.count(AuditSeverity::Warning) > 0
    }

    /// Whether the model is clean enough to solve: no errors and no
    /// warnings (info findings are tolerated).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self.has_errors() && !self.has_warnings()
    }

    /// The attached big-M fixes, in application order.
    pub fn big_m_fixes(&self) -> impl Iterator<Item = BigMFix> + '_ {
        self.findings.iter().filter_map(|f| f.fix)
    }

    /// One line per finding, most severe first (empty string when clean).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// The linter
// ---------------------------------------------------------------------------

/// Lints `model` and returns every finding. Equivalent to
/// [`audit_with`] with a disabled metrics handle.
pub fn audit(model: &Model) -> AuditReport {
    audit_with(model, &MetricsHandle::disabled())
}

/// Lints `model`, charging wall-clock to [`Stage::Audit`] and reporting
/// finding counts through `metrics` ([`Counter::AuditErrors`],
/// [`Counter::AuditWarnings`], [`Counter::AuditBigMTightened`]).
pub fn audit_with(model: &Model, metrics: &MetricsHandle) -> AuditReport {
    let report = metrics.timed(Stage::Audit, || lint(model));
    metrics.add(
        Counter::AuditErrors,
        report.count(AuditSeverity::Error) as u64,
    );
    metrics.add(
        Counter::AuditWarnings,
        report.count(AuditSeverity::Warning) as u64,
    );
    metrics.add(
        Counter::AuditBigMTightened,
        report.big_m_fixes().count() as u64,
    );
    report
}

/// Applies every big-M fix attached to `report` to `model` and returns
/// the number of coefficients tightened. At most one fix per constraint
/// is applied (each fix also rewrites its row's right-hand side).
pub fn apply_big_m_fixes(model: &mut Model, report: &AuditReport) -> usize {
    let mut touched = vec![false; model.constraints.len()];
    let mut applied = 0;
    for fix in report.big_m_fixes() {
        if fix.constraint >= model.constraints.len() || touched[fix.constraint] {
            continue;
        }
        let con = &mut model.constraints[fix.constraint];
        if fix.term >= con.expr.terms.len() {
            continue;
        }
        con.expr.terms[fix.term].1 = fix.new_coeff;
        con.rhs = fix.new_rhs;
        touched[fix.constraint] = true;
        applied += 1;
    }
    applied
}

fn lint(model: &Model) -> AuditReport {
    let mut findings = Vec::new();

    // Interval propagation: derived bounds, proven-redundant rows, and
    // trivial infeasibility all come from the same fixpoint.
    let pre = presolve(model);
    if pre.infeasible {
        findings.push(AuditFinding {
            kind: AuditKind::TriviallyInfeasible,
            constraint: None,
            var: None,
            detail: "interval propagation over the variable bounds proved the \
                     constraint system unsatisfiable"
                .to_owned(),
            fix: None,
        });
    } else {
        for (ci, red) in pre.redundant.iter().enumerate() {
            if *red {
                findings.push(AuditFinding {
                    kind: AuditKind::RedundantConstraint,
                    constraint: Some(ci),
                    var: None,
                    detail: format!(
                        "constraint #{ci} is satisfied by every assignment within \
                         the derived variable bounds"
                    ),
                    fix: None,
                });
            }
        }
        check_big_m(model, &pre.lb, &pre.ub, &pre.redundant, &mut findings);
    }

    check_sos1(model, &mut findings);
    check_unused(model, &mut findings);
    check_conditioning(model, &mut findings);

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity()));
    AuditReport { findings }
}

/// Flags loose big-M coefficients on binary terms of inequality rows,
/// measured against the derived bounds `lb`/`ub`. At most one finding
/// (the loosest term) per constraint.
fn check_big_m(
    model: &Model,
    lb: &[f64],
    ub: &[f64],
    redundant: &[bool],
    findings: &mut Vec<AuditFinding>,
) {
    for (ci, con) in model.constraints.iter().enumerate() {
        if redundant[ci] {
            continue; // already reported; tightening a dead row is noise
        }
        // Normalize to ≤ form: sign · (expr, rhs).
        let sign = match con.sense {
            ConstraintSense::Le => 1.0,
            ConstraintSense::Ge => -1.0,
            ConstraintSense::Eq => continue,
        };
        let rhs = sign * con.rhs;
        // Max activity of the full row in ≤ form.
        let mut max_act = 0.0f64;
        for &(v, c) in &con.expr.terms {
            let c = sign * c;
            let j = v.index();
            max_act += if c >= 0.0 { c * ub[j] } else { c * lb[j] };
        }
        if !max_act.is_finite() {
            continue;
        }

        // Loosest binary term of the row.
        let mut best: Option<(usize, VarId, f64, f64)> = None; // (term, var, delta, coeff)
        for (ti, &(v, c0)) in con.expr.terms.iter().enumerate() {
            let j = v.index();
            if model.vars[j].kind != VarKind::Binary || lb[j] > 0.5 || ub[j] < 0.5 {
                continue; // not binary, or already fixed by propagation
            }
            let a = sign * c0;
            if a.abs() <= BIGM_SLACK_TOL {
                continue;
            }
            // Relaxed-branch slack: the branch where a·d contributes
            // min(a, 0). max_act already includes max(a, 0) from this
            // term, so max(rest) + min(a, 0) = max_act − |a|.
            let slack = rhs - (max_act - a.abs());
            if slack <= BIGM_SLACK_TOL {
                continue;
            }
            let delta = slack.min(a.abs());
            if best.is_none_or(|(_, _, d, _)| delta > d) {
                best = Some((ti, v, delta, a));
            }
        }
        if let Some((ti, v, delta, a)) = best {
            // Shrink |a| by delta; in ≤ form the rhs moves with the
            // coefficient only when a > 0 (the term's maximum shrinks).
            let (new_a, new_rhs_norm) = if a > 0.0 {
                (a - delta, rhs - delta)
            } else {
                (a + delta, rhs)
            };
            findings.push(AuditFinding {
                kind: AuditKind::LooseBigM,
                constraint: Some(ci),
                var: Some(v),
                detail: format!(
                    "constraint #{ci}: big-M coefficient {:.6} on binary '{}' \
                     exceeds what the derived bounds require by {delta:.6}",
                    con.expr.terms[ti].1,
                    model.var_name(v),
                ),
                fix: Some(BigMFix {
                    constraint: ci,
                    term: ti,
                    new_coeff: sign * new_a,
                    new_rhs: sign * new_rhs_norm,
                }),
            });
        }
    }
}

/// Validates SOS1 group structure: non-empty, duplicate-free, and backed
/// by a `sum == 1` convexity row over exactly the group's members.
fn check_sos1(model: &Model, findings: &mut Vec<AuditFinding>) {
    for (gi, group) in model.sos1.iter().enumerate() {
        if group.is_empty() {
            findings.push(AuditFinding {
                kind: AuditKind::Sos1Empty,
                constraint: None,
                var: None,
                detail: format!("SOS1 group #{gi} has no members"),
                fix: None,
            });
            continue;
        }
        let mut members: Vec<usize> = group.iter().map(|v| v.index()).collect();
        members.sort_unstable();
        let had_dup = members.windows(2).any(|w| w[0] == w[1]);
        if had_dup {
            findings.push(AuditFinding {
                kind: AuditKind::Sos1DuplicateMember,
                constraint: None,
                var: None,
                detail: format!("SOS1 group #{gi} lists a member more than once"),
                fix: None,
            });
        }
        members.dedup();

        let convexity = model.constraints.iter().any(|con| {
            if con.sense != ConstraintSense::Eq || (con.rhs - 1.0).abs() > UNIT_COEFF_TOL {
                return false;
            }
            // Sum repeated terms, then require coefficient 1 on exactly
            // the group members and nothing else.
            let mut sums: Vec<(usize, f64)> = Vec::with_capacity(con.expr.terms.len());
            for &(v, c) in &con.expr.terms {
                match sums.iter_mut().find(|(j, _)| *j == v.index()) {
                    Some((_, acc)) => *acc += c,
                    None => sums.push((v.index(), c)),
                }
            }
            sums.retain(|&(_, c)| c.abs() > COEFF_ZERO_TOL);
            if sums.len() != members.len() {
                return false;
            }
            sums.sort_unstable_by_key(|&(j, _)| j);
            sums.iter()
                .zip(&members)
                .all(|(&(j, c), &m)| j == m && (c - 1.0).abs() <= UNIT_COEFF_TOL)
        });
        if !convexity {
            findings.push(AuditFinding {
                kind: AuditKind::Sos1MissingConvexityRow,
                constraint: None,
                var: None,
                detail: format!(
                    "SOS1 group #{gi} ({} members) has no matching 'sum == 1' \
                     convexity constraint; branching on it would be unsound",
                    group.len()
                ),
                fix: None,
            });
        }
    }
}

/// Flags variables with no constraint term and no objective weight.
fn check_unused(model: &Model, findings: &mut Vec<AuditFinding>) {
    let mut used = vec![false; model.num_vars()];
    for con in &model.constraints {
        for &(v, c) in &con.expr.terms {
            if c != 0.0 {
                used[v.index()] = true;
            }
        }
    }
    for (j, w) in model.objective.iter().enumerate() {
        if *w != 0.0 {
            used[j] = true;
        }
    }
    for (j, u) in used.iter().enumerate() {
        if !u {
            findings.push(AuditFinding {
                kind: AuditKind::UnusedVariable,
                constraint: None,
                var: Some(VarId(j)),
                detail: format!(
                    "variable '{}' appears in no constraint and has no \
                     objective weight",
                    model.vars[j].name
                ),
                fix: None,
            });
        }
    }
}

/// Flags a coefficient-magnitude spread beyond [`CONDITIONING_LIMIT`].
fn check_conditioning(model: &Model, findings: &mut Vec<AuditFinding>) {
    let mut min_mag = f64::INFINITY;
    let mut max_mag = 0.0f64;
    for con in &model.constraints {
        for &(_, c) in &con.expr.terms {
            let m = c.abs();
            if m > 0.0 {
                min_mag = min_mag.min(m);
                max_mag = max_mag.max(m);
            }
        }
    }
    if max_mag > 0.0 && max_mag / min_mag > CONDITIONING_LIMIT {
        findings.push(AuditFinding {
            kind: AuditKind::PoorConditioning,
            constraint: None,
            var: None,
            detail: format!(
                "constraint coefficient magnitudes span [{min_mag:.3e}, \
                 {max_mag:.3e}] (ratio {:.3e} > {CONDITIONING_LIMIT:.0e}); \
                 the dense simplex tolerances may break down",
                max_mag / min_mag
            ),
            fix: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vm1_obs::Telemetry;

    fn kinds(r: &AuditReport) -> Vec<AuditKind> {
        r.findings().iter().map(|f| f.kind).collect()
    }

    #[test]
    fn clean_model_audits_clean() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        let b = m.add_binary("b");
        m.add_le([(x, 1.0), (b, 2.0)], 4.0);
        m.set_objective([(x, 1.0)]);
        let r = audit(&m);
        assert!(r.is_clean(), "{}", r.summary());
    }

    #[test]
    fn detects_trivial_infeasibility() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 3.0);
        let r = audit(&m);
        assert!(r.has_errors());
        assert!(kinds(&r).contains(&AuditKind::TriviallyInfeasible));
    }

    #[test]
    fn detects_and_fixes_loose_big_m_le() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let d = m.add_binary("d");
        // Indicator form expr + G·d ≤ bound + G with G = 1e6; the bounds
        // only require G = max(x) − bound = 8.
        m.add_le([(x, 1.0), (d, 1e6)], 2.0 + 1e6);
        m.set_objective([(x, -1.0)]);
        let r = audit(&m);
        assert!(kinds(&r).contains(&AuditKind::LooseBigM), "{}", r.summary());

        let fix = r.big_m_fixes().next().unwrap();
        assert!(
            (fix.new_coeff - 8.0).abs() < 1e-6,
            "coeff {}",
            fix.new_coeff
        );
        assert!((fix.new_rhs - 10.0).abs() < 1e-6, "rhs {}", fix.new_rhs);

        let mut fixed = m.clone();
        assert_eq!(apply_big_m_fixes(&mut fixed, &r), 1);
        // The feasible set over d ∈ {0, 1} is preserved exactly.
        for d_val in [0.0, 1.0] {
            for x10 in 0..=100 {
                let x_val = f64::from(x10) / 10.0;
                assert_eq!(
                    m.is_feasible(&[x_val, d_val], 1e-9),
                    fixed.is_feasible(&[x_val, d_val], 1e-9),
                    "x={x_val} d={d_val}"
                );
            }
        }
        // And the fixed model is tight: re-auditing finds nothing loose.
        let r2 = audit(&fixed);
        assert!(
            !kinds(&r2).contains(&AuditKind::LooseBigM),
            "{}",
            r2.summary()
        );
    }

    #[test]
    fn detects_and_fixes_loose_big_m_ge() {
        let mut m = Model::new();
        let x = m.add_continuous("x", -10.0, 10.0);
        let d = m.add_binary("d");
        // Mirror row: x − G·d ≥ −bound − G (binds to x ≥ −2 at d = 1).
        m.add_ge([(x, 1.0), (d, -1e6)], -2.0 - 1e6);
        m.set_objective([(x, 1.0)]);
        let r = audit(&m);
        assert!(kinds(&r).contains(&AuditKind::LooseBigM), "{}", r.summary());
        let mut fixed = m.clone();
        assert_eq!(apply_big_m_fixes(&mut fixed, &r), 1);
        for d_val in [0.0, 1.0] {
            for x10 in -100..=100 {
                let x_val = f64::from(x10) / 10.0;
                assert_eq!(
                    m.is_feasible(&[x_val, d_val], 1e-9),
                    fixed.is_feasible(&[x_val, d_val], 1e-9),
                    "x={x_val} d={d_val}"
                );
            }
        }
        let r2 = audit(&fixed);
        assert!(
            !kinds(&r2).contains(&AuditKind::LooseBigM),
            "{}",
            r2.summary()
        );
    }

    #[test]
    fn tight_big_m_not_flagged() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let d = m.add_binary("d");
        // G = 8 exactly: relaxed branch has zero slack.
        m.add_le([(x, 1.0), (d, 8.0)], 10.0);
        m.set_objective([(x, -1.0)]);
        let r = audit(&m);
        assert!(
            !kinds(&r).contains(&AuditKind::LooseBigM),
            "{}",
            r.summary()
        );
    }

    #[test]
    fn detects_sos1_without_convexity_row() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_sos1(vec![a, b]);
        m.set_objective([(a, 1.0), (b, 1.0)]);
        let r = audit(&m);
        assert!(r.has_errors());
        assert!(kinds(&r).contains(&AuditKind::Sos1MissingConvexityRow));

        // Adding the convexity row clears the error.
        m.add_eq([(a, 1.0), (b, 1.0)], 1.0);
        let r = audit(&m);
        assert!(!r.has_errors(), "{}", r.summary());
    }

    #[test]
    fn detects_sos1_duplicate_and_empty() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_sos1(vec![a, a]);
        m.add_sos1(vec![]);
        m.add_eq([(a, 1.0)], 1.0); // convexity row for the deduped group
        m.set_objective([(a, 1.0)]);
        let r = audit(&m);
        let ks = kinds(&r);
        assert!(
            ks.contains(&AuditKind::Sos1DuplicateMember),
            "{}",
            r.summary()
        );
        assert!(ks.contains(&AuditKind::Sos1Empty), "{}", r.summary());
    }

    #[test]
    fn reports_unused_variables_and_redundant_rows() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let _dead = m.add_continuous("dead", 0.0, 1.0);
        m.add_le([(a, 1.0)], 5.0); // vacuous for a binary
        m.set_objective([(a, 1.0)]);
        let r = audit(&m);
        let ks = kinds(&r);
        assert!(ks.contains(&AuditKind::UnusedVariable));
        assert!(ks.contains(&AuditKind::RedundantConstraint));
        assert!(!r.has_errors());
        assert!(!r.has_warnings());
    }

    #[test]
    fn flags_poor_conditioning() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_le([(x, 1e-9), (y, 1e9)], 1.0);
        m.set_objective([(x, 1.0)]);
        let r = audit(&m);
        assert!(kinds(&r).contains(&AuditKind::PoorConditioning));
    }

    #[test]
    fn findings_sorted_most_severe_first() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let _dead = m.add_continuous("dead", 0.0, 1.0);
        m.add_sos1(vec![a]); // no convexity row → error
        m.set_objective([(a, 1.0)]);
        let r = audit(&m);
        let sevs: Vec<AuditSeverity> = r.findings().iter().map(AuditFinding::severity).collect();
        let mut sorted = sevs.clone();
        sorted.sort_by(|x, y| y.cmp(x));
        assert_eq!(sevs, sorted);
    }

    #[test]
    fn metrics_record_finding_counts() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let d = m.add_binary("d");
        m.add_le([(x, 1.0), (d, 1e6)], 2.0 + 1e6);
        m.add_sos1(vec![]);
        m.set_objective([(x, -1.0)]);
        let sink = Arc::new(Telemetry::new());
        let metrics = MetricsHandle::of(sink.clone());
        let r = audit_with(&m, &metrics);
        assert_eq!(
            sink.counter(Counter::AuditErrors),
            r.count(AuditSeverity::Error) as u64
        );
        assert_eq!(
            sink.counter(Counter::AuditWarnings),
            r.count(AuditSeverity::Warning) as u64
        );
        assert_eq!(sink.counter(Counter::AuditBigMTightened), 1);
        assert!(sink.report().stage_calls(Stage::Audit) >= 1);
    }
}
