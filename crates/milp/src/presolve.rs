//! Root presolve: activity-based constraint analysis and bound
//! tightening.
//!
//! Before branch and bound starts, each constraint's minimum/maximum
//! activity (over the variable bounds) is used to
//!
//! * detect infeasibility (`min activity > rhs` on a `≤` row),
//! * drop redundant rows (`max activity ≤ rhs` on a `≤` row),
//! * tighten variable bounds (the classic
//!   `x_j ≤ (rhs − min activity without j) / a_j` rule), with integral
//!   rounding for binaries/integers.
//!
//! Iterated to a fixpoint (bounded rounds). Exactness is guarded by the
//! brute-force property tests in `tests/brute_force.rs`, which run the
//! full solver (presolve included) against exhaustive enumeration.

use crate::model::{ConstraintSense, Model, VarKind};
use crate::tol::{ACTIVITY_INFEAS_TOL, INT_ROUND_FUDGE, PRESOLVE_TOL as TOL};

/// Result of [`presolve`].
#[derive(Clone, Debug)]
pub(crate) struct Presolved {
    /// Tightened lower bounds.
    pub lb: Vec<f64>,
    /// Tightened upper bounds.
    pub ub: Vec<f64>,
    /// Constraints proven redundant under the tightened bounds (reported
    /// to the metrics layer; kept for a future reduced-model LP path).
    pub redundant: Vec<bool>,
    /// Whether the model is proven infeasible.
    pub infeasible: bool,
    /// Number of bound changes applied (reported to the metrics layer).
    pub tightenings: usize,
}

/// Runs presolve on `model` starting from its declared bounds.
pub(crate) fn presolve(model: &Model) -> Presolved {
    let n = model.num_vars();
    let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
    let mut redundant = vec![false; model.num_constraints()];
    let mut tightenings = 0usize;

    for _round in 0..5 {
        let mut changed = false;
        for (ci, con) in model.constraints.iter().enumerate() {
            if redundant[ci] {
                continue;
            }
            // Normalize to a pair of ≤ rows: expr ≤ hi and expr ≥ lo.
            let (lo_rhs, hi_rhs) = match con.sense {
                ConstraintSense::Le => (f64::NEG_INFINITY, con.rhs),
                ConstraintSense::Ge => (con.rhs, f64::INFINITY),
                ConstraintSense::Eq => (con.rhs, con.rhs),
            };
            // Activity bounds.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(v, c) in &con.expr.terms {
                let (l, u) = (lb[v.index()], ub[v.index()]);
                if c >= 0.0 {
                    min_act += c * l;
                    max_act += c * u;
                } else {
                    min_act += c * u;
                    max_act += c * l;
                }
            }
            if min_act > hi_rhs + ACTIVITY_INFEAS_TOL || max_act < lo_rhs - ACTIVITY_INFEAS_TOL {
                return Presolved {
                    lb,
                    ub,
                    redundant,
                    infeasible: true,
                    tightenings,
                };
            }
            if max_act <= hi_rhs + TOL && min_act >= lo_rhs - TOL {
                redundant[ci] = true;
                changed = true;
                continue;
            }

            // Bound tightening per variable (skip rows with infinite
            // activity from unbounded partners).
            for &(v, c) in &con.expr.terms {
                if c.abs() < TOL {
                    continue;
                }
                let j = v.index();
                let (l, u) = (lb[j], ub[j]);
                // Activity of the rest of the row.
                let (self_min, self_max) = if c >= 0.0 {
                    (c * l, c * u)
                } else {
                    (c * u, c * l)
                };
                let rest_min = min_act - self_min;
                let rest_max = max_act - self_max;
                // expr ≤ hi_rhs:  c·x ≤ hi − rest_min.
                if hi_rhs.is_finite() && rest_min.is_finite() {
                    let cap = hi_rhs - rest_min;
                    if c > 0.0 {
                        let new_u = round_down(model, j, cap / c);
                        if new_u < ub[j] - TOL {
                            ub[j] = new_u;
                            changed = true;
                            tightenings += 1;
                        }
                    } else {
                        let new_l = round_up(model, j, cap / c);
                        if new_l > lb[j] + TOL {
                            lb[j] = new_l;
                            changed = true;
                            tightenings += 1;
                        }
                    }
                }
                // expr ≥ lo_rhs:  c·x ≥ lo − rest_max.
                if lo_rhs.is_finite() && rest_max.is_finite() {
                    let floor = lo_rhs - rest_max;
                    if c > 0.0 {
                        let new_l = round_up(model, j, floor / c);
                        if new_l > lb[j] + TOL {
                            lb[j] = new_l;
                            changed = true;
                            tightenings += 1;
                        }
                    } else {
                        let new_u = round_down(model, j, floor / c);
                        if new_u < ub[j] - TOL {
                            ub[j] = new_u;
                            changed = true;
                            tightenings += 1;
                        }
                    }
                }
                if lb[j] > ub[j] + ACTIVITY_INFEAS_TOL {
                    return Presolved {
                        lb,
                        ub,
                        redundant,
                        infeasible: true,
                        tightenings,
                    };
                }
            }
        }
        if !changed {
            break;
        }
    }
    let _ = n;
    Presolved {
        lb,
        ub,
        redundant,
        infeasible: false,
        tightenings,
    }
}

fn round_down(model: &Model, j: usize, v: f64) -> f64 {
    if model.vars[j].kind == VarKind::Continuous {
        v
    } else {
        (v + INT_ROUND_FUDGE).floor()
    }
}

fn round_up(model: &Model, j: usize, v: f64) -> f64 {
    if model.vars[j].kind == VarKind::Continuous {
        v
    } else {
        (v - INT_ROUND_FUDGE).ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn detects_infeasible_row() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 3.0);
        let p = presolve(&m);
        assert!(p.infeasible);
    }

    #[test]
    fn drops_redundant_rows() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_le([(a, 1.0)], 5.0); // always true
        m.add_le([(a, 1.0)], 0.4); // binding
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(p.redundant[0]);
        // Second row tightens a to 0 and then itself becomes redundant.
        assert_eq!(p.ub[a.index()], 0.0);
    }

    #[test]
    fn tightens_integer_bounds() {
        let mut m = Model::new();
        let k = m.add_integer("k", 0, 100);
        m.add_le([(k, 3.0)], 10.0); // k ≤ 3.33 → k ≤ 3
        let p = presolve(&m);
        assert_eq!(p.ub[k.index()], 3.0);
        assert!(p.tightenings >= 1);
    }

    #[test]
    fn forces_binary_from_ge_row() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 2.0); // both must be 1
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert_eq!(p.lb[a.index()], 1.0);
        assert_eq!(p.lb[b.index()], 1.0);
    }

    #[test]
    fn equality_rows_propagate_both_ways() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 3.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(p.ub[x.index()] <= 3.0 + 1e-9);
        assert!(p.ub[y.index()] <= 3.0 + 1e-9);
    }

    #[test]
    fn feasible_model_untouched_bounds_stay_valid() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let x = m.add_continuous("x", -5.0, 5.0);
        m.add_le([(a, 2.0), (x, 1.0)], 4.0);
        let p = presolve(&m);
        assert!(!p.infeasible);
        assert!(p.lb[x.index()] >= -5.0);
        assert!(p.ub[x.index()] <= 5.0);
        assert!(p.lb.iter().zip(&p.ub).all(|(l, u)| l <= u));
    }
}
