//! A small, dependency-free mixed-integer linear programming (MILP) solver.
//!
//! This crate stands in for CPLEX in the vm1dp reproduction of the DAC 2017
//! vertical-M1 detailed-placement paper. It provides:
//!
//! * [`Model`] — a builder for linear models with bounded continuous,
//!   binary, and general-integer variables, linear constraints, a linear
//!   (minimization) objective, and optional SOS1 groups;
//! * an LP solver (bounded-variable primal simplex, dense, two-phase) in
//!   [`lp`];
//! * a branch-and-bound MILP solver in [`solve`] / [`Solver`] with
//!   most-fractional and SOS1 branching, a rounding heuristic, warm starts,
//!   and node/time limits.
//!
//! The solver is exact on the model classes the workspace produces
//! (hundreds of bounded variables, big-M indicator constraints); its answers
//! are cross-checked in the test-suite against exhaustive enumeration.
//!
//! # Examples
//!
//! A tiny knapsack:
//!
//! ```
//! use vm1_milp::{Model, SolveParams, Status};
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! let z = m.add_binary("z");
//! // maximize 5x + 4y + 3z  <=>  minimize -(5x + 4y + 3z)
//! m.set_objective([(x, -5.0), (y, -4.0), (z, -3.0)]);
//! m.add_le([(x, 2.0), (y, 3.0), (z, 1.0)], 3.0);
//! let sol = vm1_milp::solve(&m, &SolveParams::default());
//! assert_eq!(sol.status, Status::Optimal);
//! assert!((sol.objective - (-8.0)).abs() < 1e-6); // x + z
//! ```

#![warn(missing_docs)]

pub mod audit;
mod branch;
pub mod cert;
pub mod lp;
mod model;
mod presolve;
pub mod tol;

pub use audit::{AuditFinding, AuditKind, AuditReport, AuditSeverity, BigMFix};
pub use branch::{
    solve, solve_certified, CertifiedSolution, MilpSolution, SolveParams, Solver, Status,
};
pub use cert::{BranchStep, CertNode, Certificate, NodeOutcome};
pub use model::{ConstraintSense, LinExpr, Model, VarId, VarKind};
