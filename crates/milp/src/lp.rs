//! Linear-programming relaxation solver: a dense, two-phase,
//! bounded-variable primal simplex with an explicitly maintained basis
//! inverse.
//!
//! The solver requires every structural variable to have a finite lower
//! bound (upper bounds may be infinite), which the workspace's placement
//! formulations always satisfy. Constraints of any sense are normalized to
//! equalities with slack variables; infeasible starting rows receive
//! artificial variables that phase 1 drives to zero.

//
// The simplex kernel walks parallel dense arrays (x, basis, binv, w) by
// row index; zipped iterators would obscure the linear algebra.
#![allow(clippy::needless_range_loop)]
use crate::model::{ConstraintSense, Model};
use crate::tol::{
    COST_TOL, FEAS_TOL, PHASE1_INFEAS_TOL, PIVOT_MIN, PIVOT_SKIP_TOL, RATIO_TIE_TOL,
    STALL_IMPROVE_TOL,
};

/// Outcome class of an LP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimum found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
    /// Iteration limit hit before convergence (treat as failure).
    IterLimit,
}

/// Result of [`solve_lp`].
#[derive(Clone, Debug)]
pub struct LpResult {
    /// Outcome class.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status` is `Optimal`).
    pub objective: f64,
    /// Values of the model's structural variables (empty unless `Optimal`).
    pub values: Vec<f64>,
    /// Row duals at the optimal basis, one per original model constraint
    /// (empty unless `Optimal`). Sign convention of the original row
    /// orientation: `<= 0` on `Le` rows, `>= 0` on `Ge` rows, free on `Eq`
    /// rows (up to [`crate::tol::COST_TOL`] drift). Any such vector is a
    /// weak-duality witness: `y·b + Σ_j min(d_j·l_j, d_j·u_j)` with reduced
    /// costs `d = c − yᵀA` lower-bounds the LP optimum.
    pub duals: Vec<f64>,
    /// Farkas-style infeasibility witness, one entry per original model
    /// constraint (empty unless `Infeasible` was proven by phase 1). Same
    /// sign convention as `duals`; evaluating the weak-duality bound with a
    /// zero objective yields a strictly positive value, contradicting
    /// feasibility.
    pub farkas: Vec<f64>,
    /// Simplex pivots performed over both phases (basis changes and bound
    /// flips).
    pub pivots: u64,
}

impl LpResult {
    fn of(status: LpStatus, objective: f64, pivots: u64) -> LpResult {
        LpResult {
            status,
            objective,
            values: Vec::new(),
            duals: Vec::new(),
            farkas: Vec::new(),
            pivots,
        }
    }
}

/// Solves the LP relaxation of `model` (integrality dropped).
///
/// `bounds` optionally overrides the per-variable `(lower, upper)` bounds —
/// this is how branch-and-bound fixes and tightens variables without
/// rebuilding the model.
///
/// # Panics
///
/// Panics if `bounds` arrays do not match the variable count or contain a
/// non-finite lower bound.
#[must_use]
pub fn solve_lp(model: &Model, bounds: Option<(&[f64], &[f64])>) -> LpResult {
    let n_struct = model.num_vars();
    let (lb_s, ub_s): (Vec<f64>, Vec<f64>) = match bounds {
        Some((lb, ub)) => {
            assert_eq!(lb.len(), n_struct, "bounds arity mismatch");
            assert_eq!(ub.len(), n_struct, "bounds arity mismatch");
            (lb.to_vec(), ub.to_vec())
        }
        None => (
            model.vars.iter().map(|v| v.lb).collect(),
            model.vars.iter().map(|v| v.ub).collect(),
        ),
    };
    for (i, &l) in lb_s.iter().enumerate() {
        assert!(l.is_finite(), "variable {i} has non-finite lower bound");
        if l > ub_s[i] + FEAS_TOL {
            // Bound contradiction: infeasible with no Farkas row witness
            // (the certificate checker validates this case from the bound
            // vectors directly).
            return LpResult::of(LpStatus::Infeasible, f64::INFINITY, 0);
        }
    }

    let mut sx = Simplex::build(model, &lb_s, &ub_s);
    sx.run()
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VStat {
    Basic,
    AtLower,
    AtUpper,
}

struct Simplex {
    m: usize,
    n: usize, // total columns: structural + slacks + artificials
    n_struct: usize,
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    x: Vec<f64>,
    stat: Vec<VStat>,
    basis: Vec<usize>,
    binv: Vec<Vec<f64>>,
    cost: Vec<f64>, // phase-2 (real) cost
    /// Per-row orientation applied during normalization (−1 where a `Ge`
    /// row was negated to `Le`); maps duals back to the original rows.
    flip: Vec<f64>,
    n_artificial: usize,
    pivots: u64,
}

impl Simplex {
    fn build(model: &Model, lb_s: &[f64], ub_s: &[f64]) -> Simplex {
        let m = model.num_constraints();
        let n_struct = model.num_vars();

        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_struct];
        let mut lb = lb_s.to_vec();
        let mut ub = ub_s.to_vec();
        let mut cost = model.objective.clone();
        let mut rhs = vec![0.0; m];
        let mut flips = vec![1.0; m];

        for (i, con) in model.constraints.iter().enumerate() {
            // Normalize Ge to Le by negation so every slack is >= 0.
            let flip = if con.sense == ConstraintSense::Ge {
                -1.0
            } else {
                1.0
            };
            flips[i] = flip;
            rhs[i] = con.rhs * flip;
            // Merge duplicate terms while scattering into columns.
            for &(v, c) in &con.expr.terms {
                let col = &mut cols[v.0];
                if let Some(last) = col.last_mut() {
                    if last.0 == i {
                        last.1 += c * flip;
                        continue;
                    }
                }
                col.push((i, c * flip));
            }
        }

        // Slack per row.
        let slack0 = n_struct;
        for i in 0..m {
            cols.push(vec![(i, 1.0)]);
            let eq = model.constraints[i].sense == ConstraintSense::Eq;
            lb.push(0.0);
            ub.push(if eq { 0.0 } else { f64::INFINITY });
            cost.push(0.0);
        }

        // Initial nonbasic values: bound nearest zero.
        let mut x = vec![0.0; slack0 + m];
        let mut stat = vec![VStat::AtLower; slack0 + m];
        for j in 0..n_struct {
            if ub[j].is_finite() && ub[j].abs() < lb[j].abs() {
                x[j] = ub[j];
                stat[j] = VStat::AtUpper;
            } else {
                x[j] = lb[j];
                stat[j] = VStat::AtLower;
            }
        }

        // Row residuals with all structural vars at their initial bounds.
        let mut resid = rhs.clone();
        for j in 0..n_struct {
            if x[j] != 0.0 {
                for &(i, a) in &cols[j] {
                    resid[i] -= a * x[j];
                }
            }
        }

        let mut basis = vec![usize::MAX; m];
        let mut binv: Vec<Vec<f64>> = (0..m)
            .map(|i| {
                let mut row = vec![0.0; m];
                row[i] = 1.0;
                row
            })
            .collect();
        let mut n_artificial = 0;

        for i in 0..m {
            let s = slack0 + i;
            let s_val = resid[i].clamp(lb[s], ub[s]);
            if (s_val - resid[i]).abs() <= FEAS_TOL {
                // Slack can absorb the residual: make it basic.
                basis[i] = s;
                x[s] = resid[i];
                stat[s] = VStat::Basic;
            } else {
                // Row infeasible at the initial point: slack nonbasic at its
                // clamped bound, artificial basic with the leftover.
                x[s] = s_val;
                stat[s] = if s_val <= lb[s] + FEAS_TOL {
                    VStat::AtLower
                } else {
                    VStat::AtUpper
                };
                let leftover = resid[i] - s_val;
                let sigma = if leftover >= 0.0 { 1.0 } else { -1.0 };
                let a = cols.len();
                cols.push(vec![(i, sigma)]);
                lb.push(0.0);
                ub.push(f64::INFINITY);
                cost.push(0.0);
                x.push(leftover.abs());
                stat.push(VStat::Basic);
                basis[i] = a;
                // Basis column is sigma * e_i, so its inverse row is sigma * e_i.
                binv[i][i] = sigma;
                n_artificial += 1;
            }
        }

        Simplex {
            m,
            n: cols.len(),
            n_struct,
            cols,
            lb,
            ub,
            x,
            stat,
            basis,
            binv,
            cost,
            flip: flips,
            n_artificial,
            pivots: 0,
        }
    }

    /// Row duals `y = c_B' B^{-1}` of the current basis under `cost`,
    /// mapped back to the original row orientation.
    fn row_duals(&self, cost: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (k, &bvar) in self.basis.iter().enumerate() {
            let cb = cost[bvar];
            if cb != 0.0 {
                let row = &self.binv[k];
                for i in 0..self.m {
                    y[i] += cb * row[i];
                }
            }
        }
        for (i, v) in y.iter_mut().enumerate() {
            *v *= self.flip[i];
        }
        y
    }

    fn run(&mut self) -> LpResult {
        if self.n_artificial > 0 {
            // Phase 1: minimize the sum of artificials.
            let mut c1 = vec![0.0; self.n];
            for j in (self.n - self.n_artificial)..self.n {
                c1[j] = 1.0;
            }
            match self.optimize(&c1) {
                InnerStatus::Optimal => {}
                InnerStatus::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
                InnerStatus::IterLimit => {
                    return LpResult::of(LpStatus::IterLimit, f64::NAN, self.pivots);
                }
            }
            let infeas: f64 = ((self.n - self.n_artificial)..self.n)
                .map(|j| self.x[j])
                .sum();
            if infeas > PHASE1_INFEAS_TOL {
                // The phase-1 dual at its optimum is a Farkas witness for
                // the original rows: with a zero objective its weak-duality
                // bound equals the (positive) residual infeasibility.
                let mut out = LpResult::of(LpStatus::Infeasible, f64::INFINITY, self.pivots);
                out.farkas = self.row_duals(&c1);
                return out;
            }
            // Pin artificials to zero for phase 2.
            for j in (self.n - self.n_artificial)..self.n {
                self.ub[j] = 0.0;
                if self.stat[j] != VStat::Basic {
                    self.x[j] = 0.0;
                    self.stat[j] = VStat::AtLower;
                }
            }
        }

        let c2 = self.cost.clone();
        let status = match self.optimize(&c2) {
            InnerStatus::Optimal => LpStatus::Optimal,
            InnerStatus::Unbounded => LpStatus::Unbounded,
            InnerStatus::IterLimit => LpStatus::IterLimit,
        };
        if status != LpStatus::Optimal {
            let objective = if status == LpStatus::Unbounded {
                f64::NEG_INFINITY
            } else {
                f64::NAN
            };
            return LpResult::of(status, objective, self.pivots);
        }
        let values: Vec<f64> = self.x[..self.n_struct].to_vec();
        let objective = values
            .iter()
            .zip(&self.cost[..self.n_struct])
            .map(|(x, c)| x * c)
            .sum();
        let mut out = LpResult::of(LpStatus::Optimal, objective, self.pivots);
        out.values = values;
        out.duals = self.row_duals(&c2);
        out
    }

    /// Primal simplex inner loop for a given cost vector.
    fn optimize(&mut self, cost: &[f64]) -> InnerStatus {
        let iter_limit = 200 * (self.m + self.n) + 2000;
        let mut bland = false;
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;

        for _ in 0..iter_limit {
            // y = c_B' B^{-1}
            let mut y = vec![0.0; self.m];
            for (k, &bvar) in self.basis.iter().enumerate() {
                let cb = cost[bvar];
                if cb != 0.0 {
                    let row = &self.binv[k];
                    for i in 0..self.m {
                        y[i] += cb * row[i];
                    }
                }
            }

            // Pricing.
            let mut enter: Option<(usize, f64, f64)> = None; // (var, |d|, dir)
            for j in 0..self.n {
                match self.stat[j] {
                    VStat::Basic => continue,
                    VStat::AtLower | VStat::AtUpper => {}
                }
                // Fixed variables can never move.
                if self.ub[j] - self.lb[j] <= FEAS_TOL {
                    continue;
                }
                let mut d = cost[j];
                for &(i, a) in &self.cols[j] {
                    d -= y[i] * a;
                }
                let (favorable, dir) = match self.stat[j] {
                    VStat::AtLower => (d < -COST_TOL, 1.0),
                    VStat::AtUpper => (d > COST_TOL, -1.0),
                    VStat::Basic => unreachable!(),
                };
                if favorable {
                    if bland {
                        enter = Some((j, d.abs(), dir));
                        break;
                    }
                    if enter.is_none_or(|(_, mag, _)| d.abs() > mag) {
                        enter = Some((j, d.abs(), dir));
                    }
                }
            }

            let Some((j, _, dir)) = enter else {
                return InnerStatus::Optimal;
            };

            // Direction w = B^{-1} A_j.
            let mut w = vec![0.0; self.m];
            for &(i, a) in &self.cols[j] {
                for k in 0..self.m {
                    w[k] += self.binv[k][i] * a;
                }
            }

            // Ratio test: x_B(k) changes at rate g_k = -dir * w_k per unit t.
            let mut t_best = if self.ub[j].is_finite() {
                self.ub[j] - self.lb[j]
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, VStat)> = None; // (row, bound hit)
            let mut leave_g = 0.0f64; // |g| of the current leaving candidate
            for k in 0..self.m {
                let g = -dir * w[k];
                let bvar = self.basis[k];
                let (t, hit) = if g > FEAS_TOL {
                    if !self.ub[bvar].is_finite() {
                        continue;
                    }
                    ((self.ub[bvar] - self.x[bvar]) / g, VStat::AtUpper)
                } else if g < -FEAS_TOL {
                    ((self.x[bvar] - self.lb[bvar]) / (-g), VStat::AtLower)
                } else {
                    continue;
                };
                // Strictly smaller ratio wins; on ties prefer the larger
                // |pivot| for numerical stability.
                if t < t_best - RATIO_TIE_TOL || (t < t_best + RATIO_TIE_TOL && g.abs() > leave_g) {
                    t_best = t.max(0.0);
                    leave = Some((k, hit));
                    leave_g = g.abs();
                }
            }

            if t_best.is_infinite() {
                return InnerStatus::Unbounded;
            }

            // Apply the move (each applied move — basis change or bound
            // flip — counts as one pivot).
            self.pivots += 1;
            for k in 0..self.m {
                let g = -dir * w[k];
                let bvar = self.basis[k];
                self.x[bvar] += g * t_best;
            }
            self.x[j] += dir * t_best;

            match leave {
                None => {
                    // Bound flip of the entering variable.
                    self.stat[j] = if dir > 0.0 {
                        VStat::AtUpper
                    } else {
                        VStat::AtLower
                    };
                    self.x[j] = if dir > 0.0 { self.ub[j] } else { self.lb[j] };
                }
                Some((r, hit)) => {
                    let old = self.basis[r];
                    self.stat[old] = hit;
                    self.x[old] = match hit {
                        VStat::AtLower => self.lb[old],
                        VStat::AtUpper => self.ub[old],
                        VStat::Basic => unreachable!(),
                    };
                    self.basis[r] = j;
                    self.stat[j] = VStat::Basic;
                    // Pivot the inverse on w_r.
                    let piv = w[r];
                    debug_assert!(piv.abs() > PIVOT_MIN, "pivot too small: {piv}");
                    let inv_piv = 1.0 / piv;
                    for i in 0..self.m {
                        self.binv[r][i] *= inv_piv;
                    }
                    for k in 0..self.m {
                        if k != r && w[k].abs() > PIVOT_SKIP_TOL {
                            let f = w[k];
                            for i in 0..self.m {
                                self.binv[k][i] -= f * self.binv[r][i];
                            }
                        }
                    }
                }
            }

            // Cycling watchdog: if the objective stops improving, switch to
            // Bland's rule, which guarantees termination.
            let obj: f64 = (0..self.n).map(|v| cost[v] * self.x[v]).sum();
            if obj < last_obj - STALL_IMPROVE_TOL {
                stall = 0;
                bland = false;
            } else {
                stall += 1;
                if stall > 2 * self.m + 20 {
                    bland = true;
                }
            }
            last_obj = obj;
        }
        InnerStatus::IterLimit
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
    IterLimit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_2d_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 3.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_le([(x, 1.0), (y, 1.0)], 4.0);
        m.set_objective([(x, -1.0), (y, -2.0)]);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -6.0);
        assert_close(r.values[0], 2.0);
        assert_close(r.values[1], 2.0);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // min x + y  s.t. x + y >= 3, x - y == 1, 0 <= x,y <= 10
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_ge([(x, 1.0), (y, 1.0)], 3.0);
        m.add_eq([(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, 3.0);
        assert_close(r.values[0], 2.0);
        assert_close(r.values[1], 1.0);
    }

    #[test]
    fn infeasible_lp() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_ge([(x, 1.0)], 2.0);
        m.set_objective([(x, 1.0)]);
        assert_eq!(solve_lp(&m, None).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_lp() {
        // min -s where s is a <=-slack-like free growth: x <= inf upper bound.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective([(x, -1.0)]);
        assert_eq!(solve_lp(&m, None).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_bounds() {
        // min x  with -5 <= x <= -1
        let mut m = Model::new();
        let x = m.add_continuous("x", -5.0, -1.0);
        m.set_objective([(x, 1.0)]);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[0], -5.0);
    }

    #[test]
    fn equality_system() {
        // x + y == 5, x - y == 1  =>  x=3, y=2 (only feasible point matters)
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_eq([(x, 1.0), (y, 1.0)], 5.0);
        m.add_eq([(x, 1.0), (y, -1.0)], 1.0);
        m.set_objective([(x, 1.0)]);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.values[0], 3.0);
        assert_close(r.values[1], 2.0);
    }

    #[test]
    fn bound_override_tightens() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        m.set_objective([(x, -1.0)]);
        let r = solve_lp(&m, None);
        assert_close(r.values[0], 10.0);
        let lb = [0.0];
        let ub = [4.0];
        let r2 = solve_lp(&m, Some((&lb, &ub)));
        assert_close(r2.values[0], 4.0);
    }

    #[test]
    fn bound_override_infeasible() {
        let mut m = Model::new();
        let _ = m.add_continuous("x", 0.0, 10.0);
        m.set_objective([]);
        let lb = [5.0];
        let ub = [4.0];
        assert_eq!(solve_lp(&m, Some((&lb, &ub))).status, LpStatus::Infeasible);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        // (x + x) <= 4  =>  x <= 2
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        m.add_le([(x, 1.0), (x, 1.0)], 4.0);
        m.set_objective([(x, -1.0)]);
        let r = solve_lp(&m, None);
        assert_close(r.values[0], 2.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        for k in 1..8 {
            m.add_le([(x, 1.0), (y, k as f64)], 4.0);
        }
        m.set_objective([(x, -1.0), (y, -1.0)]);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        assert_close(r.objective, -4.0);
    }

    #[test]
    fn bigger_random_like_lp() {
        // Diet-style problem: min cost subject to coverage rows.
        let mut m = Model::new();
        let foods: Vec<_> = (0..6)
            .map(|i| m.add_continuous(&format!("f{i}"), 0.0, 100.0))
            .collect();
        let costs = [2.0, 3.0, 1.5, 4.0, 2.5, 1.0];
        let nutrients = [
            [1.0, 0.0, 2.0, 1.0, 0.5, 0.2],
            [0.5, 1.0, 0.0, 2.0, 1.0, 0.1],
            [0.2, 0.8, 1.0, 0.0, 1.5, 0.3],
        ];
        for row in &nutrients {
            let expr: Vec<_> = foods.iter().zip(row).map(|(&f, &a)| (f, a)).collect();
            m.add_ge(expr, 10.0);
        }
        let obj: Vec<_> = foods.iter().zip(&costs).map(|(&f, &c)| (f, c)).collect();
        m.set_objective(obj);
        let r = solve_lp(&m, None);
        assert_eq!(r.status, LpStatus::Optimal);
        // Verify primal feasibility of the reported point.
        for row in &nutrients {
            let v: f64 = r.values.iter().zip(row).map(|(x, a)| x * a).sum();
            assert!(v >= 10.0 - 1e-6);
        }
        assert!(r.objective > 0.0);
    }
}
