//! Optimality/infeasibility certificates recorded by branch-and-bound.
//!
//! [`crate::solve_certified`] returns, next to the usual
//! [`crate::MilpSolution`], a [`Certificate`]: a replayable trace of the
//! search sufficient for an *independent* checker to confirm the claimed
//! outcome without trusting the solver —
//!
//! * the root domain branch and bound actually searched (presolve-tightened
//!   bounds),
//! * the branching tree, each node identified by the bound change that
//!   created it ([`BranchStep`]), so node domains can be reconstructed
//!   exactly,
//! * a weak-duality witness per solved node ([`NodeOutcome::Bounded`]):
//!   the LP row duals, from which any verifier can recompute a lower bound
//!   on that subtree's optimum,
//! * a Farkas-style witness per LP-infeasible node
//!   ([`NodeOutcome::Infeasible`]),
//! * the final incumbent with integer coordinates rounded to exact
//!   integers.
//!
//! The certificate deliberately records *witnesses*, not conclusions: the
//! checker in the `vm1-certify` crate recomputes every bound from the
//! witnesses in exact rational arithmetic and accepts a claimed
//! [`Status::Optimal`] only when the incumbent's exact objective is
//! sandwiched by the recomputed tree bound.

use crate::branch::Status;

/// The bound change that created a branch-and-bound child node, relative
/// to its parent's domain.
#[derive(Clone, Debug, PartialEq)]
pub enum BranchStep {
    /// `var <= ub` (the "down" side of a floor/ceil split; `ub` is an
    /// exact integer for integer-kind variables).
    SetUb {
        /// Index of the branched variable.
        var: usize,
        /// New upper bound.
        ub: f64,
    },
    /// `var >= lb` (the "up" side of a floor/ceil split).
    SetLb {
        /// Index of the branched variable.
        var: usize,
        /// New lower bound.
        lb: f64,
    },
    /// SOS1 branching: every listed member of SOS1 group `group` is fixed
    /// to zero (`ub := 0`). Sound only because the group carries a
    /// `sum == 1` convexity row; the checker re-validates that row before
    /// trusting the split.
    ForbidSet {
        /// Index into the model's SOS1 group list.
        group: usize,
        /// Variable indices forced to zero in this child.
        vars: Vec<usize>,
    },
}

/// What the search concluded at one node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeOutcome {
    /// The node was never solved: pruned by its parent's bound, dropped at
    /// an iteration/node/time limit, or still on the stack when the search
    /// stopped. Its subtree is covered by the nearest ancestor's dual
    /// bound.
    Open,
    /// The node's LP relaxation is infeasible. `farkas` holds the phase-1
    /// dual witness (one entry per model row); it is empty when
    /// infeasibility came from a direct bound contradiction (`lb > ub`)
    /// or from root presolve, both of which the checker re-derives
    /// without a witness.
    Infeasible {
        /// Farkas-style row multipliers (possibly empty, see above).
        farkas: Vec<f64>,
    },
    /// The node's LP relaxation solved to optimality. `duals` holds the
    /// row duals at the optimal basis (one entry per model row), a
    /// weak-duality witness for a lower bound on the node's subdomain.
    Bounded {
        /// LP row duals in the original row orientation.
        duals: Vec<f64>,
    },
}

/// One node of the recorded branching tree. Nodes appear in creation
/// order, so a parent's index is always smaller than its children's.
#[derive(Clone, Debug, PartialEq)]
pub struct CertNode {
    /// Index of the parent node (`None` for the root, index 0).
    pub parent: Option<usize>,
    /// The bound change that created this node (`None` for the root).
    pub step: Option<BranchStep>,
    /// What the search concluded here.
    pub outcome: NodeOutcome,
}

/// A replayable record of one branch-and-bound solve (see the module
/// docs for the exact semantics of each part).
#[derive(Clone, Debug)]
#[must_use = "a certificate is only useful if it is checked"]
pub struct Certificate {
    /// The status the solver claims.
    pub status: Status,
    /// The incumbent objective the solver claims (`+∞` when none).
    pub objective: f64,
    /// The best lower bound the solver claims.
    pub best_bound: f64,
    /// The absolute optimality gap the solve was run with: `Optimal`
    /// claims mean "within `abs_gap` of the true optimum".
    pub abs_gap: f64,
    /// The best integer-feasible assignment found, with integer-kind
    /// coordinates rounded to exact integers (`None` when no solution was
    /// found).
    pub incumbent: Option<Vec<f64>>,
    /// Root-domain lower bounds (after presolve tightening).
    pub root_lb: Vec<f64>,
    /// Root-domain upper bounds (after presolve tightening).
    pub root_ub: Vec<f64>,
    /// The branching tree in creation order (empty only when the search
    /// never constructed a root, e.g. a presolve-infeasible model records
    /// a single root node instead).
    pub nodes: Vec<CertNode>,
}

impl Certificate {
    /// Number of leaf nodes (nodes without children) in the recorded tree.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        let mut has_child = vec![false; self.nodes.len()];
        for node in &self.nodes {
            if let Some(p) = node.parent {
                has_child[p] = true;
            }
        }
        has_child.iter().filter(|&&c| !c).count()
    }

    /// One-line human summary (status, node/leaf counts, claimed values).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:?}: {} nodes ({} leaves), claimed objective {:.6}, claimed bound {:.6}, gap {:.2e}",
            self.status,
            self.nodes.len(),
            self.num_leaves(),
            self.objective,
            self.best_bound,
            self.abs_gap,
        )
    }
}
