//! Named numeric tolerances shared by the solver stack and the audit
//! layer.
//!
//! Every floating-point slack the MILP crate uses lives here, with its
//! rationale, instead of as an anonymous `1e-…` literal at the point of
//! use (`scripts/lint` forbids raw negative-exponent float literals in
//! this crate's library code outside this module). Two groups:
//!
//! * **Solver tolerances** — how far the simplex / branch-and-bound let
//!   floating arithmetic drift before a comparison flips. These are
//!   engineering knobs: loosening them hides infeasibility, tightening
//!   them causes cycling on ill-conditioned bases.
//! * **Audit tolerances** — what the static model linter treats as
//!   "equal" when pattern-matching model structure. These should stay at
//!   least as tight as the solver tolerances so the lint never blesses a
//!   model the solver would mishandle.
//!
//! The `vm1-certify` checker deliberately uses none of these: its
//! verdict path is exact rational arithmetic with its own dyadic
//! constants (see that crate's docs).

/// Primal feasibility tolerance of the bounded-variable simplex: a
/// variable is "at" a bound, and a ratio-test step is "blocked", within
/// this absolute slack.
pub const FEAS_TOL: f64 = 1e-7;

/// Dual (reduced-cost) tolerance of the simplex pricing step: a
/// nonbasic variable enters only if its reduced cost is favorable by
/// more than this, so extracted duals satisfy their sign conditions to
/// within `COST_TOL`.
pub const COST_TOL: f64 = 1e-7;

/// Residual sum of artificial variables above which phase 1 declares
/// the LP infeasible. Looser than [`FEAS_TOL`] because it accumulates
/// over all rows.
pub const PHASE1_INFEAS_TOL: f64 = 1e-6;

/// Ratio-test tie window: two blocking ratios within this of each other
/// are treated as tied and broken by pivot magnitude (numerical
/// stability beats Dantzig order on ties).
pub const RATIO_TIE_TOL: f64 = 1e-12;

/// Smallest pivot element the basis-inverse update accepts; below this
/// the update would amplify error catastrophically (guarded by a debug
/// assertion).
pub const PIVOT_MIN: f64 = 1e-12;

/// Eta-update skip threshold: basis-inverse rows whose multiplier is
/// below this are left untouched (the update would be pure noise).
pub const PIVOT_SKIP_TOL: f64 = 1e-13;

/// Minimum objective improvement per pivot that counts as progress for
/// the anti-cycling watchdog; stalls longer than a basis-size multiple
/// switch the pricing rule to Bland's.
pub const STALL_IMPROVE_TOL: f64 = 1e-10;

/// Integrality tolerance of branch-and-bound: an LP value within this
/// of an integer is considered integral (CPLEX's default integrality
/// tolerance is 1e-5; ours is tighter because window models are small).
pub const INT_TOL: f64 = 1e-6;

/// Feasibility tolerance for full-assignment checks
/// ([`crate::Model::is_feasible`] calls made by the solver on warm
/// starts and rounding-heuristic candidates).
pub const FEASIBILITY_TOL: f64 = 1e-6;

/// Default absolute optimality gap of [`crate::SolveParams`]: incumbents
/// within this of the best bound stop the search.
pub const DEFAULT_ABS_GAP: f64 = 1e-6;

/// Presolve comparison tolerance: bound changes smaller than this are
/// not applied (they would churn the fixpoint without tightening
/// anything an LP could distinguish).
pub const PRESOLVE_TOL: f64 = 1e-9;

/// Activity slack beyond which presolve declares a row infeasible.
/// Deliberately looser than [`PRESOLVE_TOL`]: proving infeasibility
/// from accumulated float activity needs headroom.
pub const ACTIVITY_INFEAS_TOL: f64 = 1e-7;

/// Fudge added/subtracted before integral rounding in presolve so a
/// bound that is an integer up to float noise (2.9999999…) rounds to
/// that integer, not past it.
pub const INT_ROUND_FUDGE: f64 = 1e-7;

/// Audit: big-M slack above which the model linter reports a loose
/// indicator coefficient.
pub const BIGM_SLACK_TOL: f64 = 1e-6;

/// Audit: how closely a convexity row's rhs and coefficients must match
/// 1 to count as a `sum == 1` row for an SOS1 group.
pub const UNIT_COEFF_TOL: f64 = 1e-9;

/// Audit: coefficients below this are treated as structurally zero when
/// pattern-matching rows.
pub const COEFF_ZERO_TOL: f64 = 1e-12;

/// Relative-tolerance float comparison: `a` and `b` are close if their
/// difference is within `tol` scaled by the larger magnitude (with an
/// absolute floor of `tol` for values near zero). Use this instead of a
/// raw `(a - b).abs() < eps` whenever the compared quantities can be
/// large — window objectives reach 1e9 nm, where an absolute 1e-5 test
/// is meaninglessly strict.
#[must_use]
pub fn approx_eq_rel(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_rel_scales_with_magnitude() {
        // Absolute regime near zero.
        assert!(approx_eq_rel(0.0, 1e-7, 1e-6));
        assert!(!approx_eq_rel(0.0, 1e-3, 1e-6));
        // Relative regime for large values: 1e9 ± 100 is within 1e-6
        // relative, but far outside 1e-6 absolute.
        assert!(approx_eq_rel(1e9, 1e9 + 100.0, 1e-6));
        assert!(!approx_eq_rel(1e9, 1e9 + 1e5, 1e-6));
    }

    #[test]
    fn audit_tolerances_not_looser_than_solver() {
        const { assert!(UNIT_COEFF_TOL <= FEAS_TOL) };
        const { assert!(COEFF_ZERO_TOL <= FEAS_TOL) };
    }
}
