//! Certificate checks on degenerate and adversarial LPs: redundant
//! rows (degenerate duals), infeasibility that per-row presolve cannot
//! detect (a genuine Farkas witness), the warm-started zero-gap early
//! exit, and mutation tests on solver-produced certificates.

use vm1_milp::{solve_certified, Model, NodeOutcome, SolveParams, Status};

/// Redundant rows make the LP basis degenerate and the dual solution
/// non-unique; whichever duals the solver reports must still verify.
#[test]
fn redundant_rows_certificate_accepted() {
    let mut m = Model::new();
    let x = m.add_binary("x");
    let y = m.add_binary("y");
    let z = m.add_binary("z");
    m.set_objective([(x, -3.0), (y, -2.0), (z, -1.0)]);
    // The same knapsack row three times, plus a strictly looser copy.
    for _ in 0..3 {
        m.add_le([(x, 2.0), (y, 1.0), (z, 1.0)], 2.0);
    }
    m.add_le([(x, 2.0), (y, 1.0), (z, 1.0)], 5.0);
    let certified = solve_certified(&m, &SolveParams::default());
    assert_eq!(certified.solution.status, Status::Optimal);
    let report = vm1_certify::check(&m, &certified.certificate);
    assert!(report.accepted, "{}", report.summary());
}

/// An infeasible model whose infeasibility no single row reveals:
/// pairwise-sum lower bounds force `x+y+z >= 1.8` while the last row
/// caps the sum at 1.7, but per-row bound propagation reaches a
/// fixpoint with every variable in `[0.2, 1]`. Only the LP's phase-1
/// Farkas witness (a combination of all four rows) proves it.
#[test]
fn presolve_resistant_infeasibility_certified() {
    let mut m = Model::new();
    let x = m.add_continuous("x", 0.0, 1.0);
    let y = m.add_continuous("y", 0.0, 1.0);
    let z = m.add_continuous("z", 0.0, 1.0);
    m.set_objective([(x, 1.0)]);
    m.add_ge([(x, 1.0), (y, 1.0)], 1.2);
    m.add_ge([(x, 1.0), (z, 1.0)], 1.2);
    m.add_ge([(y, 1.0), (z, 1.0)], 1.2);
    m.add_le([(x, 1.0), (y, 1.0), (z, 1.0)], 1.7);
    let certified = solve_certified(&m, &SolveParams::default());
    assert_eq!(certified.solution.status, Status::Infeasible);
    // The root must carry a nonempty Farkas witness: this infeasibility
    // is not a bound contradiction the presolve could have found.
    let has_farkas =
        certified.certificate.nodes.iter().any(
            |n| matches!(&n.outcome, NodeOutcome::Infeasible { farkas } if !farkas.is_empty()),
        );
    assert!(has_farkas, "expected an LP-derived Farkas witness");
    let report = vm1_certify::check(&m, &certified.certificate);
    assert!(report.accepted, "{}", report.summary());
}

/// A warm-start incumbent that already matches the LP relaxation bound
/// lets branch-and-bound exit at the root with zero gap; the resulting
/// one-node certificate must still carry everything the checker needs.
#[test]
fn zero_gap_warm_start_certified() {
    let mut m = Model::new();
    let x = m.add_binary("x");
    let y = m.add_binary("y");
    m.set_objective([(x, -1.0), (y, -2.0)]);
    m.add_le([(x, 1.0), (y, 1.0)], 1.0);
    // LP optimum is the integral point (0, 1) with objective -2; warm
    // starting there means incumbent == relaxation bound at the root.
    let params = SolveParams {
        warm_start: Some(vec![0.0, 1.0]),
        ..SolveParams::default()
    };
    let certified = solve_certified(&m, &params);
    assert_eq!(certified.solution.status, Status::Optimal);
    assert!((certified.solution.objective + 2.0).abs() < 1e-9);
    let report = vm1_certify::check(&m, &certified.certificate);
    assert!(report.accepted, "{}", report.summary());
}

/// Mutating one incumbent coordinate of a genuine solver certificate
/// must be caught by the exact integrality/feasibility replay.
#[test]
fn mutated_incumbent_coordinate_rejected() {
    let mut m = Model::new();
    let x = m.add_binary("x");
    let y = m.add_binary("y");
    m.set_objective([(x, -3.0), (y, -2.0)]);
    m.add_le([(x, 1.0), (y, 1.0)], 1.0);
    let mut certified = solve_certified(&m, &SolveParams::default());
    assert_eq!(certified.solution.status, Status::Optimal);
    let inc = certified
        .certificate
        .incumbent
        .as_mut()
        .expect("optimal solve has an incumbent");
    inc[0] = 0.5; // fractional: no longer a valid integral point
    let report = vm1_certify::check(&m, &certified.certificate);
    assert!(!report.accepted, "mutated incumbent must be rejected");
}

/// Zeroing the dual witnesses of a genuine certificate collapses every
/// leaf bound; the claimed optimum is then no longer sandwiched.
#[test]
fn mutated_dual_values_rejected() {
    let mut m = Model::new();
    let x = m.add_binary("x");
    let y = m.add_binary("y");
    let z = m.add_binary("z");
    m.set_objective([(x, -5.0), (y, -4.0), (z, -3.0)]);
    m.add_le([(x, 2.0), (y, 3.0), (z, 1.0)], 3.0);
    let mut certified = solve_certified(&m, &SolveParams::default());
    assert_eq!(certified.solution.status, Status::Optimal);
    let mut tampered = 0usize;
    for node in &mut certified.certificate.nodes {
        if let NodeOutcome::Bounded { duals } = &mut node.outcome {
            for d in duals.iter_mut() {
                *d = 0.0;
            }
            tampered += 1;
        }
    }
    assert!(tampered > 0, "expected at least one bounded node");
    let report = vm1_certify::check(&m, &certified.certificate);
    assert!(!report.accepted, "mutated duals must be rejected");
}
