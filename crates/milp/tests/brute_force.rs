//! Cross-validation of the branch-and-bound solver against exhaustive
//! enumeration on randomly generated binary programs.
//!
//! For pure-binary models we can enumerate all 2^n assignments, check
//! feasibility directly, and compare the optimum to the solver's answer.
//! A mismatch in either direction (missed optimum or claimed-feasible
//! infeasibility) fails the test.
//!
//! Every solve runs through `solve_certified`, and the recorded
//! certificate must be accepted by the independent exact-arithmetic
//! checker (`vm1-certify`) — so each random model also exercises the
//! full proof-carrying path.

use proptest::prelude::*;
use vm1_milp::{solve_certified, Model, SolveParams, Status, VarId};

/// A randomly parameterized pure-binary program.
#[derive(Debug, Clone)]
struct RandomBip {
    n_vars: usize,
    /// Per-constraint: (coefficients, rhs); sense is `<=`.
    cons: Vec<(Vec<f64>, f64)>,
    obj: Vec<f64>,
}

fn bip_strategy() -> impl Strategy<Value = RandomBip> {
    (2usize..7)
        .prop_flat_map(|n_vars| {
            let cons = proptest::collection::vec(
                (
                    proptest::collection::vec(-4i32..5, n_vars),
                    -3i32..(3 * n_vars as i32),
                ),
                1..5,
            );
            let obj = proptest::collection::vec(-5i32..6, n_vars);
            (Just(n_vars), cons, obj)
        })
        .prop_map(|(n_vars, cons, obj)| RandomBip {
            n_vars,
            cons: cons
                .into_iter()
                .map(|(c, r)| (c.into_iter().map(f64::from).collect(), f64::from(r)))
                .collect(),
            obj: obj.into_iter().map(f64::from).collect(),
        })
}

fn build_model(bip: &RandomBip) -> (Model, Vec<VarId>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..bip.n_vars)
        .map(|i| m.add_binary(&format!("b{i}")))
        .collect();
    for (coeffs, rhs) in &bip.cons {
        let expr: Vec<_> = vars.iter().zip(coeffs).map(|(&v, &c)| (v, c)).collect();
        m.add_le(expr, *rhs);
    }
    let obj: Vec<_> = vars.iter().zip(&bip.obj).map(|(&v, &c)| (v, c)).collect();
    m.set_objective(obj);
    (m, vars)
}

/// Exhaustive optimum: `None` when infeasible.
fn brute_force(bip: &RandomBip) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << bip.n_vars) {
        let x: Vec<f64> = (0..bip.n_vars)
            .map(|i| f64::from((mask >> i) & 1))
            .collect();
        let feasible = bip.cons.iter().all(|(coeffs, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            lhs <= rhs + 1e-9
        });
        if feasible {
            let obj: f64 = bip.obj.iter().zip(&x).map(|(c, xi)| c * xi).sum();
            best = Some(best.map_or(obj, |b: f64| b.min(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn solver_matches_brute_force(bip in bip_strategy()) {
        let (model, _) = build_model(&bip);
        let expected = brute_force(&bip);
        let certified = solve_certified(&model, &SolveParams::default());
        let report = vm1_certify::check(&model, &certified.certificate);
        prop_assert!(report.accepted, "{}", report.summary());
        let sol = certified.solution;
        match expected {
            None => prop_assert_eq!(sol.status, Status::Infeasible),
            Some(opt) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!((sol.objective - opt).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, opt);
                // The reported assignment must itself be feasible and attain
                // the objective.
                prop_assert!(model.is_feasible(&sol.values, 1e-6));
                prop_assert!((model.objective_value(&sol.values) - opt).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn mixed_binary_continuous_matches_enumeration(
        coeffs in proptest::collection::vec(-3i32..4, 3),
        cap in 0i32..8,
        price in proptest::collection::vec(-4i32..5, 3),
        cub in 1u8..6,
    ) {
        // minimize  price . b + (-1) * y   subject to
        //   coeffs . b + y <= cap,  0 <= y <= cub, b binary.
        // For each of the 8 binary assignments the continuous optimum for y
        // is min(cub, cap - coeffs . b) when nonnegative, else infeasible...
        // y >= 0 so assignment feasible iff cap - coeffs.b >= 0.
        let mut m = Model::new();
        let bs: Vec<VarId> = (0..3).map(|i| m.add_binary(&format!("b{i}"))).collect();
        let y = m.add_continuous("y", 0.0, f64::from(cub));
        let mut expr: Vec<_> = bs.iter().zip(&coeffs).map(|(&b, &c)| (b, f64::from(c))).collect();
        expr.push((y, 1.0));
        m.add_le(expr, f64::from(cap));
        let mut obj: Vec<_> = bs.iter().zip(&price).map(|(&b, &p)| (b, f64::from(p))).collect();
        obj.push((y, -1.0));
        m.set_objective(obj);

        let mut expected: Option<f64> = None;
        for mask in 0u32..8 {
            let bvals: Vec<f64> = (0..3).map(|i| f64::from((mask >> i) & 1)).collect();
            let used: f64 = coeffs.iter().zip(&bvals).map(|(c, b)| f64::from(*c) * b).sum();
            let room = f64::from(cap) - used;
            if room < -1e-9 {
                continue;
            }
            let yv = room.min(f64::from(cub)).max(0.0);
            let o: f64 = price.iter().zip(&bvals).map(|(p, b)| f64::from(*p) * b).sum::<f64>() - yv;
            expected = Some(expected.map_or(o, |e: f64| e.min(o)));
        }

        let certified = solve_certified(&m, &SolveParams::default());
        let report = vm1_certify::check(&m, &certified.certificate);
        prop_assert!(report.accepted, "{}", report.summary());
        let sol = certified.solution;
        match expected {
            None => prop_assert_eq!(sol.status, Status::Infeasible),
            Some(opt) => {
                prop_assert_eq!(sol.status, Status::Optimal);
                prop_assert!((sol.objective - opt).abs() < 1e-6,
                    "solver {} vs enumeration {}", sol.objective, opt);
            }
        }
    }
}
