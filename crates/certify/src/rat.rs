//! Exact rational arithmetic on `i128` numerator/denominator pairs.
//!
//! Every operation is checked: a result that would overflow `i128`
//! returns [`Overflow`] instead of a rounded value, and the caller (the
//! certificate checker) treats that as "cannot verify" — the checker
//! fails closed rather than ever accepting on approximate arithmetic.
//! There are deliberately no conversions back to floating point on any
//! path that feeds a verdict.

// The arithmetic here is fallible (`Result<_, Overflow>`), so the std
// operator traits — whose methods must return `Self` — cannot express
// it; the inherent `add`/`sub`/`mul`/`div`/`neg` names are intentional.
#![allow(clippy::should_implement_trait)]

use std::cmp::Ordering;
use std::fmt;

/// An exact computation overflowed `i128` (or divided by zero); the
/// result cannot be represented and the enclosing check must fail
/// closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overflow;

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("exact-arithmetic overflow")
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    if a == 0 {
        1
    } else {
        a
    }
}

/// An exact rational number: `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rat {
    num: i128,
    den: i128,
}

impl Rat {
    /// Exact zero.
    #[must_use]
    pub const fn zero() -> Rat {
        Rat { num: 0, den: 1 }
    }

    /// Exact one.
    #[must_use]
    pub const fn one() -> Rat {
        Rat { num: 1, den: 1 }
    }

    /// The integer `n` as a rational.
    #[must_use]
    pub const fn from_int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// The dyadic rational `1 / 2^k` (`k <= 126`).
    ///
    /// # Panics
    ///
    /// Panics if `k > 126` (the denominator would overflow `i128`); the
    /// checker only calls this with small compile-time constants.
    #[must_use]
    pub fn dyadic(k: u32) -> Rat {
        assert!(k <= 126, "dyadic exponent {k} too large");
        Rat {
            num: 1,
            den: 1i128 << k,
        }
    }

    /// Builds `num / den` in lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Rat, Overflow> {
        if den == 0 {
            return Err(Overflow);
        }
        let sign = if (num < 0) == (den < 0) { 1 } else { -1 };
        let (nu, du) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd(nu, du);
        let nu = nu / g;
        let du = du / g;
        if nu > i128::MAX as u128 || du > i128::MAX as u128 {
            return Err(Overflow);
        }
        Ok(Rat {
            num: sign * nu as i128,
            den: du as i128,
        })
    }

    /// Converts a **finite** `f64` exactly (every finite double is a
    /// dyadic rational). Values whose exact form does not fit `i128`
    /// (magnitude above ~2^74 or below ~2^-74) and non-finite values
    /// report [`Overflow`].
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] for non-finite or non-representable inputs.
    pub fn from_f64(x: f64) -> Result<Rat, Overflow> {
        if !x.is_finite() {
            return Err(Overflow);
        }
        let bits = x.to_bits();
        let sign: i128 = if bits >> 63 == 1 { -1 } else { 1 };
        let exp_bits = ((bits >> 52) & 0x7ff) as i64;
        let frac = (bits & ((1u64 << 52) - 1)) as i128;
        let (mant, exp) = if exp_bits == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1i128 << 52), exp_bits - 1075)
        };
        if mant == 0 {
            return Ok(Rat::zero());
        }
        if exp >= 0 {
            if exp > 74 {
                return Err(Overflow); // mant << exp exceeds i128
            }
            Rat::new(sign * (mant << exp), 1)
        } else {
            if -exp > 126 {
                return Err(Overflow); // denominator 2^-exp exceeds i128
            }
            Rat::new(sign * mant, 1i128 << (-exp))
        }
    }

    /// Exact sum.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the result does not fit `i128`.
    pub fn add(self, o: Rat) -> Result<Rat, Overflow> {
        let g = gcd(self.den.unsigned_abs(), o.den.unsigned_abs()) as i128;
        let d1 = self.den / g;
        let d2 = o.den / g;
        let left = self.num.checked_mul(d2).ok_or(Overflow)?;
        let right = o.num.checked_mul(d1).ok_or(Overflow)?;
        let num = left.checked_add(right).ok_or(Overflow)?;
        let den = self.den.checked_mul(d2).ok_or(Overflow)?;
        Rat::new(num, den)
    }

    /// Exact difference.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the result does not fit `i128`.
    pub fn sub(self, o: Rat) -> Result<Rat, Overflow> {
        self.add(o.neg()?)
    }

    /// Exact negation.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] only for the unrepresentable `-i128::MIN`.
    pub fn neg(self) -> Result<Rat, Overflow> {
        Ok(Rat {
            num: self.num.checked_neg().ok_or(Overflow)?,
            den: self.den,
        })
    }

    /// Exact product (cross-reduced before multiplying to delay
    /// overflow).
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the result does not fit `i128`.
    pub fn mul(self, o: Rat) -> Result<Rat, Overflow> {
        let g1 = gcd(self.num.unsigned_abs(), o.den.unsigned_abs()) as i128;
        let g2 = gcd(o.num.unsigned_abs(), self.den.unsigned_abs()) as i128;
        let n1 = self.num / g1;
        let d2 = o.den / g1;
        let n2 = o.num / g2;
        let d1 = self.den / g2;
        let num = n1.checked_mul(n2).ok_or(Overflow)?;
        let den = d1.checked_mul(d2).ok_or(Overflow)?;
        Rat::new(num, den)
    }

    /// Exact quotient.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when `o` is zero or the result does not fit
    /// `i128`.
    pub fn div(self, o: Rat) -> Result<Rat, Overflow> {
        if o.num == 0 {
            return Err(Overflow);
        }
        self.mul(Rat::new(o.den, o.num)?)
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor_int(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil_int(self) -> i128 {
        let f = self.num.div_euclid(self.den);
        if self.num % self.den == 0 {
            f
        } else {
            f + 1
        }
    }

    /// Sign of the value: `-1`, `0`, or `1`.
    #[must_use]
    pub const fn signum(self) -> i32 {
        if self.num > 0 {
            1
        } else if self.num < 0 {
            -1
        } else {
            0
        }
    }

    /// Whether the value is an exact integer.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] only for the unrepresentable `|i128::MIN|`.
    pub fn abs(self) -> Result<Rat, Overflow> {
        if self.num < 0 {
            self.neg()
        } else {
            Ok(self)
        }
    }

    /// Exact comparison.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the cross products do not fit `i128`.
    pub fn cmp_exact(self, o: Rat) -> Result<Ordering, Overflow> {
        Ok(self.sub(o)?.signum().cmp(&0))
    }

    /// `self <= o`, exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the comparison itself overflows.
    pub fn le(self, o: Rat) -> Result<bool, Overflow> {
        Ok(self.cmp_exact(o)? != Ordering::Greater)
    }

    /// The smaller of the two values.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the comparison itself overflows.
    pub fn min_exact(self, o: Rat) -> Result<Rat, Overflow> {
        Ok(if self.le(o)? { self } else { o })
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// A rational extended with the two infinities, for variable upper
/// bounds and activity bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ext {
    /// `-∞`.
    NegInf,
    /// A finite exact value.
    Fin(Rat),
    /// `+∞`.
    PosInf,
}

impl Ext {
    /// Converts an `f64`, mapping the IEEE infinities to the matching
    /// variant.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] for NaN or finite values out of exact range.
    pub fn from_f64(x: f64) -> Result<Ext, Overflow> {
        if x.is_nan() {
            Err(Overflow)
        } else if x.is_infinite() {
            Ok(if x.is_sign_positive() {
                Ext::PosInf
            } else {
                Ext::NegInf
            })
        } else {
            Ok(Ext::Fin(Rat::from_f64(x)?))
        }
    }

    /// The finite value, if any.
    #[must_use]
    pub const fn finite(self) -> Option<Rat> {
        match self {
            Ext::Fin(r) => Some(r),
            Ext::NegInf | Ext::PosInf => None,
        }
    }

    /// Extended sum. `+∞ + -∞` is undefined.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] for the undefined case or a finite overflow.
    pub fn add(self, o: Ext) -> Result<Ext, Overflow> {
        match (self, o) {
            (Ext::Fin(a), Ext::Fin(b)) => Ok(Ext::Fin(a.add(b)?)),
            (Ext::PosInf, Ext::NegInf) | (Ext::NegInf, Ext::PosInf) => Err(Overflow),
            (Ext::PosInf, _) | (_, Ext::PosInf) => Ok(Ext::PosInf),
            (Ext::NegInf, _) | (_, Ext::NegInf) => Ok(Ext::NegInf),
        }
    }

    /// Extended product with a finite factor; `0 · ±∞` is `0` (the
    /// convention activity bounds need: an absent coefficient
    /// contributes nothing regardless of the variable's range).
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] on finite overflow.
    pub fn mul_rat(self, c: Rat) -> Result<Ext, Overflow> {
        match self {
            Ext::Fin(a) => Ok(Ext::Fin(a.mul(c)?)),
            Ext::PosInf | Ext::NegInf => Ok(match c.signum() {
                0 => Ext::Fin(Rat::zero()),
                1 => self,
                _ => {
                    if self == Ext::PosInf {
                        Ext::NegInf
                    } else {
                        Ext::PosInf
                    }
                }
            }),
        }
    }

    /// Extended comparison (`-∞ < finite < +∞`; the infinities equal
    /// themselves).
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when a finite comparison overflows.
    pub fn cmp_exact(self, o: Ext) -> Result<Ordering, Overflow> {
        match (self, o) {
            (Ext::Fin(a), Ext::Fin(b)) => a.cmp_exact(b),
            (Ext::NegInf, Ext::NegInf) | (Ext::PosInf, Ext::PosInf) => Ok(Ordering::Equal),
            (Ext::NegInf, _) | (_, Ext::PosInf) => Ok(Ordering::Less),
            (Ext::PosInf, _) | (_, Ext::NegInf) => Ok(Ordering::Greater),
        }
    }

    /// `self <= o`, exactly.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the comparison itself overflows.
    pub fn le(self, o: Ext) -> Result<bool, Overflow> {
        Ok(self.cmp_exact(o)? != Ordering::Greater)
    }

    /// The smaller of the two values.
    ///
    /// # Errors
    ///
    /// Returns [`Overflow`] when the comparison itself overflows.
    pub fn min_exact(self, o: Ext) -> Result<Ext, Overflow> {
        Ok(if self.le(o)? { self } else { o })
    }
}

impl fmt::Display for Ext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ext::NegInf => f.write_str("-inf"),
            Ext::Fin(r) => write!(f, "{r}"),
            Ext::PosInf => f.write_str("+inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rat {
        Rat::new(n, d).unwrap()
    }

    #[test]
    fn normalization_and_ops() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(1, 3).add(r(1, 6)).unwrap(), r(1, 2));
        assert_eq!(r(1, 2).sub(r(1, 2)).unwrap(), Rat::zero());
        assert_eq!(r(2, 3).mul(r(3, 4)).unwrap(), r(1, 2));
        assert_eq!(r(-7, 2).abs().unwrap(), r(7, 2));
        assert!(r(1, 3).le(r(1, 2)).unwrap());
        assert!(!r(1, 2).le(r(1, 3)).unwrap());
    }

    #[test]
    fn from_f64_is_exact() {
        assert_eq!(Rat::from_f64(0.5).unwrap(), r(1, 2));
        assert_eq!(Rat::from_f64(-3.0).unwrap(), r(-3, 1));
        assert_eq!(Rat::from_f64(0.0).unwrap(), Rat::zero());
        // 0.1 is not 1/10 in binary; the conversion must reproduce the
        // exact dyadic it actually is.
        let tenth = Rat::from_f64(0.1).unwrap();
        assert_ne!(tenth, r(1, 10));
        assert_eq!(tenth, r(3_602_879_701_896_397, 1i128 << 55));
        // Non-finite and out-of-range values fail closed.
        assert!(Rat::from_f64(f64::NAN).is_err());
        assert!(Rat::from_f64(f64::INFINITY).is_err());
        assert!(Rat::from_f64(1e300).is_err());
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let big = Rat::from_int(i128::MAX / 2);
        assert!(big.mul(Rat::from_int(4)).is_err());
        assert!(big.add(big.mul(Rat::one()).unwrap()).is_ok());
        assert!(Rat::new(1, 0).is_err());
    }

    #[test]
    fn ext_ordering_and_arithmetic() {
        let two = Ext::Fin(Rat::from_int(2));
        assert!(Ext::NegInf.le(two).unwrap());
        assert!(two.le(Ext::PosInf).unwrap());
        assert!(!Ext::PosInf.le(two).unwrap());
        assert_eq!(Ext::PosInf.mul_rat(Rat::from_int(-3)).unwrap(), Ext::NegInf);
        assert_eq!(
            Ext::PosInf.mul_rat(Rat::zero()).unwrap(),
            Ext::Fin(Rat::zero())
        );
        assert!(Ext::PosInf.add(Ext::NegInf).is_err());
        assert_eq!(two.add(Ext::PosInf).unwrap(), Ext::PosInf);
    }

    #[test]
    fn div_floor_ceil() {
        assert_eq!(r(1, 2).div(r(1, 4)).unwrap(), r(2, 1));
        assert_eq!(r(-1, 2).div(r(1, 4)).unwrap(), r(-2, 1));
        assert!(r(1, 2).div(Rat::zero()).is_err());
        assert_eq!(r(7, 2).floor_int(), 3);
        assert_eq!(r(7, 2).ceil_int(), 4);
        assert_eq!(r(-7, 2).floor_int(), -4);
        assert_eq!(r(-7, 2).ceil_int(), -3);
        assert_eq!(r(6, 2).floor_int(), 3);
        assert_eq!(r(6, 2).ceil_int(), 3);
    }

    #[test]
    fn dyadic_constants() {
        assert_eq!(Rat::dyadic(20), r(1, 1 << 20));
        assert_eq!(Rat::dyadic(0), Rat::one());
    }
}
