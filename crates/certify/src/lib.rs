//! Independent exact-arithmetic checker for `vm1-milp` solve
//! certificates.
//!
//! `vm1_milp::solve_certified` records a [`vm1_milp::Certificate`]
//! alongside each branch-and-bound solve: the searched root domain, the
//! branching tree, a weak-duality (dual) witness per solved node, a
//! Farkas-style witness per infeasible node, and the final incumbent.
//! This crate replays that record against the original model and
//! accepts the claimed status only if every witness checks out —
//! computed entirely in `i128`-backed rational arithmetic
//! ([`rat::Rat`]), with no floating-point operation on any path that
//! decides the verdict.
//!
//! The checker deliberately reuses none of the solver's LP or
//! branch-and-bound code: a bug shared by solver and checker would
//! otherwise be self-certifying. The only shared surface is the
//! [`vm1_milp::Model`] accessors and the certificate types themselves.
//!
//! ```
//! use vm1_milp::{Model, SolveParams};
//!
//! let mut m = Model::new();
//! let x = m.add_binary("x");
//! let y = m.add_binary("y");
//! m.set_objective([(x, -2.0), (y, -1.0)]);
//! m.add_le([(x, 1.0), (y, 1.0)], 1.0);
//! let certified = vm1_milp::solve_certified(&m, &SolveParams::default());
//! let report = vm1_certify::check(&m, &certified.certificate);
//! assert!(report.accepted, "{}", report.summary());
//! ```

pub mod check;
pub mod rat;

pub use check::{check, CheckReport};
pub use rat::{Ext, Overflow, Rat};
