//! The certificate checker: replays a [`Certificate`] against the
//! original [`Model`] in exact rational arithmetic.
//!
//! The checker shares **no code** with the solver's LP or
//! branch-and-bound modules and never trusts a recorded conclusion; it
//! recomputes everything from the recorded *witnesses*:
//!
//! * every dual vector is turned into a weak-duality lower bound on its
//!   node's subdomain (any sign-feasible multiplier vector yields a
//!   valid bound, so the checker clamps wrong-signed and
//!   unrepresentable entries to zero — a safe weakening);
//! * every Farkas witness must prove its node's LP infeasible by
//!   driving the zero-objective dual bound strictly positive;
//! * the branching tree must partition each parent's domain (floor/ceil
//!   splits on integer variables, SOS1 forbid-set splits backed by an
//!   exact `sum == 1` convexity row);
//! * the recorded root domain must cover everything an exact replay of
//!   presolve can prove, so no feasible point was dropped before the
//!   search began;
//! * the incumbent must be exactly integral on integer variables and
//!   feasible within a tiny dyadic tolerance, and a claimed `Optimal`
//!   is accepted only when the incumbent's exact objective is
//!   sandwiched by the recomputed tree bound.
//!
//! Floating-point values from the certificate enter exactly once, via
//! [`Rat::from_f64`] (an exact conversion); no verdict ever depends on
//! float comparison or float arithmetic.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use vm1_milp::{BranchStep, Certificate, ConstraintSense, Model, NodeOutcome, Status, VarKind};

use crate::rat::{Ext, Overflow, Rat};

/// Feasibility / objective-agreement tolerance: `2^-20` (~9.5e-7),
/// scaled by the magnitude of the quantity being checked. Exactly
/// representable, so the *comparison* against it is exact.
fn eps_abs() -> Rat {
    Rat::dyadic(20)
}

/// Per-unit-of-domain-range dual-drift allowance: `2^-23` (~1.2e-7).
/// The solver stops pricing at reduced costs below its `COST_TOL`
/// (1e-7), so each recorded dual under-bounds its node LP by at most
/// `COST_TOL` times the total variable range; `2^-23` dominates that.
fn eps_dual() -> Rat {
    Rat::dyadic(23)
}

/// Presolve-replay fixpoint cap. The solver runs 5 rounds; the replay
/// is at least as tight per round (exact arithmetic, merged
/// coefficients, no suppression thresholds), so any cap `>= 5` keeps
/// the replayed box inside the solver's.
const REPLAY_ROUNDS: usize = 50;

/// Outcome of checking one certificate against its model.
///
/// `accepted` is true iff `reasons` is empty; every failed check pushes
/// a human-readable reason, so a rejection always says why.
#[derive(Clone, Debug)]
#[must_use = "a check report must be inspected for acceptance"]
pub struct CheckReport {
    /// Whether the certificate proves the claimed status.
    pub accepted: bool,
    /// Why the certificate was rejected (empty iff `accepted`).
    pub reasons: Vec<String>,
    /// Number of tree nodes replayed.
    pub nodes_checked: usize,
    /// Number of leaves in the replayed tree.
    pub leaves: usize,
    /// Leaves whose claimed infeasibility could not be proven exactly
    /// and were soundly downgraded to their ancestor's dual bound. A
    /// nonzero count with `accepted` still means the optimum is
    /// certified — the surviving bounds sandwich it — just through a
    /// weaker route than the solver took.
    pub downgraded_leaves: usize,
}

impl CheckReport {
    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.accepted {
            let downgrades = if self.downgraded_leaves > 0 {
                format!(", {} downgraded", self.downgraded_leaves)
            } else {
                String::new()
            };
            format!(
                "certificate ACCEPTED ({} nodes, {} leaves{downgrades})",
                self.nodes_checked, self.leaves
            )
        } else {
            format!(
                "certificate REJECTED ({} nodes, {} leaves): {}",
                self.nodes_checked,
                self.leaves,
                self.reasons.join("; ")
            )
        }
    }
}

/// Replays `cert` against `model` and verifies every recorded witness
/// in exact rational arithmetic.
///
/// The checker fails closed: anything it cannot verify exactly —
/// malformed structure, unrepresentable numbers, arithmetic overflow on
/// a path that must *prove* something — rejects the certificate rather
/// than weakening the verdict.
pub fn check(model: &Model, cert: &Certificate) -> CheckReport {
    let mut checker = match Checker::new(model, cert) {
        Ok(c) => c,
        Err(reason) => {
            return CheckReport {
                accepted: false,
                reasons: vec![reason],
                nodes_checked: cert.nodes.len(),
                leaves: 0,
                downgraded_leaves: 0,
            }
        }
    };
    checker.run();
    checker.finish()
}

/// One constraint row with merged, exactly-converted coefficients.
struct ExactRow {
    /// `(variable index, coefficient)`, duplicates merged, zeros dropped.
    terms: Vec<(usize, Rat)>,
    sense: ConstraintSense,
    rhs: Rat,
}

/// The model, converted once into exact rationals.
struct ExactModel {
    kind: Vec<VarKind>,
    /// Declared lower bounds (always finite by [`Model`]'s contract).
    lb: Vec<Rat>,
    /// Declared upper bounds (`+inf` allowed on continuous variables).
    ub: Vec<Ext>,
    obj: Vec<Rat>,
    rows: Vec<ExactRow>,
    /// Column view of `rows`: `cols[j]` lists `(row, coeff)` pairs.
    cols: Vec<Vec<(usize, Rat)>>,
    /// SOS1 groups as member-index lists.
    sos: Vec<Vec<usize>>,
}

fn exact_model(model: &Model) -> Result<ExactModel, String> {
    let n = model.num_vars();
    let mut kind = Vec::with_capacity(n);
    let mut lb = Vec::with_capacity(n);
    let mut ub = Vec::with_capacity(n);
    for j in 0..n {
        let v = model.var_id(j);
        kind.push(model.var_kind(v));
        let (l, u) = model.var_bounds(v);
        lb.push(Rat::from_f64(l).map_err(|_| {
            format!("declared lower bound of x{j} ({l}) is not exactly representable")
        })?);
        ub.push(Ext::from_f64(u).map_err(|_| {
            format!("declared upper bound of x{j} ({u}) is not exactly representable")
        })?);
    }
    let obj = model
        .objective_coeffs()
        .iter()
        .enumerate()
        .map(|(j, &c)| {
            Rat::from_f64(c).map_err(|_| {
                format!("objective coefficient of x{j} ({c}) is not exactly representable")
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let mut rows = Vec::with_capacity(model.num_constraints());
    let mut cols: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); n];
    for i in 0..model.num_constraints() {
        let mut merged: BTreeMap<usize, Rat> = BTreeMap::new();
        for &(v, c) in model.constraint_terms(i) {
            let c = Rat::from_f64(c)
                .map_err(|_| format!("coefficient {c} in row {i} is not exactly representable"))?;
            let j = v.index();
            let cur = merged.get(&j).copied().unwrap_or(Rat::zero());
            let sum = cur.add(c).map_err(|_| {
                format!("merging duplicate coefficients of x{j} in row {i} overflowed")
            })?;
            merged.insert(j, sum);
        }
        let terms: Vec<(usize, Rat)> = merged
            .into_iter()
            .filter(|&(_, c)| c.signum() != 0)
            .collect();
        let rhs = model.constraint_rhs(i);
        let rhs = Rat::from_f64(rhs)
            .map_err(|_| format!("rhs of row {i} ({rhs}) is not exactly representable"))?;
        for &(j, c) in &terms {
            cols[j].push((i, c));
        }
        rows.push(ExactRow {
            terms,
            sense: model.constraint_sense(i),
            rhs,
        });
    }
    let sos = model
        .sos1_groups()
        .iter()
        .map(|g| g.iter().map(|v| v.index()).collect())
        .collect();
    Ok(ExactModel {
        kind,
        lb,
        ub,
        obj,
        rows,
        cols,
        sos,
    })
}

/// Weak-duality lower bound from a recorded multiplier vector over the
/// box `[lb, ub]`:
///
/// `bound(y) = sum_i y_i * b_i + sum_j min over [l_j, u_j] of d_j x_j`
/// with `d_j = c_j - sum_i y_i a_ij` (and `c = 0` for Farkas checks).
///
/// Entries with the wrong sign for their row sense are clamped to zero,
/// and every entry is projected onto the dyadic grid `k / 2^32` first
/// (see [`grid_multiplier`]): any sign-feasible `y` yields a valid
/// bound, so both adjustments only weaken it.
fn weak_dual_bound(
    em: &ExactModel,
    duals: &[f64],
    lb: &[Rat],
    ub: &[Ext],
    with_objective: bool,
) -> Result<Ext, Overflow> {
    let mut base = Rat::zero();
    let mut y = Vec::with_capacity(em.rows.len());
    for (row, &yf) in em.rows.iter().zip(duals) {
        let mut yi = grid_multiplier(yf);
        match row.sense {
            ConstraintSense::Le => {
                if yi.signum() > 0 {
                    yi = Rat::zero();
                }
            }
            ConstraintSense::Ge => {
                if yi.signum() < 0 {
                    yi = Rat::zero();
                }
            }
            ConstraintSense::Eq => {}
        }
        base = base.add(yi.mul(row.rhs)?)?;
        y.push(yi);
    }
    let mut bound = Ext::Fin(base);
    for j in 0..lb.len() {
        let mut d = if with_objective {
            em.obj[j]
        } else {
            Rat::zero()
        };
        for &(ri, a) in &em.cols[j] {
            d = d.sub(y[ri].mul(a)?)?;
        }
        let term = match d.signum() {
            0 => continue,
            1 => Ext::Fin(d.mul(lb[j])?),
            // d < 0: the minimum is at the upper bound; an infinite
            // upper bound drives the whole bound to -inf.
            _ => ub[j].mul_rat(d)?,
        };
        bound = bound.add(term)?;
        if bound == Ext::NegInf {
            return Ok(Ext::NegInf);
        }
    }
    Ok(bound)
}

/// Denominator of the multiplier grid: recorded duals are projected
/// onto multiples of `2^-32` before entering the exact accumulation.
const GRID_DEN: i128 = 1 << 32;

/// Projects a recorded multiplier onto the dyadic grid `k / 2^32`,
/// rounding toward zero (so the sign never flips). Any sign-feasible
/// multiplier vector is a valid weak-duality witness, so coarsening is
/// sound — it can only weaken the computed bound — while capping the
/// denominators that enter the accumulation: raw simplex duals carry
/// ~`2^50` denominators whose products overflow `i128` on realistic
/// window models. The value lost per row is below `2^-32 * |row|`,
/// orders of magnitude inside the `2^-23`-per-unit-of-range slack the
/// gap check already grants the solver's float pricing.
fn grid_multiplier(v: f64) -> Rat {
    let scaled = (v * GRID_DEN as f64).trunc();
    if !(scaled.is_finite() && scaled.abs() < 9.0e18) {
        // Unrepresentable multiplier: zero is always sign-feasible.
        return Rat::zero();
    }
    Rat::new(scaled as i128, GRID_DEN).unwrap_or(Rat::zero())
}

/// Result of the exact presolve replay.
enum Replay {
    /// The tightest box the replay can prove contains every feasible
    /// point.
    Bounds(Vec<Rat>, Vec<Ext>),
    /// The replay proved the model infeasible outright.
    Infeasible,
    /// Exact arithmetic overflowed; no replayed box is available.
    Unavailable,
}

/// Replays activity-based bound tightening in exact arithmetic over the
/// starting box `[lb0, ub0]`: the same in-place sweep the solver's
/// presolve performs, but with merged coefficients, no suppression
/// tolerances, no redundant-row skipping, exact integer rounding, and
/// more rounds — so the replayed box is always at least as tight as the
/// solver's. Used from the declared bounds to validate the recorded
/// root domain, and from a node-local box as an independent
/// infeasibility prover when a Farkas witness falls short.
fn replay_presolve(em: &ExactModel, lb0: &[Rat], ub0: &[Ext]) -> Replay {
    match replay_inner(em, lb0, ub0) {
        Ok(r) => r,
        Err(Overflow) => Replay::Unavailable,
    }
}

fn replay_inner(em: &ExactModel, lb0: &[Rat], ub0: &[Ext]) -> Result<Replay, Overflow> {
    let mut lb = lb0.to_vec();
    let mut ub = ub0.to_vec();
    for j in 0..lb.len() {
        if Ext::Fin(lb[j]).cmp_exact(ub[j])? == Ordering::Greater {
            return Ok(Replay::Infeasible);
        }
    }
    for _ in 0..REPLAY_ROUNDS {
        let mut changed = false;
        for row in &em.rows {
            let (lo, hi) = match row.sense {
                ConstraintSense::Le => (Ext::NegInf, Ext::Fin(row.rhs)),
                ConstraintSense::Ge => (Ext::Fin(row.rhs), Ext::PosInf),
                ConstraintSense::Eq => (Ext::Fin(row.rhs), Ext::Fin(row.rhs)),
            };
            // Per-term contribution intervals over the current box.
            let mut contrib = Vec::with_capacity(row.terms.len());
            let mut min_act = Ext::Fin(Rat::zero());
            let mut max_act = Ext::Fin(Rat::zero());
            for &(j, c) in &row.terms {
                let (cmin, cmax) = if c.signum() >= 0 {
                    (Ext::Fin(c.mul(lb[j])?), ub[j].mul_rat(c)?)
                } else {
                    (ub[j].mul_rat(c)?, Ext::Fin(c.mul(lb[j])?))
                };
                min_act = min_act.add(cmin)?;
                max_act = max_act.add(cmax)?;
                contrib.push((cmin, cmax));
            }
            if min_act.cmp_exact(hi)? == Ordering::Greater
                || max_act.cmp_exact(lo)? == Ordering::Less
            {
                return Ok(Replay::Infeasible);
            }
            for (t, &(j, c)) in row.terms.iter().enumerate() {
                // Activity of the rest of the row, summed directly so
                // infinities never cancel incorrectly.
                let mut rest_min = Ext::Fin(Rat::zero());
                let mut rest_max = Ext::Fin(Rat::zero());
                for (s, &(cmin, cmax)) in contrib.iter().enumerate() {
                    if s != t {
                        rest_min = rest_min.add(cmin)?;
                        rest_max = rest_max.add(cmax)?;
                    }
                }
                // expr <= hi:  c x <= hi - rest_min.
                if let (Ext::Fin(h), Ext::Fin(rm)) = (hi, rest_min) {
                    let v = h.sub(rm)?.div(c)?;
                    if c.signum() > 0 {
                        let nu = round_down(em.kind[j], v);
                        if Ext::Fin(nu).cmp_exact(ub[j])? == Ordering::Less {
                            ub[j] = Ext::Fin(nu);
                            changed = true;
                        }
                    } else {
                        let nl = round_up(em.kind[j], v);
                        if nl.cmp_exact(lb[j])? == Ordering::Greater {
                            lb[j] = nl;
                            changed = true;
                        }
                    }
                }
                // expr >= lo:  c x >= lo - rest_max.
                if let (Ext::Fin(l), Ext::Fin(rm)) = (lo, rest_max) {
                    let v = l.sub(rm)?.div(c)?;
                    if c.signum() > 0 {
                        let nl = round_up(em.kind[j], v);
                        if nl.cmp_exact(lb[j])? == Ordering::Greater {
                            lb[j] = nl;
                            changed = true;
                        }
                    } else {
                        let nu = round_down(em.kind[j], v);
                        if Ext::Fin(nu).cmp_exact(ub[j])? == Ordering::Less {
                            ub[j] = Ext::Fin(nu);
                            changed = true;
                        }
                    }
                }
                if Ext::Fin(lb[j]).cmp_exact(ub[j])? == Ordering::Greater {
                    return Ok(Replay::Infeasible);
                }
            }
        }
        if !changed {
            break;
        }
    }
    Ok(Replay::Bounds(lb, ub))
}

fn round_down(kind: VarKind, v: Rat) -> Rat {
    match kind {
        VarKind::Continuous => v,
        VarKind::Binary | VarKind::Integer => Rat::from_int(v.floor_int()),
    }
}

fn round_up(kind: VarKind, v: Rat) -> Rat {
    match kind {
        VarKind::Continuous => v,
        VarKind::Binary | VarKind::Integer => Rat::from_int(v.ceil_int()),
    }
}

/// Verification result of a single node's recorded outcome.
enum Verified {
    /// No witness recorded; the node stands on its ancestors' bounds.
    Open,
    /// A weak-duality bound proven from the recorded dual witness.
    Bound(Ext),
    /// The node's subtree is certified to contain no feasible point.
    InfeasibleProven,
    /// Infeasibility was claimed but neither the Farkas witness nor the
    /// exact replay could prove it; the node is treated like an Open
    /// leaf (ancestor bound), which the final sandwich check gates.
    InfeasibleUnproven,
}

/// DFS walk actions (iterative, so deep trees cannot overflow the call
/// stack).
enum Op {
    /// Visit a node: apply its step, verify its outcome, schedule its
    /// children. `inherited` is the nearest verified ancestor dual
    /// bound, used for Open leaves.
    Enter { node: usize, inherited: Ext },
    /// Unwind the bound changes applied since `undo_from`.
    Exit { undo_from: usize },
}

struct Checker<'a> {
    em: ExactModel,
    cert: &'a Certificate,
    reasons: Vec<String>,
    children: Vec<Vec<usize>>,
    root_lb: Vec<Rat>,
    root_ub: Vec<Ext>,
    replay_infeasible: bool,
    /// Minimum leaf bound across the tree (the certified global lower
    /// bound); starts at `+inf` and only Bounded/Open leaves pull it
    /// down.
    global_lb: Ext,
    leaves: usize,
    infeasible_leaves: usize,
    /// Leaves whose claimed infeasibility could not be proven and were
    /// treated as Open instead (see [`Verified::InfeasibleUnproven`]).
    downgraded_leaves: usize,
    /// Lazily-computed "group g has an exact `sum == 1` convexity row".
    convexity_ok: Vec<Option<bool>>,
}

impl<'a> Checker<'a> {
    /// Builds the exact model and validates certificate *shape*; shape
    /// errors abort immediately because the replay below cannot even
    /// start on a malformed tree.
    fn new(model: &Model, cert: &'a Certificate) -> Result<Checker<'a>, String> {
        let em = exact_model(model)?;
        let n = em.lb.len();
        if cert.root_lb.len() != n || cert.root_ub.len() != n {
            return Err(format!(
                "root bounds have {}/{} entries, model has {n} variables",
                cert.root_lb.len(),
                cert.root_ub.len()
            ));
        }
        if cert.nodes.is_empty() {
            return Err("certificate records no tree nodes".to_owned());
        }
        if cert.nodes[0].parent.is_some() || cert.nodes[0].step.is_some() {
            return Err("node 0 is not a root (has a parent or a branching step)".to_owned());
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); cert.nodes.len()];
        for (i, node) in cert.nodes.iter().enumerate().skip(1) {
            let Some(p) = node.parent else {
                return Err(format!("node {i}: non-root node without a parent"));
            };
            if p >= i {
                return Err(format!("node {i}: parent {p} does not precede it"));
            }
            if node.step.is_none() {
                return Err(format!("node {i}: non-root node without a branching step"));
            }
            children[p].push(i);
        }
        for (i, kids) in children.iter().enumerate() {
            if !kids.is_empty() && kids.len() != 2 {
                return Err(format!(
                    "node {i}: {} children (expected 0 or 2)",
                    kids.len()
                ));
            }
        }
        let mut root_lb = Vec::with_capacity(n);
        let mut root_ub = Vec::with_capacity(n);
        for j in 0..n {
            root_lb.push(Rat::from_f64(cert.root_lb[j]).map_err(|_| {
                format!("recorded root lower bound of x{j} is not exactly representable")
            })?);
            root_ub.push(Ext::from_f64(cert.root_ub[j]).map_err(|_| {
                format!("recorded root upper bound of x{j} is not exactly representable")
            })?);
        }
        let num_groups = em.sos.len();
        Ok(Checker {
            em,
            cert,
            reasons: Vec::new(),
            children,
            root_lb,
            root_ub,
            replay_infeasible: false,
            global_lb: Ext::PosInf,
            leaves: 0,
            infeasible_leaves: 0,
            downgraded_leaves: 0,
            convexity_ok: vec![None; num_groups],
        })
    }

    fn fail(&mut self, reason: String) {
        self.reasons.push(reason);
    }

    fn run(&mut self) {
        self.check_root_coverage();
        self.walk_tree();
        let exact_obj = self.check_incumbent();
        self.verdict(exact_obj);
    }

    /// The recorded root domain must contain every feasible point. The
    /// exact presolve replay proves a box that does; the recorded
    /// bounds are accepted iff they contain that box (the solver's
    /// float presolve is strictly looser, so this is the normal case).
    fn check_root_coverage(&mut self) {
        match replay_presolve(&self.em, &self.em.lb, &self.em.ub) {
            Replay::Infeasible => self.replay_infeasible = true,
            Replay::Bounds(lb, ub) => {
                for j in 0..lb.len() {
                    let lb_ok = self.root_lb[j].le(lb[j]).unwrap_or(false);
                    let ub_ok = ub[j].le(self.root_ub[j]).unwrap_or(false);
                    if !lb_ok || !ub_ok {
                        self.fail(format!(
                            "root domain of x{j} [{}, {}] does not cover the presolve-provable box [{}, {}]",
                            self.root_lb[j], self.root_ub[j], lb[j], ub[j]
                        ));
                    }
                }
            }
            Replay::Unavailable => {
                // Fallback: without a replayed box, only root bounds at
                // least as loose as the declared bounds are provably
                // covering.
                for j in 0..self.em.lb.len() {
                    let lb_ok = self.root_lb[j].le(self.em.lb[j]).unwrap_or(false);
                    let ub_ok = self.em.ub[j].le(self.root_ub[j]).unwrap_or(false);
                    if !lb_ok || !ub_ok {
                        self.fail(format!(
                            "presolve replay overflowed and the recorded root domain of x{j} is tighter than its declared bounds"
                        ));
                    }
                }
            }
        }
    }

    fn walk_tree(&mut self) {
        let cert = self.cert;
        let mut cur_lb = self.root_lb.clone();
        let mut cur_ub = self.root_ub.clone();
        let mut undo: Vec<(usize, Rat, Ext)> = Vec::new();
        let mut stack = vec![Op::Enter {
            node: 0,
            inherited: Ext::NegInf,
        }];
        while let Some(op) = stack.pop() {
            match op {
                Op::Exit { undo_from } => {
                    while undo.len() > undo_from {
                        if let Some((j, l, u)) = undo.pop() {
                            cur_lb[j] = l;
                            cur_ub[j] = u;
                        }
                    }
                }
                Op::Enter { node, inherited } => {
                    let undo_from = undo.len();
                    if let Some(step) = &cert.nodes[node].step {
                        self.apply_step(node, step, &mut cur_lb, &mut cur_ub, &mut undo);
                    }
                    let own =
                        self.verify_outcome(node, &cert.nodes[node].outcome, &cur_lb, &cur_ub);
                    let inh = match own {
                        Verified::Bound(b) => b,
                        _ => inherited,
                    };
                    stack.push(Op::Exit { undo_from });
                    let kids = self.children[node].clone();
                    if kids.is_empty() {
                        self.leaves += 1;
                        if matches!(own, Verified::InfeasibleProven) {
                            // A proven infeasible leaf contributes +inf:
                            // nothing feasible exists below it.
                            self.infeasible_leaves += 1;
                        } else {
                            if matches!(own, Verified::InfeasibleUnproven) {
                                self.downgraded_leaves += 1;
                            }
                            self.global_lb = self.global_lb.min_exact(inh).unwrap_or(Ext::NegInf);
                        }
                    } else {
                        self.validate_pair(node, &kids, &cur_lb, &cur_ub);
                        for &k in &kids {
                            stack.push(Op::Enter {
                                node: k,
                                inherited: inh,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Applies a branching step to the working domain, recording undo
    /// entries. An unrepresentable or out-of-range step pushes a reason
    /// and leaves the domain untouched — a *looser* domain only weakens
    /// the bounds computed below it, so this cannot mask an error.
    fn apply_step(
        &mut self,
        node: usize,
        step: &BranchStep,
        cur_lb: &mut [Rat],
        cur_ub: &mut [Ext],
        undo: &mut Vec<(usize, Rat, Ext)>,
    ) {
        match step {
            BranchStep::SetUb { var, ub } => {
                if *var >= cur_ub.len() {
                    self.fail(format!("node {node}: branch variable x{var} out of range"));
                    return;
                }
                match Rat::from_f64(*ub) {
                    Ok(r) => {
                        undo.push((*var, cur_lb[*var], cur_ub[*var]));
                        cur_ub[*var] = Ext::Fin(r);
                    }
                    Err(Overflow) => {
                        self.fail(format!(
                            "node {node}: branch bound {ub} is not exactly representable"
                        ));
                    }
                }
            }
            BranchStep::SetLb { var, lb } => {
                if *var >= cur_lb.len() {
                    self.fail(format!("node {node}: branch variable x{var} out of range"));
                    return;
                }
                match Rat::from_f64(*lb) {
                    Ok(r) => {
                        undo.push((*var, cur_lb[*var], cur_ub[*var]));
                        cur_lb[*var] = r;
                    }
                    Err(Overflow) => {
                        self.fail(format!(
                            "node {node}: branch bound {lb} is not exactly representable"
                        ));
                    }
                }
            }
            BranchStep::ForbidSet { vars, .. } => {
                for &v in vars {
                    if v >= cur_ub.len() {
                        self.fail(format!("node {node}: forbidden variable x{v} out of range"));
                        continue;
                    }
                    undo.push((v, cur_lb[v], cur_ub[v]));
                    cur_ub[v] = Ext::Fin(Rat::zero());
                }
            }
        }
    }

    /// Verifies a node's recorded outcome on its reconstructed domain.
    fn verify_outcome(
        &mut self,
        node: usize,
        outcome: &NodeOutcome,
        lb: &[Rat],
        ub: &[Ext],
    ) -> Verified {
        match outcome {
            NodeOutcome::Open => Verified::Open,
            NodeOutcome::Bounded { duals } => {
                if duals.len() != self.em.rows.len() {
                    self.fail(format!(
                        "node {node}: dual witness has {} entries, model has {} rows",
                        duals.len(),
                        self.em.rows.len()
                    ));
                    return Verified::Bound(Ext::NegInf);
                }
                // Overflow weakens the bound to -inf rather than
                // rejecting: a missing bound can only make acceptance
                // harder, never easier.
                Verified::Bound(
                    weak_dual_bound(&self.em, duals, lb, ub, true).unwrap_or(Ext::NegInf),
                )
            }
            NodeOutcome::Infeasible { farkas } => {
                if !farkas.is_empty() && farkas.len() != self.em.rows.len() {
                    self.fail(format!(
                        "node {node}: Farkas witness has {} entries, model has {} rows",
                        farkas.len(),
                        self.em.rows.len()
                    ));
                    return Verified::InfeasibleUnproven;
                }
                if node == 0 && self.replay_infeasible {
                    return Verified::InfeasibleProven;
                }
                // With a zero objective, weak duality says every feasible
                // point satisfies 0 >= bound(f); a strictly positive bound
                // therefore proves infeasibility. (An empty witness — the
                // solver's pre-simplex bound-contradiction path — skips
                // straight to the replay, whose up-front box scan covers
                // exactly that case.)
                if !farkas.is_empty()
                    && matches!(
                        weak_dual_bound(&self.em, farkas, lb, ub, false),
                        Ok(Ext::Fin(b)) if b.signum() > 0
                    )
                {
                    return Verified::InfeasibleProven;
                }
                // Independent fallback prover: exact bound tightening on
                // the node-local box. Catches branching-induced
                // contradictions whose float Farkas witness is too
                // drift-damaged to verify exactly.
                if matches!(replay_presolve(&self.em, lb, ub), Replay::Infeasible) {
                    return Verified::InfeasibleProven;
                }
                // Neither prover succeeded. Downgrading (instead of
                // rejecting) is sound: the leaf then contributes its
                // nearest verified ancestor bound to the global lower
                // bound, and the final sandwich check still gates
                // acceptance.
                Verified::InfeasibleUnproven
            }
        }
    }

    /// Verifies that a branched pair of children covers the parent's
    /// domain exactly.
    fn validate_pair(&mut self, node: usize, kids: &[usize], lb: &[Rat], ub: &[Ext]) {
        let cert = self.cert;
        let (Some(sa), Some(sb)) = (&cert.nodes[kids[0]].step, &cert.nodes[kids[1]].step) else {
            return; // structurally impossible; shape check requires steps
        };
        match (sa, sb) {
            (BranchStep::SetUb { var: v1, ub: d }, BranchStep::SetLb { var: v2, lb: u })
            | (BranchStep::SetLb { var: v2, lb: u }, BranchStep::SetUb { var: v1, ub: d }) => {
                if v1 != v2 {
                    self.fail(format!(
                        "node {node}: children branch on different variables x{v1} and x{v2}"
                    ));
                    return;
                }
                if *v1 >= self.em.kind.len() {
                    self.fail(format!("node {node}: branch variable x{v1} out of range"));
                    return;
                }
                if self.em.kind[*v1] == VarKind::Continuous {
                    // floor/ceil covers the integers only; a continuous
                    // variable would leave the open interval (d, d+1)
                    // unsearched.
                    self.fail(format!(
                        "node {node}: floor/ceil branch on continuous variable x{v1}"
                    ));
                    return;
                }
                let down = Rat::from_f64(*d);
                let up = Rat::from_f64(*u);
                let ok = match (down, up) {
                    (Ok(dn), Ok(up)) => {
                        dn.is_integer()
                            && up.is_integer()
                            && up.sub(dn).map(|g| g == Rat::one()).unwrap_or(false)
                    }
                    _ => false,
                };
                if !ok {
                    self.fail(format!(
                        "node {node}: floor/ceil split x{v1} <= {d} / x{v1} >= {u} does not partition the integers"
                    ));
                }
            }
            (
                BranchStep::ForbidSet {
                    group: g1,
                    vars: f1,
                },
                BranchStep::ForbidSet {
                    group: g2,
                    vars: f2,
                },
            ) => {
                if g1 != g2 {
                    self.fail(format!(
                        "node {node}: children split different SOS1 groups {g1} and {g2}"
                    ));
                    return;
                }
                if *g1 >= self.em.sos.len() {
                    self.fail(format!("node {node}: unknown SOS1 group {g1}"));
                    return;
                }
                let members = self.em.sos[*g1].clone();
                for f in [f1, f2] {
                    for v in f {
                        if !members.contains(v) {
                            self.fail(format!(
                                "node {node}: forbidden variable x{v} is not a member of SOS1 group {g1}"
                            ));
                            return;
                        }
                    }
                }
                for &m in &members {
                    if self.em.kind[m] == VarKind::Continuous || lb[m].signum() < 0 {
                        self.fail(format!(
                            "node {node}: SOS1 member x{m} is not a nonnegative integer variable here"
                        ));
                        return;
                    }
                }
                if !self.convexity_row_ok(*g1) {
                    self.fail(format!(
                        "node {node}: SOS1 group {g1} has no exact `sum == 1` convexity row, so a forbid-set split is not covering"
                    ));
                    return;
                }
                // Coverage: the convexity row forces exactly one member
                // to 1; a member that can still be 1 here must survive
                // in at least one child.
                for &m in &members {
                    let available = Ext::Fin(Rat::one()).le(ub[m]).unwrap_or(true);
                    if available && f1.contains(&m) && f2.contains(&m) {
                        self.fail(format!(
                            "node {node}: SOS1 member x{m} is forbidden in both children, losing feasible points"
                        ));
                        return;
                    }
                }
            }
            _ => {
                self.fail(format!(
                    "node {node}: children record mismatched branching steps"
                ));
            }
        }
    }

    /// Whether SOS1 group `g` has an exact `sum of members == 1` row —
    /// precisely the property that makes a forbid-set split covering.
    fn convexity_row_ok(&mut self, g: usize) -> bool {
        if let Some(v) = self.convexity_ok[g] {
            return v;
        }
        let members = &self.em.sos[g];
        let ok = self.em.rows.iter().any(|row| {
            row.sense == ConstraintSense::Eq
                && row.rhs == Rat::one()
                && row.terms.len() == members.len()
                && row
                    .terms
                    .iter()
                    .all(|&(j, c)| c == Rat::one() && members.contains(&j))
        });
        self.convexity_ok[g] = Some(ok);
        ok
    }

    /// Verifies the incumbent (exact integrality, feasibility within
    /// the scaled dyadic tolerance, agreement with the claimed
    /// objective) and returns its exact objective value.
    fn check_incumbent(&mut self) -> Option<Rat> {
        let cert = self.cert;
        match cert.status {
            Status::Optimal | Status::Feasible => {}
            Status::Infeasible | Status::Unknown => {
                if cert.incumbent.is_some() {
                    self.fail(format!(
                        "status {:?} must not carry an incumbent",
                        cert.status
                    ));
                }
                return None;
            }
            Status::Unbounded => return None,
        }
        let Some(x) = &cert.incumbent else {
            self.fail(format!(
                "status {:?} claimed without an incumbent",
                cert.status
            ));
            return None;
        };
        if x.len() != self.em.lb.len() {
            self.fail(format!(
                "incumbent has {} coordinates, model has {} variables",
                x.len(),
                self.em.lb.len()
            ));
            return None;
        }
        match self.check_incumbent_exact(x) {
            Ok(v) => v,
            Err(Overflow) => {
                self.fail("exact arithmetic overflowed while checking the incumbent".to_owned());
                None
            }
        }
    }

    fn check_incumbent_exact(&mut self, x: &[f64]) -> Result<Option<Rat>, Overflow> {
        let mut xr = Vec::with_capacity(x.len());
        for (j, &xf) in x.iter().enumerate() {
            let Ok(r) = Rat::from_f64(xf) else {
                self.fail(format!(
                    "incumbent coordinate x{j} ({xf}) is not exactly representable"
                ));
                return Ok(None);
            };
            xr.push(r);
        }
        let eps = eps_abs();
        for (j, &xj) in xr.iter().enumerate() {
            if self.em.kind[j] != VarKind::Continuous && !xj.is_integer() {
                self.fail(format!(
                    "incumbent coordinate x{j} = {xj} is not an integer"
                ));
            }
            // Declared bounds within eps * (1 + |bound|).
            let tol_l = eps.mul(Rat::one().add(self.em.lb[j].abs()?)?)?;
            if !self.em.lb[j].sub(tol_l)?.le(xj)? {
                self.fail(format!(
                    "incumbent x{j} = {xj} violates its lower bound {}",
                    self.em.lb[j]
                ));
            }
            if let Ext::Fin(u) = self.em.ub[j] {
                let tol_u = eps.mul(Rat::one().add(u.abs()?)?)?;
                if !xj.le(u.add(tol_u)?)? {
                    self.fail(format!(
                        "incumbent x{j} = {xj} violates its upper bound {u}"
                    ));
                }
            }
        }
        for (i, row) in self.em.rows.iter().enumerate() {
            let mut act = Rat::zero();
            let mut mag = Rat::zero();
            for &(j, c) in &row.terms {
                let t = c.mul(xr[j])?;
                act = act.add(t)?;
                mag = mag.add(t.abs()?)?;
            }
            let tol = eps.mul(Rat::one().add(mag)?)?;
            let ok = match row.sense {
                ConstraintSense::Le => act.le(row.rhs.add(tol)?)?,
                ConstraintSense::Ge => row.rhs.sub(tol)?.le(act)?,
                ConstraintSense::Eq => act.sub(row.rhs)?.abs()?.le(tol)?,
            };
            if !ok {
                self.reasons.push(format!(
                    "incumbent violates row {i}: exact activity {act} vs rhs {} ({:?})",
                    row.rhs, row.sense
                ));
            }
        }
        let mut v = Rat::zero();
        for (j, &c) in self.em.obj.iter().enumerate() {
            v = v.add(c.mul(xr[j])?)?;
        }
        let Ok(claimed) = Rat::from_f64(self.cert.objective) else {
            self.fail("claimed objective is not exactly representable".to_owned());
            return Ok(Some(v));
        };
        let tol = eps.mul(Rat::one().add(v.abs()?)?)?;
        if !v.sub(claimed)?.abs()?.le(tol)? {
            self.reasons.push(format!(
                "claimed objective {claimed} disagrees with the incumbent's exact objective {v}"
            ));
        }
        Ok(Some(v))
    }

    /// The per-status verdict. Everything above has already pushed
    /// reasons for structural or witness failures; this adds the
    /// status-specific conditions.
    fn verdict(&mut self, exact_obj: Option<Rat>) {
        match self.cert.status {
            Status::Optimal => {
                let Some(v) = exact_obj else {
                    return; // incumbent failures already recorded
                };
                let Ext::Fin(l) = self.global_lb else {
                    self.fail(format!(
                        "optimality claimed but the certified tree bound is {}",
                        self.global_lb
                    ));
                    return;
                };
                match self.gap_ok(v, l) {
                    Ok(true) => {}
                    Ok(false) => self.fail(format!(
                        "claimed optimum is not sandwiched: exact incumbent objective {v} exceeds the certified bound {l} by more than the allowed gap"
                    )),
                    Err(Overflow) => self.fail(
                        "exact arithmetic overflowed while checking the optimality gap".to_owned(),
                    ),
                }
            }
            Status::Feasible => {} // incumbent checks are sufficient
            Status::Infeasible => {
                if self.leaves != self.infeasible_leaves {
                    self.fail(format!(
                        "infeasibility claimed but only {} of {} leaves are infeasible",
                        self.infeasible_leaves, self.leaves
                    ));
                }
            }
            // Unknown claims nothing beyond the structure already
            // checked. Unbounded carries no witness in this format and
            // is effectively uncertified (box-bounded formulations
            // never produce it); see DESIGN.md §9.
            Status::Unknown | Status::Unbounded => {}
        }
    }

    /// `V - L <= abs_gap + 2^-20 + 2^-23 * sum of finite declared
    /// ranges` — the declared gap plus the documented allowance for the
    /// solver's reduced-cost pricing cutoff.
    fn gap_ok(&self, v: Rat, l: Rat) -> Result<bool, Overflow> {
        let gap = Rat::from_f64(self.cert.abs_gap)?;
        let mut span = Rat::zero();
        for j in 0..self.em.lb.len() {
            if let Ext::Fin(u) = self.em.ub[j] {
                span = span.add(u.sub(self.em.lb[j])?)?;
            }
        }
        let slack = eps_abs().add(eps_dual().mul(span)?)?;
        v.sub(l)?.le(gap.add(slack)?)
    }

    fn finish(self) -> CheckReport {
        CheckReport {
            accepted: self.reasons.is_empty(),
            reasons: self.reasons,
            nodes_checked: self.cert.nodes.len(),
            leaves: self.leaves,
            downgraded_leaves: self.downgraded_leaves,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_milp::{solve_certified, Model, SolveParams};

    fn knapsack() -> Model {
        let mut m = Model::new();
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.set_objective([(x, -5.0), (y, -4.0), (z, -3.0)]);
        m.add_le([(x, 2.0), (y, 3.0), (z, 1.0)], 3.0);
        m
    }

    #[test]
    fn optimal_certificate_accepted() {
        let m = knapsack();
        let cs = solve_certified(&m, &SolveParams::default());
        assert_eq!(cs.solution.status, Status::Optimal);
        let report = check(&m, &cs.certificate);
        assert!(report.accepted, "{}", report.summary());
        assert!(report.leaves >= 1);
    }

    #[test]
    fn perturbed_incumbent_rejected() {
        let m = knapsack();
        let mut cs = solve_certified(&m, &SolveParams::default());
        let inc = cs.certificate.incumbent.as_mut().expect("incumbent");
        inc[0] = 0.5; // binary coordinate made fractional
        let report = check(&m, &cs.certificate);
        assert!(!report.accepted);
        assert!(
            report.reasons.iter().any(|r| r.contains("not an integer")),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn perturbed_duals_rejected() {
        let m = knapsack();
        let mut cs = solve_certified(&m, &SolveParams::default());
        assert_eq!(cs.solution.status, Status::Optimal);
        // Zeroed duals are still sign-feasible, so every recomputed
        // node bound collapses to sum_j min(c_j x_j) = -12, far below
        // the claimed optimum of -8: the sandwich must fail.
        let mut tampered = 0;
        for node in &mut cs.certificate.nodes {
            if let NodeOutcome::Bounded { duals } = &mut node.outcome {
                duals.iter_mut().for_each(|d| *d = 0.0);
                tampered += 1;
            }
        }
        assert!(tampered > 0, "expected at least one solved node");
        let report = check(&m, &cs.certificate);
        assert!(!report.accepted);
        assert!(
            report.reasons.iter().any(|r| r.contains("not sandwiched")),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn presolve_infeasible_certificate_accepted() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 3.0);
        let cs = solve_certified(&m, &SolveParams::default());
        assert_eq!(cs.solution.status, Status::Infeasible);
        let report = check(&m, &cs.certificate);
        assert!(report.accepted, "{}", report.summary());
    }

    #[test]
    fn wrong_status_on_infeasible_model_rejected() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_ge([(a, 1.0), (b, 1.0)], 3.0);
        let mut cs = solve_certified(&m, &SolveParams::default());
        cs.certificate.status = Status::Optimal;
        cs.certificate.incumbent = Some(vec![1.0, 1.0]);
        cs.certificate.objective = 0.0;
        let report = check(&m, &cs.certificate);
        assert!(!report.accepted, "{}", report.summary());
    }
}
