//! Rectilinear Steiner minimal-tree (RSMT) estimation.
//!
//! Routers and wire-load models need a better net-length estimate than
//! HPWL for multi-pin nets. This module implements the classic two-stage
//! heuristic: build the rectilinear minimum spanning tree (Prim), then
//! iteratively *steinerize* by snapping tree edges onto Hanan-grid points
//! that let edges share trunk segments. It is exact for 2- and 3-pin
//! nets and within a few percent of optimal for the net sizes that occur
//! in standard-cell designs.
//!
//! The router uses the MST order for tree growth; reports can use
//! [`rsmt_length`] as a routed-wirelength lower-bound sanity check
//! (`HPWL ≤ RSMT ≤ routed WL` for every fully-routed net, up to
//! congestion detours).

use vm1_geom::{Dbu, Point};

/// Length of the rectilinear minimum spanning tree over `points`
/// (Prim's algorithm, Manhattan metric).
#[must_use]
pub fn rmst_length(points: &[Point]) -> Dbu {
    if points.len() < 2 {
        return Dbu::ZERO;
    }
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![i64::MAX; n];
    in_tree[0] = true;
    for j in 1..n {
        dist[j] = points[0].manhattan_distance(points[j]).nm();
    }
    let mut total = 0i64;
    for _ in 1..n {
        let Some((best, &d)) = dist
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by_key(|(_, &d)| d)
        else {
            break; // loop runs n-1 times over n-1 outside nodes
        };
        total += d;
        in_tree[best] = true;
        for j in 0..n {
            if !in_tree[j] {
                let nd = points[best].manhattan_distance(points[j]).nm();
                if nd < dist[j] {
                    dist[j] = nd;
                }
            }
        }
    }
    Dbu(total)
}

/// Heuristic rectilinear Steiner minimal-tree length over `points`.
///
/// Starts from the RMST and repeatedly inserts the Hanan point that
/// reduces total length the most (connecting it to its three nearest
/// neighbours replaces their pairwise tree paths), until no insertion
/// helps. Exact for ≤ 3 pins.
#[must_use]
pub fn rsmt_length(points: &[Point]) -> Dbu {
    match points.len() {
        0 | 1 => Dbu::ZERO,
        2 => points[0].manhattan_distance(points[1]),
        3 => {
            // Optimal 3-pin Steiner: connect through the median point.
            let mut xs: Vec<i64> = points.iter().map(|p| p.x.nm()).collect();
            let mut ys: Vec<i64> = points.iter().map(|p| p.y.nm()).collect();
            xs.sort_unstable();
            ys.sort_unstable();
            Dbu((xs[2] - xs[0]) + (ys[2] - ys[0]))
        }
        _ => {
            // Iterated 1-Steiner (restricted): add Hanan points while they
            // reduce the MST length.
            let mut pts = points.to_vec();
            let mut best = rmst_length(&pts);
            loop {
                let mut improved: Option<(Point, Dbu)> = None;
                // Hanan candidates from the ORIGINAL pins (keeps the
                // candidate set quadratic in the pin count).
                for &a in points {
                    for &b in points {
                        let cand = Point::new(a.x, b.y);
                        if pts.contains(&cand) {
                            continue;
                        }
                        pts.push(cand);
                        let len = rmst_length(&pts);
                        pts.pop();
                        if len < best && improved.as_ref().is_none_or(|&(_, l)| len < l) {
                            improved = Some((cand, len));
                        }
                    }
                }
                match improved {
                    Some((p, len)) => {
                        pts.push(p);
                        best = len;
                    }
                    None => break,
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(Dbu(x), Dbu(y))
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(rsmt_length(&[]), Dbu(0));
        assert_eq!(rsmt_length(&[p(5, 5)]), Dbu(0));
        assert_eq!(rsmt_length(&[p(0, 0), p(3, 4)]), Dbu(7));
        assert_eq!(rmst_length(&[p(0, 0), p(3, 4)]), Dbu(7));
    }

    #[test]
    fn three_pin_median_optimal() {
        // L-shaped triple: RSMT = bbox half-perimeter, MST is longer.
        let pts = [p(0, 0), p(10, 0), p(5, 8)];
        assert_eq!(rsmt_length(&pts), Dbu(18));
        assert!(rmst_length(&pts) >= rsmt_length(&pts));
    }

    #[test]
    fn four_pin_cross_gains_steiner_point() {
        // Classic cross: 4 pins at (±10, 0), (0, ±10).
        let pts = [p(-10, 0), p(10, 0), p(0, -10), p(0, 10)];
        let mst = rmst_length(&pts);
        let rsmt = rsmt_length(&pts);
        assert_eq!(rsmt, Dbu(40), "trunk through the centre");
        assert!(mst > rsmt, "mst {mst} must exceed rsmt {rsmt}");
    }

    #[test]
    fn rsmt_bounded_by_hpwl_and_mst() {
        // HPWL ≤ RSMT ≤ RMST for any point set.
        let sets: Vec<Vec<Point>> = vec![
            vec![p(0, 0), p(7, 3), p(2, 9), p(11, 6)],
            vec![p(0, 0), p(1, 10), p(2, 1), p(8, 8), p(4, 5)],
            vec![p(3, 3), p(3, 9), p(12, 3), p(12, 9), p(7, 6), p(0, 0)],
        ];
        for pts in sets {
            let bbox = vm1_geom::Rect::bounding_box(pts.iter().copied()).unwrap();
            let hpwl = bbox.half_perimeter();
            let rsmt = rsmt_length(&pts);
            let mst = rmst_length(&pts);
            assert!(hpwl <= rsmt, "hpwl {hpwl} > rsmt {rsmt}");
            assert!(rsmt <= mst, "rsmt {rsmt} > mst {mst}");
        }
    }

    #[test]
    fn collinear_points_cost_their_span() {
        let pts = [p(0, 0), p(4, 0), p(9, 0), p(2, 0)];
        assert_eq!(rsmt_length(&pts), Dbu(9));
        assert_eq!(rmst_length(&pts), Dbu(9));
    }

    #[test]
    fn duplicate_points_are_free() {
        let pts = [p(1, 1), p(1, 1), p(5, 1)];
        assert_eq!(rsmt_length(&pts), Dbu(4));
    }
}
