//! Multi-source A* maze search over the routing lattice.

use crate::grid::{Edge, RoutingGrid};
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use vm1_tech::{Layer, LayerDir};

/// Cost weights for the maze search (a view into the router config).
#[derive(Clone, Copy, Debug)]
pub struct MazeCosts {
    /// Extra cost of one via cut, in nm-equivalents.
    pub via_cost: i64,
    /// Penalty per unit of existing usage on an edge (congestion avoidance).
    pub overflow_penalty: i64,
    /// Weight of the PathFinder history term.
    pub history_weight: i64,
}

/// Reusable search scratch space (epoch-stamped arrays), so per-net
/// searches allocate nothing.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    dist: Vec<i64>,
    parent: Vec<NodeId>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl SearchSpace {
    /// Creates scratch space for a grid with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> SearchSpace {
        SearchSpace {
            dist: vec![0; n],
            parent: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
        }
    }

    fn visit(&mut self, node: NodeId) -> bool {
        let i = node as usize;
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    fn seen(&self, node: NodeId) -> bool {
        self.stamp[node as usize] == self.epoch
    }
}

/// Search window in grid coordinates (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct SearchBox {
    /// Lowest column.
    pub x_lo: i64,
    /// Highest column.
    pub x_hi: i64,
    /// Lowest track.
    pub y_lo: i64,
    /// Highest track.
    pub y_hi: i64,
}

impl SearchBox {
    /// The whole grid.
    #[must_use]
    pub fn whole(grid: &RoutingGrid) -> SearchBox {
        SearchBox {
            x_lo: 0,
            x_hi: grid.width - 1,
            y_lo: 0,
            y_hi: grid.tracks - 1,
        }
    }

    /// Expands the box by `margin` and clamps to the grid.
    #[must_use]
    pub fn expanded(self, margin: i64, grid: &RoutingGrid) -> SearchBox {
        SearchBox {
            x_lo: (self.x_lo - margin).max(0),
            x_hi: (self.x_hi + margin).min(grid.width - 1),
            y_lo: (self.y_lo - margin).max(0),
            y_hi: (self.y_hi + margin).min(grid.tracks - 1),
        }
    }

    fn contains(self, x: i64, y: i64) -> bool {
        (self.x_lo..=self.x_hi).contains(&x) && (self.y_lo..=self.y_hi).contains(&y)
    }
}

/// Runs a multi-source A* from `sources` to any node in `targets`.
///
/// `allowed` lists nodes that are passable for this net even though they
/// are globally blocked (its own pin shapes). Returns the node path from a
/// source to the reached target (source first), or `None` if no path
/// exists within `bbox`.
pub fn search(
    grid: &RoutingGrid,
    space: &mut SearchSpace,
    sources: &[NodeId],
    targets: &BTreeSet<NodeId>,
    allowed: &BTreeSet<NodeId>,
    costs: MazeCosts,
    bbox: SearchBox,
) -> Option<Vec<NodeId>> {
    space.epoch = space.epoch.wrapping_add(1);
    if space.epoch == 0 {
        // Stamp wrap-around: reset.
        space.stamp.iter_mut().for_each(|s| *s = 0);
        space.epoch = 1;
    }

    // Target bounding box for the admissible heuristic.
    let mut tx_lo = i64::MAX;
    let mut tx_hi = i64::MIN;
    let mut ty_lo = i64::MAX;
    let mut ty_hi = i64::MIN;
    for &t in targets {
        let (_, x, y) = grid.coords(t);
        tx_lo = tx_lo.min(x);
        tx_hi = tx_hi.max(x);
        ty_lo = ty_lo.min(y);
        ty_hi = ty_hi.max(y);
    }
    if targets.is_empty() {
        return None;
    }
    let h = |x: i64, y: i64| -> i64 {
        let dx = if x < tx_lo {
            tx_lo - x
        } else if x > tx_hi {
            x - tx_hi
        } else {
            0
        };
        let dy = if y < ty_lo {
            ty_lo - y
        } else if y > ty_hi {
            y - ty_hi
        } else {
            0
        };
        dx * grid.pitch_x + dy * grid.pitch_y
    };

    let mut heap: BinaryHeap<Reverse<(i64, NodeId)>> = BinaryHeap::new();
    for &s in sources {
        let (_, x, y) = grid.coords(s);
        if !bbox.contains(x, y) {
            continue;
        }
        if space.visit(s) {
            space.dist[s as usize] = 0;
            space.parent[s as usize] = s;
            heap.push(Reverse((h(x, y), s)));
        }
    }

    let edge_cost = |e: Edge, base: i64| -> i64 {
        let u = grid.usage(e) as i64;
        let hist = grid.history(e) as i64;
        base + u * costs.overflow_penalty + hist * costs.history_weight
    };

    while let Some(Reverse((f, node))) = heap.pop() {
        let g = space.dist[node as usize];
        let (layer, x, y) = grid.coords(node);
        if f - h(x, y) > g {
            continue; // stale entry
        }
        if targets.contains(&node) {
            // Reconstruct.
            let mut path = vec![node];
            let mut cur = node;
            while space.parent[cur as usize] != cur {
                cur = space.parent[cur as usize];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }

        let mut try_neighbor = |nb: NodeId, step: i64, grid: &RoutingGrid| {
            if !grid.passable(nb, allowed) {
                return;
            }
            let Some(e) = grid.edge_between(node, nb) else {
                return; // not a grid neighbour: nothing to relax
            };
            let ng = g + edge_cost(e, step);
            let i = nb as usize;
            if !space.seen(nb) || ng < space.dist[i] {
                if !space.seen(nb) {
                    space.visit(nb);
                }
                space.dist[i] = ng;
                space.parent[i] = node;
                let (_, nx, ny) = grid.coords(nb);
                heap.push(Reverse((ng + h(nx, ny), nb)));
            }
        };

        // Same-layer moves, preferred direction only (M0 has no wires).
        if layer != Layer::M0 {
            match layer.dir() {
                LayerDir::Horizontal => {
                    if x < bbox.x_hi {
                        try_neighbor(grid.node(layer, x + 1, y), grid.pitch_x, grid);
                    }
                    if x > bbox.x_lo {
                        try_neighbor(grid.node(layer, x - 1, y), grid.pitch_x, grid);
                    }
                }
                LayerDir::Vertical => {
                    if y < bbox.y_hi {
                        try_neighbor(grid.node(layer, x, y + 1), grid.pitch_y, grid);
                    }
                    if y > bbox.y_lo {
                        try_neighbor(grid.node(layer, x, y - 1), grid.pitch_y, grid);
                    }
                }
            }
        }
        // Vias up/down.
        if let Some(up) = layer.above() {
            try_neighbor(grid.node(up, x, y), costs.via_cost, grid);
        }
        if let Some(down) = layer.below() {
            try_neighbor(grid.node(down, x, y), costs.via_cost, grid);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Dbu;
    use vm1_netlist::Design;
    use vm1_tech::{CellArch, Library, PinDir};

    /// Empty design => empty grid for pure search tests.
    fn empty_grid(rows: i64, sites: i64) -> RoutingGrid {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("g", lib, rows, sites);
        // One dummy net so the design is trivially valid (unused).
        let p1 = d.add_port("a", vm1_geom::Point::new(Dbu(0), Dbu(0)), PinDir::In);
        let p2 = d.add_port("b", vm1_geom::Point::new(Dbu(0), Dbu(360)), PinDir::Out);
        let n = d.add_net("n");
        d.connect_port(p1, n);
        d.connect_port(p2, n);
        RoutingGrid::build(&d).0
    }

    fn costs() -> MazeCosts {
        MazeCosts {
            via_cost: 150,
            overflow_penalty: 3000,
            history_weight: 800,
        }
    }

    #[test]
    fn routes_straight_wire_on_m2() {
        let g = empty_grid(3, 30);
        let mut sp = SearchSpace::new(g.num_nodes());
        let s = g.node(Layer::M2, 2, 5);
        let t = g.node(Layer::M2, 12, 5);
        let path = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .expect("path");
        assert_eq!(path.first(), Some(&s));
        assert_eq!(path.last(), Some(&t));
        assert_eq!(path.len(), 11, "straight line, no detour");
    }

    #[test]
    fn l_shape_uses_via() {
        let g = empty_grid(3, 30);
        let mut sp = SearchSpace::new(g.num_nodes());
        let s = g.node(Layer::M2, 2, 2);
        let t = g.node(Layer::M2, 10, 12);
        let path = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .expect("path");
        // Must change layer to move vertically: at least 2 vias.
        let layers: Vec<Layer> = path.iter().map(|&n| g.coords(n).0).collect();
        assert!(layers.iter().any(|&l| l != Layer::M2));
    }

    #[test]
    fn blocked_node_forces_detour() {
        let mut g = empty_grid(3, 30);
        // Wall on M2 track 5 between the terminals, plus block M1/M3
        // around so it must go around.
        let s = g.node(Layer::M2, 2, 5);
        let t = g.node(Layer::M2, 12, 5);
        let wall = g.node(Layer::M2, 7, 5);
        g.block(wall);
        let mut sp = SearchSpace::new(g.num_nodes());
        let path = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .expect("path despite wall");
        assert!(!path.contains(&wall));
        assert!(path.len() > 11, "detour is longer");
    }

    #[test]
    fn allowed_set_opens_blocked_nodes() {
        let mut g = empty_grid(3, 30);
        let s = g.node(Layer::M2, 2, 5);
        let t = g.node(Layer::M2, 4, 5);
        let mid = g.node(Layer::M2, 3, 5);
        g.block(mid);
        let mut sp = SearchSpace::new(g.num_nodes());
        // Without allowance: path must detour.
        let p1 = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .unwrap();
        assert!(p1.len() > 3);
        // With allowance: straight through.
        let p2 = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::from([mid]),
            costs(),
            SearchBox::whole(&g),
        )
        .unwrap();
        assert_eq!(p2.len(), 3);
    }

    #[test]
    fn bbox_restricts_search() {
        let g = empty_grid(3, 30);
        let mut sp = SearchSpace::new(g.num_nodes());
        let s = g.node(Layer::M2, 2, 5);
        let t = g.node(Layer::M2, 25, 5);
        let tight = SearchBox {
            x_lo: 0,
            x_hi: 10,
            y_lo: 0,
            y_hi: 10,
        };
        assert!(search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            tight
        )
        .is_none());
    }

    #[test]
    fn congestion_steers_away() {
        let mut g = empty_grid(3, 30);
        let s = g.node(Layer::M2, 2, 5);
        let t = g.node(Layer::M2, 12, 5);
        // Pre-load usage on the straight track.
        for x in 2..12 {
            let e = g
                .edge_between(g.node(Layer::M2, x, 5), g.node(Layer::M2, x + 1, 5))
                .unwrap();
            g.add_usage(e, 1);
        }
        let mut sp = SearchSpace::new(g.num_nodes());
        let path = search(
            &g,
            &mut sp,
            &[s],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .unwrap();
        // The router should avoid the congested track (detour via another
        // track/layer), so the path is not the straight 11-node line.
        assert!(path.len() > 11);
    }

    /// Regression for determinism rule D1: `search` takes its target and
    /// allowance sets as `BTreeSet` so tie-breaks between equidistant
    /// targets never depend on hash-iteration order. Repeated searches
    /// (fresh scratch each time) must return the identical path.
    #[test]
    fn equidistant_targets_resolve_deterministically() {
        let g = empty_grid(3, 30);
        let s = g.node(Layer::M2, 10, 5);
        // Two targets at equal Manhattan distance from the source.
        let targets = BTreeSet::from([g.node(Layer::M2, 6, 5), g.node(Layer::M2, 14, 5)]);
        let mut first: Option<Vec<NodeId>> = None;
        for _ in 0..4 {
            let mut sp = SearchSpace::new(g.num_nodes());
            let path = search(
                &g,
                &mut sp,
                &[s],
                &targets,
                &BTreeSet::new(),
                costs(),
                SearchBox::whole(&g),
            )
            .expect("path");
            match &first {
                None => first = Some(path),
                Some(p) => assert_eq!(p, &path, "same query must give the same path"),
            }
        }
    }

    #[test]
    fn multi_source_picks_nearest() {
        let g = empty_grid(3, 30);
        let mut sp = SearchSpace::new(g.num_nodes());
        let far = g.node(Layer::M2, 0, 0);
        let near = g.node(Layer::M2, 10, 5);
        let t = g.node(Layer::M2, 12, 5);
        let path = search(
            &g,
            &mut sp,
            &[far, near],
            &BTreeSet::from([t]),
            &BTreeSet::new(),
            costs(),
            SearchBox::whole(&g),
        )
        .unwrap();
        assert_eq!(path.first(), Some(&near));
    }
}
