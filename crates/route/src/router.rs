//! Net-level routing driver: dM1-first connection, Steiner-tree growth by
//! nearest-terminal maze routing, PathFinder rip-up & re-route, metric
//! extraction.

use crate::grid::{Edge, PinAccess, RoutingGrid};
use crate::maze::{search, MazeCosts, SearchBox, SearchSpace};
use crate::NodeId;
use std::collections::BTreeSet;
use vm1_geom::Dbu;
use vm1_netlist::{Design, NetId};
use vm1_tech::Layer;

/// Router parameters.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Cost of one via cut in nm-equivalents.
    pub via_cost: i64,
    /// Cost penalty per unit of pre-existing usage on an edge.
    pub overflow_penalty: i64,
    /// Weight of PathFinder history.
    pub history_weight: i64,
    /// Rip-up and re-route iterations (1 = single pass).
    pub iterations: usize,
    /// Initial search-window margin around a subnet's bounding box, in
    /// grid units; doubled twice before falling back to the whole grid.
    pub bbox_margin: i64,
    /// Whether the router attempts direct vertical M1 routes at all.
    /// Disabling this models a flow that cannot exploit pin alignment
    /// (ablation of the paper's premise).
    pub enable_dm1: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            via_cost: 150,
            overflow_penalty: 3000,
            history_weight: 800,
            iterations: 3,
            bbox_margin: 12,
            enable_dm1: true,
        }
    }
}

/// One straight routed shape in grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Layer of the shape.
    pub layer: Layer,
    /// Start column.
    pub x0: i64,
    /// Start track.
    pub y0: i64,
    /// End column (inclusive).
    pub x1: i64,
    /// End track (inclusive).
    pub y1: i64,
}

impl Segment {
    /// Length of the segment in nm given the grid pitches.
    #[must_use]
    pub fn len_nm(&self, grid: &RoutingGrid) -> i64 {
        (self.x1 - self.x0).abs() * grid.pitch_x + (self.y1 - self.y0).abs() * grid.pitch_y
    }
}

/// Routing of one net.
#[derive(Clone, Debug, Default)]
pub struct NetRoute {
    /// Straight wire shapes.
    pub segments: Vec<Segment>,
    /// Via counts per layer pair (index 0 = V01 … 3 = V34).
    pub vias: [usize; 4],
    /// Number of direct vertical M1 (sub)routes in this net.
    pub dm1: usize,
    /// Whether every terminal was connected.
    pub routed: bool,
    /// Resources consumed (for rip-up).
    pub(crate) edges: Vec<Edge>,
}

/// Aggregate routing metrics — the quantities of the paper's Table 2 and
/// Figures 5–8.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouteMetrics {
    /// Total routed wirelength.
    pub routed_wl: Dbu,
    /// Wirelength per layer (index = layer).
    pub layer_wl: [Dbu; 5],
    /// Via counts per layer pair (index 0 = V01 … 3 = V34).
    pub vias: [usize; 4],
    /// Number of direct vertical M1 routes (#dM1).
    pub num_dm1: usize,
    /// Design-rule-violation proxy: total edge overflow plus a fixed
    /// charge per unrouted subnet.
    pub drvs: usize,
    /// Subnets that could not be connected.
    pub unrouted: usize,
}

impl RouteMetrics {
    /// M1 wirelength (the paper's "M1 WL" column).
    #[must_use]
    pub fn m1_wl(&self) -> Dbu {
        self.layer_wl[Layer::M1.index()]
    }

    /// V12 count (the paper's "#via12" column).
    #[must_use]
    pub fn via12(&self) -> usize {
        self.vias[1]
    }
}

/// Complete routing result.
#[derive(Clone, Debug)]
pub struct RouteResult {
    /// Per-net routes, indexed like `design.nets()`.
    pub nets: Vec<NetRoute>,
    /// Aggregate metrics.
    pub metrics: RouteMetrics,
}

impl RouteResult {
    /// Route of a specific net.
    #[must_use]
    pub fn net(&self, id: NetId) -> &NetRoute {
        &self.nets[id.0]
    }
}

/// Routes the whole design. See the crate docs for the model.
#[must_use]
pub fn route(design: &Design, cfg: &RouterConfig) -> RouteResult {
    let (mut grid, net_pins) = RoutingGrid::build(design);
    let mut space = SearchSpace::new(grid.num_nodes());
    let mut routes: Vec<NetRoute> = vec![NetRoute::default(); design.num_nets()];

    // Short nets first: they have the least flexibility.
    let mut order: Vec<usize> = (0..design.num_nets()).collect();
    order.sort_by_key(|&i| design.net_hpwl(NetId(i)));

    for &i in &order {
        routes[i] = route_net(design, &mut grid, &mut space, &net_pins[i], cfg);
    }

    // Rip-up and re-route over-capacity nets.
    for _ in 1..cfg.iterations {
        if grid.total_overflow() == 0 {
            break;
        }
        grid.bump_history();
        let offenders: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| routes[i].edges.iter().any(|&e| grid.usage(e) > 1))
            .collect();
        if offenders.is_empty() {
            break;
        }
        for &i in &offenders {
            for &e in &routes[i].edges {
                grid.add_usage(e, -1);
            }
            routes[i] = route_net(design, &mut grid, &mut space, &net_pins[i], cfg);
        }
    }

    // Metrics.
    let mut metrics = RouteMetrics::default();
    for r in &routes {
        for s in &r.segments {
            let len = Dbu(s.len_nm(&grid));
            metrics.layer_wl[s.layer.index()] += len;
            metrics.routed_wl += len;
        }
        for (k, &v) in r.vias.iter().enumerate() {
            metrics.vias[k] += v;
        }
        metrics.num_dm1 += r.dm1;
        if !r.routed {
            metrics.unrouted += 1;
        }
    }
    metrics.drvs = grid.total_overflow() + 5 * metrics.unrouted;
    RouteResult {
        nets: routes,
        metrics,
    }
}

fn route_net(
    design: &Design,
    grid: &mut RoutingGrid,
    space: &mut SearchSpace,
    pins: &[PinAccess],
    cfg: &RouterConfig,
) -> NetRoute {
    let mut out = NetRoute {
        routed: true,
        ..NetRoute::default()
    };
    if pins.len() < 2 {
        return out;
    }
    let allowed: BTreeSet<NodeId> = pins.iter().flat_map(|p| p.nodes.iter().copied()).collect();
    let costs = MazeCosts {
        via_cost: cfg.via_cost,
        overflow_penalty: cfg.overflow_penalty,
        history_weight: cfg.history_weight,
    };
    let tech = design.library().tech();

    // Tree state.
    let mut tree_nodes: Vec<NodeId> = pins[0].nodes.clone();
    let mut connected: Vec<usize> = vec![0];
    let mut remaining: Vec<usize> = (1..pins.len()).collect();

    while !remaining.is_empty() {
        // Nearest unconnected pin to any connected pin (centre distance).
        let Some((pick_pos, &pin_idx)) = remaining.iter().enumerate().min_by_key(|&(_, &p)| {
            connected
                .iter()
                .map(|&q| pin_dist(&pins[p], &pins[q]))
                .min()
                .unwrap_or(i64::MAX)
        }) else {
            break; // loop guard makes this unreachable
        };
        remaining.swap_remove(pick_pos);
        let target = &pins[pin_idx];

        // --- direct vertical M1 attempt -------------------------------
        let mut done = false;
        if cfg.enable_dm1 && tech.arch.allows_inter_row_m1() {
            for &q in &connected {
                if let Some(plan) =
                    try_dm1(grid, &pins[q], target, &allowed, tech.gamma, tech.delta)
                {
                    commit_dm1(grid, &plan, &mut out, &mut tree_nodes);
                    done = true;
                    break;
                }
            }
        }
        if done {
            connected.push(pin_idx);
            continue;
        }

        // --- maze routing ----------------------------------------------
        let targets: BTreeSet<NodeId> = target.nodes.iter().copied().collect();
        let mut bbox = tree_bbox(grid, &tree_nodes, target).expanded(cfg.bbox_margin, grid);
        let mut path = None;
        for attempt in 0..3 {
            path = search(grid, space, &tree_nodes, &targets, &allowed, costs, bbox);
            if path.is_some() {
                break;
            }
            bbox = if attempt == 1 {
                SearchBox::whole(grid)
            } else {
                bbox.expanded(cfg.bbox_margin * 4, grid)
            };
        }
        match path {
            Some(p) => {
                let max_span = tech.gamma * grid.tpr;
                commit_path(grid, &p, &mut out, &mut tree_nodes, max_span);
                connected.push(pin_idx);
            }
            None => {
                out.routed = false;
            }
        }
    }
    out
}

fn pin_dist(a: &PinAccess, b: &PinAccess) -> i64 {
    let ax = (a.col_lo + a.col_hi) / 2;
    let ay = (a.track_lo + a.track_hi) / 2;
    let bx = (b.col_lo + b.col_hi) / 2;
    let by = (b.track_lo + b.track_hi) / 2;
    (ax - bx).abs() + (ay - by).abs()
}

fn tree_bbox(grid: &RoutingGrid, tree: &[NodeId], target: &PinAccess) -> SearchBox {
    let mut x_lo = target.col_lo;
    let mut x_hi = target.col_hi;
    let mut y_lo = target.track_lo;
    let mut y_hi = target.track_hi;
    for &n in tree {
        let (_, x, y) = grid.coords(n);
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    SearchBox {
        x_lo,
        x_hi,
        y_lo,
        y_hi,
    }
}

/// A feasible direct vertical M1 route between two pins.
#[derive(Clone, Copy, Debug)]
struct DmPlan {
    col: i64,
    /// Track of the connection at pin a / pin b.
    y_a: i64,
    y_b: i64,
    /// Whether each end needs a V01 (pin on M0).
    via_a: bool,
    via_b: bool,
}

/// Tests whether pins `a` and `b` admit a direct vertical M1 route:
/// a single M1 segment (plus V01s for M0 pins), within γ rows, with the
/// required δ overlap for M0 pins, over free resources.
fn try_dm1(
    grid: &RoutingGrid,
    a: &PinAccess,
    b: &PinAccess,
    allowed: &BTreeSet<NodeId>,
    gamma: i64,
    delta: Dbu,
) -> Option<DmPlan> {
    // Only cell pins on M1 (ClosedM1/conventional) or M0 (OpenM1).
    if a.layer != b.layer || !matches!(a.layer, Layer::M0 | Layer::M1) {
        return None;
    }
    // Row span within γ.
    let row_a = grid.row_of_track((a.track_lo + a.track_hi) / 2);
    let row_b = grid.row_of_track((b.track_lo + b.track_hi) / 2);
    if (row_a - row_b).abs() > gamma {
        return None;
    }
    // Column overlap.
    let c_lo = a.col_lo.max(b.col_lo);
    let c_hi = a.col_hi.min(b.col_hi);
    if c_lo > c_hi {
        return None;
    }
    // δ overlap for horizontal (M0) pins — constraint (13) of the paper.
    if a.layer == Layer::M0 && a.x_range.overlap_len(b.x_range) < delta {
        return None;
    }

    // Connection tracks: nearest tracks of each pin toward the other.
    let y_a = clamp_toward(a.track_lo, a.track_hi, (b.track_lo + b.track_hi) / 2);
    let y_b = clamp_toward(b.track_lo, b.track_hi, y_a);
    let (lo, hi) = (y_a.min(y_b), y_a.max(y_b));
    let via_a = a.layer == Layer::M0;
    let via_b = b.layer == Layer::M0;

    // Try columns from the middle of the overlap outward.
    let mid = (c_lo + c_hi) / 2;
    let mut cols: Vec<i64> = (c_lo..=c_hi).collect();
    cols.sort_by_key(|&c| (c - mid).abs());
    'col: for c in cols {
        // All M1 nodes along the segment must be passable and all vertical
        // edges unused.
        for y in lo..=hi {
            let n = grid.node(Layer::M1, c, y);
            if !grid.passable(n, allowed) {
                continue 'col;
            }
            if y < hi {
                let Some(e) = grid.edge_between(n, grid.node(Layer::M1, c, y + 1)) else {
                    continue 'col;
                };
                if grid.usage(e) > 0 {
                    continue 'col;
                }
            }
        }
        // V01 landing for M0 pins: the M0 node at (c, y) must be this net's
        // pin, and the via must be free.
        if via_a {
            let m0 = grid.node(Layer::M0, c, y_a);
            if !allowed.contains(&m0) {
                continue 'col;
            }
            let Some(e) = grid.edge_between(m0, grid.node(Layer::M1, c, y_a)) else {
                continue 'col;
            };
            if grid.usage(e) > 0 {
                continue 'col;
            }
        }
        if via_b {
            let m0 = grid.node(Layer::M0, c, y_b);
            if !allowed.contains(&m0) {
                continue 'col;
            }
            let Some(e) = grid.edge_between(m0, grid.node(Layer::M1, c, y_b)) else {
                continue 'col;
            };
            if grid.usage(e) > 0 {
                continue 'col;
            }
        } else {
            // M1 pin: the segment endpoint must belong to the pin's own
            // column (guaranteed when c is in the pin's col range).
        }
        return Some(DmPlan {
            col: c,
            y_a,
            y_b,
            via_a,
            via_b,
        });
    }
    None
}

fn clamp_toward(lo: i64, hi: i64, toward: i64) -> i64 {
    toward.clamp(lo, hi)
}

fn commit_dm1(
    grid: &mut RoutingGrid,
    plan: &DmPlan,
    out: &mut NetRoute,
    tree_nodes: &mut Vec<NodeId>,
) {
    let (lo, hi) = (plan.y_a.min(plan.y_b), plan.y_a.max(plan.y_b));
    for y in lo..=hi {
        let n = grid.node(Layer::M1, plan.col, y);
        tree_nodes.push(n);
        if y < hi {
            // try_dm1 already walked these edges, so they exist.
            if let Some(e) = grid.edge_between(n, grid.node(Layer::M1, plan.col, y + 1)) {
                grid.add_usage(e, 1);
                out.edges.push(e);
            }
        }
    }
    if lo < hi {
        out.segments.push(Segment {
            layer: Layer::M1,
            x0: plan.col,
            y0: lo,
            x1: plan.col,
            y1: hi,
        });
    }
    for (is_via, y) in [(plan.via_a, plan.y_a), (plan.via_b, plan.y_b)] {
        if is_via {
            let m0 = grid.node(Layer::M0, plan.col, y);
            if let Some(e) = grid.edge_between(m0, grid.node(Layer::M1, plan.col, y)) {
                grid.add_usage(e, 1);
                out.edges.push(e);
                out.vias[0] += 1;
            }
            tree_nodes.push(m0);
        }
    }
    out.dm1 += 1;
}

fn commit_path(
    grid: &mut RoutingGrid,
    path: &[NodeId],
    out: &mut NetRoute,
    tree_nodes: &mut Vec<NodeId>,
    max_dm1_span_tracks: i64,
) {
    // Consume edges.
    let mut m1_runs = 0usize;
    let mut non_pin_via = false;
    for w in path.windows(2) {
        // Maze search only ever steps between grid neighbours.
        let Some(e) = grid.edge_between(w[0], w[1]) else {
            continue;
        };
        grid.add_usage(e, 1);
        out.edges.push(e);
        if let Edge::Via(_) = e {
            let la = grid.coords(w[0]).0.index().min(grid.coords(w[1]).0.index());
            out.vias[la] += 1;
            if la > 0 {
                non_pin_via = true;
            }
        }
    }
    // Compress into straight segments.
    let mut run_start = 0usize;
    for k in 1..=path.len() {
        let end_run = k == path.len() || grid.coords(path[k]).0 != grid.coords(path[run_start]).0;
        if end_run {
            let (layer, x0, y0) = grid.coords(path[run_start]);
            let (_, x1, y1) = grid.coords(path[k - 1]);
            if (x0, y0) != (x1, y1) {
                out.segments.push(Segment {
                    layer,
                    x0,
                    y0,
                    x1,
                    y1,
                });
                if layer == Layer::M1 {
                    m1_runs += 1;
                }
            }
            run_start = k;
        }
    }
    // A maze path that happens to be exactly one M1 segment with only pin
    // vias also counts as a direct vertical M1 route — within the same
    // γ-row span the metric uses everywhere else.
    let wire_layers: BTreeSet<usize> = out.segments.iter().map(|s| s.layer.index()).collect();
    let span_ok = out
        .segments
        .last()
        .is_some_and(|s| (s.y1 - s.y0).abs() <= max_dm1_span_tracks);
    if m1_runs == 1 && !non_pin_via && span_ok && wire_layers == BTreeSet::from([Layer::M1.index()])
    {
        out.dm1 += 1;
    }
    tree_nodes.extend_from_slice(path);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::{Orient, Point};
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_place::{place, PlaceConfig};
    use vm1_tech::{CellArch, Library, PinDir};

    fn routed_design(arch: CellArch, n: usize, seed: u64) -> (Design, RouteResult) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(n)
            .generate(&lib, seed);
        place(&mut d, &PlaceConfig::default(), seed);
        let r = route(&d, &RouterConfig::default());
        (d, r)
    }

    use vm1_netlist::Design;

    #[test]
    fn routes_small_design_completely() {
        let (_, r) = routed_design(CellArch::ClosedM1, 100, 1);
        assert_eq!(r.metrics.unrouted, 0, "all subnets routed");
        assert!(r.metrics.routed_wl.nm() > 0);
        assert!(r.metrics.vias.iter().sum::<usize>() > 0);
    }

    #[test]
    fn closedm1_finds_dm1_routes() {
        let (_, r) = routed_design(CellArch::ClosedM1, 300, 2);
        assert!(r.metrics.num_dm1 > 0, "some aligned pins exist by chance");
    }

    #[test]
    fn openm1_finds_dm1_routes() {
        let (_, r) = routed_design(CellArch::OpenM1, 300, 2);
        assert!(r.metrics.num_dm1 > 0);
    }

    #[test]
    fn conv12t_has_no_dm1() {
        let (_, r) = routed_design(CellArch::Conv12T, 200, 3);
        assert_eq!(r.metrics.num_dm1, 0, "M1 PG rails forbid inter-row M1");
    }

    #[test]
    fn disabling_dm1_gives_zero_dm1() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(200)
            .generate(&lib, 4);
        place(&mut d, &PlaceConfig::default(), 4);
        let cfg = RouterConfig {
            enable_dm1: false,
            ..RouterConfig::default()
        };
        let r = route(&d, &cfg);
        // Incidental single-segment M1 maze routes may still occur, but the
        // deliberate dM1-first path is off, so the count must not exceed
        // the enabled router's.
        let r_on = route(&d, &RouterConfig::default());
        assert!(r.metrics.num_dm1 <= r_on.metrics.num_dm1);
        assert!(r_on.metrics.num_dm1 > 0);
    }

    #[test]
    fn hand_built_aligned_inverters_use_dm1() {
        // Two INVs in adjacent rows with ZN above A, x-aligned: the classic
        // Figure 2(a) situation.
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("fig2a", lib, 2, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let lo = d.add_inst("lo", inv);
        let hi = d.add_inst("hi", inv);
        // INV_X1: A at col 1, ZN at col 2 (width 4).
        // Align lo.ZN (col site+2) with hi.A (col site'+1): site' = site+1.
        d.move_inst(lo, 5, 0, Orient::North);
        d.move_inst(hi, 6, 1, Orient::North);
        let n = d.add_net("n");
        d.connect(lo, "ZN", n);
        d.connect(hi, "A", n);
        // Tie-off inputs/outputs so connectivity validates.
        let p1 = d.add_port("i", Point::new(Dbu(0), Dbu(100)), PinDir::In);
        let n_in = d.add_net("n_in");
        d.connect_port(p1, n_in);
        d.connect(lo, "A", n_in);
        let p2 = d.add_port("o", Point::new(Dbu(30 * 48), Dbu(600)), PinDir::Out);
        let n_out = d.add_net("n_out");
        d.connect(hi, "ZN", n_out);
        d.connect_port(p2, n_out);

        let r = route(&d, &RouterConfig::default());
        assert_eq!(r.metrics.unrouted, 0);
        let nr = r.net(NetId(0));
        assert_eq!(nr.dm1, 1, "aligned pins must use direct vertical M1");
        // The dM1 net uses exactly one M1 segment and no vias at all
        // (ClosedM1 pins are on M1 already).
        assert_eq!(nr.segments.len(), 1);
        assert_eq!(nr.segments[0].layer, Layer::M1);
        assert_eq!(nr.vias.iter().sum::<usize>(), 0);
    }

    #[test]
    fn misaligned_inverters_need_more_than_m1() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("fig2a_miss", lib, 2, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let lo = d.add_inst("lo", inv);
        let hi = d.add_inst("hi", inv);
        d.move_inst(lo, 5, 0, Orient::North);
        d.move_inst(hi, 12, 1, Orient::North); // far off: no alignment
        let n = d.add_net("n");
        d.connect(lo, "ZN", n);
        d.connect(hi, "A", n);
        let p1 = d.add_port("i", Point::new(Dbu(0), Dbu(100)), PinDir::In);
        let n_in = d.add_net("n_in");
        d.connect_port(p1, n_in);
        d.connect(lo, "A", n_in);
        let p2 = d.add_port("o", Point::new(Dbu(30 * 48), Dbu(600)), PinDir::Out);
        let n_out = d.add_net("n_out");
        d.connect(hi, "ZN", n_out);
        d.connect_port(p2, n_out);

        let r = route(&d, &RouterConfig::default());
        let nr = r.net(NetId(0));
        assert_eq!(nr.dm1, 0);
        assert!(nr.vias.iter().sum::<usize>() > 0, "must hop to M2");
    }

    #[test]
    fn openm1_overlapping_pins_use_dm1_with_v01() {
        // Figure 2(b): OpenM1 INVs with horizontally overlapping pins.
        let lib = Library::synthetic_7nm(CellArch::OpenM1);
        let mut d = Design::new("fig2b", lib, 2, 40);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let lo = d.add_inst("lo", inv);
        let hi = d.add_inst("hi", inv);
        // OpenM1 INV_X1 (w=4): A spans cols [0,2), ZN spans cols [1,4).
        // Put hi.A over lo.ZN: hi.site + [0,2) overlaps lo.site + [1,4).
        d.move_inst(lo, 5, 0, Orient::North);
        d.move_inst(hi, 6, 1, Orient::North);
        let n = d.add_net("n");
        d.connect(lo, "ZN", n);
        d.connect(hi, "A", n);
        let p1 = d.add_port("i", Point::new(Dbu(0), Dbu(100)), PinDir::In);
        let n_in = d.add_net("n_in");
        d.connect_port(p1, n_in);
        d.connect(lo, "A", n_in);
        let p2 = d.add_port("o", Point::new(Dbu(40 * 48), Dbu(600)), PinDir::Out);
        let n_out = d.add_net("n_out");
        d.connect(hi, "ZN", n_out);
        d.connect_port(p2, n_out);

        let r = route(&d, &RouterConfig::default());
        let nr = r.net(NetId(0));
        assert_eq!(nr.dm1, 1, "overlapping OpenM1 pins must use dM1");
        assert_eq!(nr.vias[0], 2, "V01 at both ends");
    }

    #[test]
    fn rip_up_reduces_overflow() {
        // Dense small design to force congestion; RRR should not increase
        // DRVs vs a single pass.
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = GeneratorConfig::profile(DesignProfile::Aes)
            .with_insts(400)
            .with_utilization(0.88)
            .generate(&lib, 5);
        place(&mut d, &PlaceConfig::default(), 5);
        let one = route(
            &d,
            &RouterConfig {
                iterations: 1,
                ..RouterConfig::default()
            },
        );
        let three = route(&d, &RouterConfig::default());
        assert!(three.metrics.drvs <= one.metrics.drvs);
    }

    #[test]
    fn metrics_accumulate_consistently() {
        let (_, r) = routed_design(CellArch::ClosedM1, 150, 6);
        let seg_wl: i64 = 0; // recomputed below per layer
        let _ = seg_wl;
        let total: Dbu = r.metrics.layer_wl.iter().copied().sum();
        assert_eq!(total, r.metrics.routed_wl);
        let via_sum: usize = r.nets.iter().map(|n| n.vias.iter().sum::<usize>()).sum();
        assert_eq!(via_sum, r.metrics.vias.iter().sum::<usize>());
    }

    #[test]
    fn deterministic_routing() {
        let (_, r1) = routed_design(CellArch::ClosedM1, 150, 7);
        let (_, r2) = routed_design(CellArch::ClosedM1, 150, 7);
        assert_eq!(r1.metrics, r2.metrics);
    }
}
