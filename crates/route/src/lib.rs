//! Grid-based detailed router with direct-vertical-M1 awareness.
//!
//! This crate stands in for the commercial (Innovus) router of the paper.
//! It models the back-end as a uniform routing lattice:
//!
//! * one vertical **M1**/M3 track per placement site column, one horizontal
//!   M2/M4 track per routing track row, strict preferred directions;
//! * **M0** carries no routing — its nodes exist only where OpenM1 pins
//!   live, reachable through V01 vias, exactly like the paper's
//!   complementary below-M1 pin layer;
//! * every grid edge has capacity one (it is a *detailed* grid), so
//!   over-capacity edges are shorts — the `#DRV` metric;
//! * cells block the M1 tracks their pins/PG/blockage shapes cover
//!   ([`vm1_tech::MacroCell::m1_blocked_cols`]); OpenM1 PDN staples block
//!   periodic M1 columns.
//!
//! Routing itself is **dM1-first**: before maze-routing a two-pin subnet,
//! the router attempts a *direct vertical M1 route* — a single M1 segment
//! (plus pin vias) joining the two pins, permitted when the pins share a
//! track (ClosedM1) or their shapes overlap horizontally by at least δ
//! (OpenM1), span at most γ rows, and the track in between is unblocked and
//! unused. This models a router that "effectively exploits the
//! availability of direct vertical M1 routing" (paper §1.1). Everything
//! else falls to A* maze routing over the lattice with PathFinder-style
//! rip-up and re-route.
//!
//! # Examples
//!
//! ```
//! use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
//! use vm1_place::{place, PlaceConfig};
//! use vm1_route::{route, RouterConfig};
//! use vm1_tech::{CellArch, Library};
//!
//! let lib = Library::synthetic_7nm(CellArch::ClosedM1);
//! let mut d = GeneratorConfig::profile(DesignProfile::M0)
//!     .with_insts(120)
//!     .generate(&lib, 1);
//! place(&mut d, &PlaceConfig::default(), 1);
//! let result = route(&d, &RouterConfig::default());
//! assert!(result.metrics.routed_wl.nm() > 0);
//! ```

#![warn(missing_docs)]

mod grid;
mod maze;
mod router;
pub mod steiner;

pub use grid::{Edge, NodeId, PinAccess, RoutingGrid};
pub use maze::{MazeCosts, SearchBox, SearchSpace};
pub use router::{route, NetRoute, RouteMetrics, RouteResult, RouterConfig, Segment};
