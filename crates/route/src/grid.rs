use std::collections::BTreeSet;
use vm1_geom::{Dbu, Interval};
use vm1_netlist::{Design, NetPin};
use vm1_tech::{Layer, LayerDir};

/// Identifier of a routing-grid node: `layer * W * T + y * W + x`.
pub type NodeId = u32;

/// Access information for one net terminal (cell pin or port): the grid
/// nodes that realize it plus the geometry needed for direct-vertical-M1
/// tests.
#[derive(Clone, Debug)]
pub struct PinAccess {
    /// Grid nodes belonging to this terminal.
    pub nodes: Vec<NodeId>,
    /// Layer the terminal lives on (M1 for ClosedM1/conventional pins, M0
    /// for OpenM1 pins, M2 for ports).
    pub layer: Layer,
    /// Inclusive column range covered by the terminal.
    pub col_lo: i64,
    /// Inclusive column range covered by the terminal.
    pub col_hi: i64,
    /// Inclusive track range covered by the terminal.
    pub track_lo: i64,
    /// Inclusive track range covered by the terminal.
    pub track_hi: i64,
    /// Absolute x-extent of the terminal shape (for the δ overlap test).
    pub x_range: Interval,
}

/// The detailed-routing lattice (see the crate docs for the model).
#[derive(Clone, Debug)]
pub struct RoutingGrid {
    /// Number of columns (== placement sites per row).
    pub width: i64,
    /// Number of y tracks (rows × tracks-per-row).
    pub tracks: i64,
    /// Tracks per placement row.
    pub tpr: i64,
    /// Column pitch in nm.
    pub pitch_x: i64,
    /// Track pitch in nm.
    pub pitch_y: i64,
    row_height: i64,
    blocked: Vec<bool>,
    /// Wire-edge usage: index = node id of the edge's lower/left endpoint.
    /// Horizontal layers use +x edges, vertical layers +y edges.
    wire_usage: Vec<u16>,
    /// PathFinder history per wire edge.
    wire_hist: Vec<u16>,
    /// Via usage between layer `l` and `l+1`: `l * W * T + y * W + x`.
    via_usage: Vec<u16>,
    via_hist: Vec<u16>,
}

impl RoutingGrid {
    /// Builds the lattice for a placed design: dimensions from the core
    /// area, M1 blockages from every instance, PDN staples for OpenM1.
    ///
    /// Also extracts, for every net, the [`PinAccess`] of each terminal;
    /// the return order matches `design.nets()` / `net.pins`.
    #[must_use]
    pub fn build(design: &Design) -> (RoutingGrid, Vec<Vec<PinAccess>>) {
        let tech = design.library().tech();
        let tpr = tech.arch.tracks_per_row();
        let width = design.sites_per_row;
        let tracks = design.num_rows * tpr;
        let row_height = tech.row_height.nm();
        let n_nodes = (Layer::COUNT as i64 * width * tracks) as usize;
        let mut grid = RoutingGrid {
            width,
            tracks,
            tpr,
            pitch_x: tech.site_width.nm(),
            pitch_y: row_height / tpr,
            row_height,
            blocked: vec![false; n_nodes],
            wire_usage: vec![0; n_nodes],
            wire_hist: vec![0; n_nodes],
            via_usage: vec![0; ((Layer::COUNT - 1) as i64 * width * tracks) as usize],
            via_hist: vec![0; ((Layer::COUNT - 1) as i64 * width * tracks) as usize],
        };

        // M0 carries no routing: blocked except at OpenM1 pins (unblocked
        // below).
        for y in 0..tracks {
            for x in 0..width {
                let id = grid.node(Layer::M0, x, y);
                grid.blocked[id as usize] = true;
            }
        }

        // Instance M1 blockages.
        for (id, inst) in design.insts() {
            let cell = design.library().cell(inst.cell);
            let t0 = inst.row * tpr;
            for col in cell.m1_blocked_cols(inst.orient, tech.site_width) {
                let x = inst.site + col;
                if x < 0 || x >= width {
                    continue;
                }
                for t in t0..(t0 + tpr).min(tracks) {
                    let nid = grid.node(Layer::M1, x, t);
                    grid.blocked[nid as usize] = true;
                }
            }
            let _ = id;
        }

        // OpenM1 PDN staples: periodic fully blocked M1 columns.
        if let Some(pitch) = tech.pdn_staple_pitch_sites {
            let mut x = pitch / 2;
            while x < width {
                for t in 0..tracks {
                    let nid = grid.node(Layer::M1, x, t);
                    grid.blocked[nid as usize] = true;
                }
                x += pitch;
            }
        }

        // Pin access extraction.
        let mut net_pins: Vec<Vec<PinAccess>> = Vec::with_capacity(design.num_nets());
        for (_, net) in design.nets() {
            let mut accesses = Vec::with_capacity(net.pins.len());
            for &np in &net.pins {
                let acc = match np {
                    NetPin::Port(p) => grid.port_access(design, p),
                    NetPin::Inst(pr) => grid.pin_access(design, pr),
                };
                // OpenM1 pins live on otherwise-blocked M0: unblock them.
                if acc.layer == Layer::M0 {
                    for &n in &acc.nodes {
                        grid.blocked[n as usize] = false;
                    }
                }
                accesses.push(acc);
            }
            net_pins.push(accesses);
        }
        (grid, net_pins)
    }

    fn port_access(&self, design: &Design, p: vm1_netlist::PortId) -> PinAccess {
        let pos = design.port(p).position;
        let x = (pos.x.nm() / self.pitch_x).clamp(0, self.width - 1);
        let t = self.track_of_y(pos.y.nm());
        PinAccess {
            nodes: vec![self.node(Layer::M2, x, t)],
            layer: Layer::M2,
            col_lo: x,
            col_hi: x,
            track_lo: t,
            track_hi: t,
            x_range: Interval::new(pos.x, pos.x + Dbu(self.pitch_x)),
        }
    }

    fn pin_access(&self, design: &Design, pr: vm1_netlist::PinRef) -> PinAccess {
        let pin = design.macro_pin(pr);
        let inst = design.inst(pr.inst);
        let cell = design.library().cell(inst.cell);
        let origin = design.inst_origin(pr.inst);
        let xr = design.pin_x_range(pr);
        let y_lo = origin.y.nm() + pin.shape.rect.lo().y.nm();
        let y_hi = origin.y.nm() + pin.shape.rect.hi().y.nm();
        let col_lo = (xr.lo().nm() / self.pitch_x).clamp(0, self.width - 1);
        let col_hi = ((xr.hi().nm() - 1) / self.pitch_x).clamp(0, self.width - 1);
        let track_lo = self.track_of_y(y_lo);
        let track_hi = self.track_of_y((y_hi - 1).max(y_lo));
        let layer = pin.shape.layer;
        let mut nodes = Vec::new();
        match layer {
            Layer::M1 => {
                if design.library().tech().arch.allows_inter_row_m1() {
                    // ClosedM1: the pin owns its M1 column across the whole
                    // cell row (a dM1 route extends the pin segment through
                    // the cell boundary), so its net may pass anywhere in it.
                    let t0 = inst.row * self.tpr;
                    let t1 = (t0 + self.tpr).min(self.tracks);
                    for t in t0.max(0)..t1 {
                        nodes.push(self.node(Layer::M1, col_lo, t));
                    }
                } else {
                    // Conventional cells: the M1 PG rails at the row edges
                    // belong to the power nets; only the pin shape itself
                    // is accessible.
                    for t in track_lo..=track_hi {
                        nodes.push(self.node(Layer::M1, col_lo, t));
                    }
                }
            }
            Layer::M0 => {
                // Horizontal segment: all columns at the pin track.
                for c in col_lo..=col_hi {
                    nodes.push(self.node(Layer::M0, c, track_lo));
                }
            }
            other => {
                // Not produced by the synthetic libraries; treat the centre
                // node as the access point.
                nodes.push(self.node(other, col_lo, track_lo));
            }
        }
        let _ = cell;
        PinAccess {
            nodes,
            layer,
            col_lo,
            col_hi,
            track_lo,
            track_hi,
            x_range: xr,
        }
    }

    /// Track index containing absolute y (nm).
    #[must_use]
    pub fn track_of_y(&self, y_nm: i64) -> i64 {
        let row = y_nm.div_euclid(self.row_height);
        let within = y_nm - row * self.row_height;
        let t = row * self.tpr + (within * self.tpr) / self.row_height;
        t.clamp(0, self.tracks - 1)
    }

    /// Placement row of a track.
    #[must_use]
    pub fn row_of_track(&self, t: i64) -> i64 {
        t.div_euclid(self.tpr)
    }

    /// Node id for `(layer, x, y)`.
    ///
    /// # Panics
    ///
    /// Debug-panics when out of bounds.
    #[must_use]
    pub fn node(&self, layer: Layer, x: i64, y: i64) -> NodeId {
        debug_assert!((0..self.width).contains(&x), "x {x} out of grid");
        debug_assert!((0..self.tracks).contains(&y), "y {y} out of grid");
        (layer.index() as i64 * self.width * self.tracks + y * self.width + x) as NodeId
    }

    /// Decomposes a node id into `(layer, x, y)`.
    #[must_use]
    pub fn coords(&self, id: NodeId) -> (Layer, i64, i64) {
        let per = self.width * self.tracks;
        let l = id as i64 / per;
        let rem = id as i64 % per;
        (
            Layer::from_index(l as usize),
            rem % self.width,
            rem / self.width,
        )
    }

    /// Whether the node is free to route through, treating nodes in
    /// `allowed` (the current net's own pins) as passable.
    #[must_use]
    pub fn passable(&self, id: NodeId, allowed: &BTreeSet<NodeId>) -> bool {
        !self.blocked[id as usize] || allowed.contains(&id)
    }

    /// Whether the node is blocked (ignoring any allowance).
    #[must_use]
    pub fn is_blocked(&self, id: NodeId) -> bool {
        self.blocked[id as usize]
    }

    /// Explicitly blocks a node (used by tests and by congestion what-ifs).
    pub fn block(&mut self, id: NodeId) {
        self.blocked[id as usize] = true;
    }

    /// Total number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.blocked.len()
    }

    // ---- edges -----------------------------------------------------------

    /// Canonical edge key for the wire edge between two adjacent same-layer
    /// nodes, or the via index for a stacked pair. Returns `None` for
    /// non-adjacent pairs or wrong-direction wires.
    #[must_use]
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<Edge> {
        let (la, xa, ya) = self.coords(a);
        let (lb, xb, yb) = self.coords(b);
        if la == lb {
            let same_y = ya == yb && (xa - xb).abs() == 1;
            let same_x = xa == xb && (ya - yb).abs() == 1;
            match la.dir() {
                LayerDir::Horizontal if same_y => Some(Edge::Wire(a.min(b))),
                LayerDir::Vertical if same_x => Some(Edge::Wire(a.min(b))),
                _ => None,
            }
        } else if xa == xb && ya == yb && (la.index() as i64 - lb.index() as i64).abs() == 1 {
            let l = la.index().min(lb.index());
            Some(Edge::Via(
                (l as i64 * self.width * self.tracks + ya * self.width + xa) as u32,
            ))
        } else {
            None
        }
    }

    /// Current usage of an edge.
    #[must_use]
    pub fn usage(&self, e: Edge) -> u16 {
        match e {
            Edge::Wire(i) => self.wire_usage[i as usize],
            Edge::Via(i) => self.via_usage[i as usize],
        }
    }

    /// PathFinder history of an edge.
    #[must_use]
    pub fn history(&self, e: Edge) -> u16 {
        match e {
            Edge::Wire(i) => self.wire_hist[i as usize],
            Edge::Via(i) => self.via_hist[i as usize],
        }
    }

    /// Adds `delta` (may be negative) to an edge's usage.
    pub fn add_usage(&mut self, e: Edge, delta: i32) {
        let u = match e {
            Edge::Wire(i) => &mut self.wire_usage[i as usize],
            Edge::Via(i) => &mut self.via_usage[i as usize],
        };
        *u = (*u as i32 + delta).max(0) as u16;
    }

    /// Increments history on all currently over-capacity edges; returns the
    /// number of over-capacity edges (total overflow amount).
    pub fn bump_history(&mut self) -> usize {
        let mut over = 0;
        for (u, h) in self.wire_usage.iter().zip(self.wire_hist.iter_mut()) {
            if *u > 1 {
                *h = h.saturating_add(*u - 1);
                over += (*u - 1) as usize;
            }
        }
        for (u, h) in self.via_usage.iter().zip(self.via_hist.iter_mut()) {
            if *u > 1 {
                *h = h.saturating_add(*u - 1);
                over += (*u - 1) as usize;
            }
        }
        over
    }

    /// Total overflow (sum of usage beyond capacity 1 over all edges) —
    /// the DRV proxy metric.
    #[must_use]
    pub fn total_overflow(&self) -> usize {
        self.wire_usage
            .iter()
            .chain(self.via_usage.iter())
            .map(|&u| u.saturating_sub(1) as usize)
            .sum()
    }

    /// Length in nm of a wire edge on `layer`.
    #[must_use]
    pub fn wire_len(&self, layer: Layer) -> i64 {
        match layer.dir() {
            LayerDir::Horizontal => self.pitch_x,
            LayerDir::Vertical => self.pitch_y,
        }
    }
}

/// A routing resource: one wire edge (keyed by its lower/left node) or one
/// via site (keyed by layer-pair index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Wire edge; the id is the smaller adjacent node id.
    Wire(u32),
    /// Via between consecutive layers.
    Via(u32),
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
    use vm1_tech::{CellArch, Library};

    fn build_small(arch: CellArch) -> (RoutingGrid, Vec<Vec<PinAccess>>, Design) {
        let lib = Library::synthetic_7nm(arch);
        let mut d = GeneratorConfig::profile(DesignProfile::M0)
            .with_insts(60)
            .generate(&lib, 1);
        vm1_place::place(&mut d, &vm1_place::PlaceConfig::default(), 1);
        let (g, pins) = RoutingGrid::build(&d);
        (g, pins, d)
    }

    #[test]
    fn dimensions_match_core() {
        let (g, _, d) = build_small(CellArch::ClosedM1);
        assert_eq!(g.width, d.sites_per_row);
        assert_eq!(g.tracks, d.num_rows * 7);
        assert_eq!(g.pitch_x, 48);
    }

    #[test]
    fn node_coords_round_trip() {
        let (g, _, _) = build_small(CellArch::ClosedM1);
        for layer in Layer::ALL {
            for &(x, y) in &[(0, 0), (3, 7), (g.width - 1, g.tracks - 1)] {
                let id = g.node(layer, x, y);
                assert_eq!(g.coords(id), (layer, x, y));
            }
        }
    }

    #[test]
    fn m0_blocked_except_openm1_pins() {
        let (g, pins, _) = build_small(CellArch::OpenM1);
        // Every net pin on M0 is unblocked; a random far-away M0 node is
        // blocked.
        let mut found_pin = false;
        for net in &pins {
            for acc in net {
                if acc.layer == Layer::M0 {
                    found_pin = true;
                    for &n in &acc.nodes {
                        assert!(!g.is_blocked(n));
                    }
                }
            }
        }
        assert!(found_pin, "OpenM1 design must have M0 pins");
    }

    #[test]
    fn closedm1_pins_block_their_column() {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = vm1_netlist::Design::new("t", lib, 3, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let u = d.add_inst("u0", inv);
        d.move_inst(u, 5, 1, Orient::North);
        // Minimal valid net so build() succeeds.
        let n = d.add_net("n");
        d.connect(u, "ZN", n);
        let p = d.add_port(
            "o",
            vm1_geom::Point::new(Dbu(0), Dbu(0)),
            vm1_tech::PinDir::Out,
        );
        d.connect_port(p, n);
        let (g, _) = RoutingGrid::build(&d);
        // Pin A is at cell column 1 => absolute column 6, row 1 tracks 7..14.
        for t in 7..14 {
            assert!(g.is_blocked(g.node(Layer::M1, 6, t)), "track {t}");
        }
        // Row 0 and row 2 at the same column are free (inter-row M1!).
        assert!(!g.is_blocked(g.node(Layer::M1, 6, 3)));
        assert!(!g.is_blocked(g.node(Layer::M1, 6, 16)));
    }

    #[test]
    fn conv12t_blocks_whole_rows() {
        let lib = Library::synthetic_7nm(CellArch::Conv12T);
        let mut d = vm1_netlist::Design::new("t", lib, 2, 30);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let u = d.add_inst("u0", inv);
        d.move_inst(u, 5, 0, Orient::North);
        let n = d.add_net("n");
        d.connect(u, "ZN", n);
        let p = d.add_port(
            "o",
            vm1_geom::Point::new(Dbu(0), Dbu(0)),
            vm1_tech::PinDir::Out,
        );
        d.connect_port(p, n);
        let (g, _) = RoutingGrid::build(&d);
        // Every column of the cell footprint is blocked (PG rails).
        for col in 0..4 {
            let blocked_tracks = (0..12)
                .filter(|&t| g.is_blocked(g.node(Layer::M1, 5 + col, t)))
                .count();
            assert!(blocked_tracks > 0, "col {col} has no blockage");
        }
    }

    #[test]
    fn openm1_pdn_staples_block_columns() {
        let (g, _, _) = build_small(CellArch::OpenM1);
        // Staple pitch 16 starting at 8.
        for t in 0..g.tracks {
            assert!(g.is_blocked(g.node(Layer::M1, 8, t)));
        }
        // Neighbouring column is not fully blocked.
        let free = (0..g.tracks).any(|t| !g.is_blocked(g.node(Layer::M1, 9, t)));
        assert!(free);
    }

    #[test]
    fn edge_between_respects_directions() {
        let (g, _, _) = build_small(CellArch::ClosedM1);
        let a = g.node(Layer::M2, 3, 3);
        let b = g.node(Layer::M2, 4, 3);
        assert!(matches!(g.edge_between(a, b), Some(Edge::Wire(_))));
        // Vertical move on a horizontal layer: not an edge.
        let c = g.node(Layer::M2, 3, 4);
        assert_eq!(g.edge_between(a, c), None);
        // Vertical move on M1: fine.
        let d1 = g.node(Layer::M1, 3, 3);
        let d2 = g.node(Layer::M1, 3, 4);
        assert!(matches!(g.edge_between(d1, d2), Some(Edge::Wire(_))));
        // Via between M1 and M2 at same (x, y).
        assert!(matches!(g.edge_between(d1, a), Some(Edge::Via(_))));
        // Non-adjacent layers: no edge.
        let m4 = g.node(Layer::M4, 3, 3);
        assert_eq!(g.edge_between(d1, m4), None);
    }

    #[test]
    fn usage_and_overflow_accounting() {
        let (mut g, _, _) = build_small(CellArch::ClosedM1);
        let a = g.node(Layer::M2, 3, 3);
        let b = g.node(Layer::M2, 4, 3);
        let e = g.edge_between(a, b).unwrap();
        assert_eq!(g.usage(e), 0);
        g.add_usage(e, 1);
        g.add_usage(e, 1);
        assert_eq!(g.usage(e), 2);
        assert_eq!(g.total_overflow(), 1);
        let over = g.bump_history();
        assert_eq!(over, 1);
        assert_eq!(g.history(e), 1);
        g.add_usage(e, -1);
        assert_eq!(g.total_overflow(), 0);
    }

    #[test]
    fn track_math() {
        let (g, _, _) = build_small(CellArch::ClosedM1);
        assert_eq!(g.track_of_y(0), 0);
        assert_eq!(g.track_of_y(359), 6); // last track of row 0
        assert_eq!(g.track_of_y(360), 7); // first track of row 1
        assert_eq!(g.row_of_track(6), 0);
        assert_eq!(g.row_of_track(7), 1);
    }

    use vm1_netlist::Design;
}
