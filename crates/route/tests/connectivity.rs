//! Routing connectivity verification: for every routed net, the union of
//! its wire segments, vias, and pin access nodes must form one connected
//! component that touches every terminal. This is the strongest
//! correctness statement about the router and is checked with a
//! union-find over grid nodes.

use std::collections::HashMap;
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_place::{place, PlaceConfig};
use vm1_route::{route, RouterConfig, RoutingGrid, Segment};
use vm1_tech::{CellArch, Layer, Library};

struct Dsu {
    parent: HashMap<u64, u64>,
}

impl Dsu {
    fn new() -> Dsu {
        Dsu {
            parent: HashMap::new(),
        }
    }
    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            x
        } else {
            let r = self.find(p);
            self.parent.insert(x, r);
            r
        }
    }
    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

fn key(layer: usize, x: i64, y: i64) -> u64 {
    (layer as u64) << 48 | (x as u64) << 24 | y as u64
}

fn seg_nodes(s: &Segment) -> Vec<(usize, i64, i64)> {
    let l = s.layer.index();
    let mut out = Vec::new();
    if s.x0 == s.x1 {
        let (lo, hi) = (s.y0.min(s.y1), s.y0.max(s.y1));
        for y in lo..=hi {
            out.push((l, s.x0, y));
        }
    } else {
        let (lo, hi) = (s.x0.min(s.x1), s.x0.max(s.x1));
        for x in lo..=hi {
            out.push((l, x, s.y0));
        }
    }
    out
}

fn check_connectivity(arch: CellArch, n: usize, seed: u64) {
    let lib = Library::synthetic_7nm(arch);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(n)
        .generate(&lib, seed);
    place(&mut d, &PlaceConfig::default(), seed);
    let result = route(&d, &RouterConfig::default());
    assert_eq!(result.metrics.unrouted, 0, "fully routed design expected");

    let (grid, net_pins) = RoutingGrid::build(&d);

    for (i, (net_id, net)) in d.nets().enumerate() {
        if net.pins.len() < 2 {
            continue;
        }
        let nr = result.net(net_id);
        assert!(nr.routed, "net {} marked routed", net.name);

        let mut dsu = Dsu::new();
        // Wire segments connect consecutive nodes on their layer.
        for s in &nr.segments {
            let nodes = seg_nodes(s);
            for w in nodes.windows(2) {
                dsu.union(key(w[0].0, w[0].1, w[0].2), key(w[1].0, w[1].1, w[1].2));
            }
        }
        // Vias connect the two layers at a point. The route result keeps
        // only counts, so recover via locations from the committed edges —
        // not exposed; instead connect stacked nodes wherever two
        // segments of adjacent layers share (x, y) or a pin sits below.
        // Conservative completion: union any pair of nodes at the same
        // (x, y) on adjacent layers that both appear in the net's node
        // set.
        let mut present: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        let mut all_nodes: Vec<(usize, i64, i64)> = Vec::new();
        for s in &nr.segments {
            all_nodes.extend(seg_nodes(s));
        }
        for acc in &net_pins[i] {
            for &node in &acc.nodes {
                let (l, x, y) = grid.coords(node);
                all_nodes.push((l.index(), x, y));
            }
        }
        for &(l, x, y) in &all_nodes {
            present.entry((x, y)).or_default().push(l);
        }
        // Layer changes happen through via stacks at a fixed (x, y); a
        // pass-through layer of a stacked via leaves no wire segment, so
        // union every pair of present layers at the same point.
        for ((x, y), layers) in &present {
            for &a in layers {
                for &b in layers {
                    if b > a {
                        dsu.union(key(a, *x, *y), key(b, *x, *y));
                    }
                }
            }
        }
        // Pin access nodes of one terminal are mutually connected (they
        // are one physical shape).
        for acc in &net_pins[i] {
            for w in acc.nodes.windows(2) {
                let (l0, x0, y0) = grid.coords(w[0]);
                let (l1, x1, y1) = grid.coords(w[1]);
                dsu.union(key(l0.index(), x0, y0), key(l1.index(), x1, y1));
            }
        }

        // Every terminal must be in one component.
        let mut root = None;
        for acc in &net_pins[i] {
            let (l, x, y) = grid.coords(acc.nodes[0]);
            let r = dsu.find(key(l.index(), x, y));
            match root {
                None => root = Some(r),
                Some(r0) => assert_eq!(
                    r0,
                    r,
                    "net {} ({} pins): disconnected terminal",
                    net.name,
                    net.pins.len()
                ),
            }
        }
    }
    let _ = Layer::M0;
}

#[test]
fn closedm1_routes_are_connected() {
    check_connectivity(CellArch::ClosedM1, 150, 1);
}

#[test]
fn openm1_routes_are_connected() {
    check_connectivity(CellArch::OpenM1, 150, 2);
}

#[test]
fn conv12t_routes_are_connected() {
    check_connectivity(CellArch::Conv12T, 120, 3);
}

#[test]
fn connected_across_seeds() {
    for seed in 4..7 {
        check_connectivity(CellArch::ClosedM1, 100, seed);
    }
}

#[test]
fn steiner_estimate_bounds_routed_wirelength() {
    // HPWL ≤ RSMT ≤ routed WL holds per net for fully routed designs
    // (detours can only add length over the Steiner minimum).
    use vm1_route::steiner::{rmst_length, rsmt_length};
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(120)
        .generate(&lib, 9);
    place(&mut d, &PlaceConfig::default(), 9);
    let result = route(&d, &RouterConfig::default());
    assert_eq!(result.metrics.unrouted, 0);
    let (grid, _) = RoutingGrid::build(&d);
    let mut checked = 0;
    for (id, net) in d.nets() {
        if net.pins.len() < 2 || net.pins.len() > 8 {
            continue;
        }
        let pts: Vec<_> = net.pins.iter().map(|&p| d.net_pin_position(p)).collect();
        let rsmt = rsmt_length(&pts);
        let rmst = rmst_length(&pts);
        assert!(rsmt <= rmst);
        let routed: i64 = result
            .net(id)
            .segments
            .iter()
            .map(|s| s.len_nm(&grid))
            .sum();
        // Grid snapping can shave sub-pitch amounts off the ideal length;
        // allow one pitch of slack per pin.
        let slack = 48 * net.pins.len() as i64 + 360;
        assert!(
            routed + slack >= rsmt.nm(),
            "net {}: routed {} < rsmt {}",
            net.name,
            routed,
            rsmt.nm()
        );
        checked += 1;
    }
    assert!(checked > 50, "checked {checked} nets");
}
