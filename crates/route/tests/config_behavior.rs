//! Behavioral tests of router-configuration knobs: the cost model must
//! respond in the physically expected direction.

use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::Design;
use vm1_place::{place, PlaceConfig};
use vm1_route::{route, RouterConfig};
use vm1_tech::{CellArch, Library};

fn placed(n: usize, seed: u64) -> Design {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::M0)
        .with_insts(n)
        .generate(&lib, seed);
    place(&mut d, &PlaceConfig::default(), seed);
    d
}

#[test]
fn higher_via_cost_reduces_via_count() {
    let d = placed(150, 1);
    let cheap = route(
        &d,
        &RouterConfig {
            via_cost: 10,
            ..RouterConfig::default()
        },
    );
    let pricey = route(
        &d,
        &RouterConfig {
            via_cost: 1200,
            ..RouterConfig::default()
        },
    );
    let v_cheap: usize = cheap.metrics.vias.iter().sum();
    let v_pricey: usize = pricey.metrics.vias.iter().sum();
    assert!(
        v_pricey <= v_cheap,
        "expensive vias must not increase via count: {v_cheap} -> {v_pricey}"
    );
}

#[test]
fn wider_bbox_margin_cannot_lose_routes() {
    let d = placed(150, 2);
    let narrow = route(
        &d,
        &RouterConfig {
            bbox_margin: 2,
            ..RouterConfig::default()
        },
    );
    let wide = route(
        &d,
        &RouterConfig {
            bbox_margin: 40,
            ..RouterConfig::default()
        },
    );
    assert!(wide.metrics.unrouted <= narrow.metrics.unrouted);
}

#[test]
fn more_iterations_never_increase_drvs() {
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = GeneratorConfig::profile(DesignProfile::Aes)
        .with_insts(300)
        .with_utilization(0.86)
        .generate(&lib, 3);
    place(&mut d, &PlaceConfig::default(), 3);
    let mut last = usize::MAX;
    for iters in [1, 2, 4] {
        let r = route(
            &d,
            &RouterConfig {
                iterations: iters,
                ..RouterConfig::default()
            },
        );
        assert!(r.metrics.drvs <= last);
        last = r.metrics.drvs;
    }
}

#[test]
fn route_metrics_are_internally_consistent() {
    let d = placed(200, 4);
    let r = route(&d, &RouterConfig::default());
    // Layer WL sums to total.
    let total: i64 = r.metrics.layer_wl.iter().map(|d| d.nm()).sum();
    assert_eq!(total, r.metrics.routed_wl.nm());
    // M0 carries no routed wirelength (pins only).
    assert_eq!(r.metrics.layer_wl[0].nm(), 0);
    // dM1 per net sums to the aggregate.
    let dm1: usize = r.nets.iter().map(|n| n.dm1).sum();
    assert_eq!(dm1, r.metrics.num_dm1);
    // Every dM1 implies at least one M1 segment (or a stacked-via pair
    // for degenerate same-track OpenM1 overlaps, not possible here).
    for n in &r.nets {
        if n.dm1 > 0 {
            assert!(n.segments.iter().any(|s| s.layer == vm1_tech::Layer::M1));
        }
    }
}

#[test]
fn gamma_limits_dm1_span() {
    // Pins 4 rows apart must NOT get a dM1 with γ = 3.
    use vm1_geom::{Dbu, Orient, Point};
    use vm1_tech::PinDir;
    let lib = Library::synthetic_7nm(CellArch::ClosedM1);
    let mut d = Design::new("gamma", lib, 6, 30);
    let inv = d.library().cell_index("INV_X1").unwrap();
    let lo = d.add_inst("lo", inv);
    let hi = d.add_inst("hi", inv);
    d.move_inst(lo, 5, 0, Orient::North);
    d.move_inst(hi, 6, 4, Orient::North); // aligned columns, 4 rows apart
    let n = d.add_net("n");
    d.connect(lo, "ZN", n);
    d.connect(hi, "A", n);
    let p1 = d.add_port("i", Point::new(Dbu(0), Dbu(100)), PinDir::In);
    let n_in = d.add_net("n_in");
    d.connect_port(p1, n_in);
    d.connect(lo, "A", n_in);
    let p2 = d.add_port("o", Point::new(Dbu(30 * 48), Dbu(2000)), PinDir::Out);
    let n_out = d.add_net("n_out");
    d.connect(hi, "ZN", n_out);
    d.connect_port(p2, n_out);

    let r = route(&d, &RouterConfig::default());
    assert_eq!(r.net(vm1_netlist::NetId(0)).dm1, 0, "beyond γ rows");

    // Move within γ: 3 rows apart works.
    let mut d2 = d.clone();
    d2.move_inst(hi, 6, 3, Orient::North);
    let r2 = route(&d2, &RouterConfig::default());
    assert_eq!(r2.net(vm1_netlist::NetId(0)).dm1, 1, "within γ rows");
}
