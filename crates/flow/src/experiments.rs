//! Drivers that regenerate every table and figure of the paper's §5.
//!
//! Each driver takes an [`ExperimentScale`]: `Smoke` for tests, `Reduced`
//! (default) for laptop-scale runs that preserve the paper's qualitative
//! shapes, and `Full` for the largest configuration (still below the
//! paper's absolute design sizes; see DESIGN.md §5).

use crate::{build_testcase, measure, optimize_and_measure, ExperimentRow, FlowConfig};
use vm1_core::{ParamSet, Vm1Config};
use vm1_netlist::generator::DesignProfile;
use vm1_obs::timer::Stopwatch;
use vm1_tech::CellArch;

/// Effort level of an experiment run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Tiny designs / short sweeps, for tests.
    Smoke,
    /// Default: minutes on a laptop, same qualitative curves.
    Reduced,
    /// Largest bundled configuration.
    Full,
}

impl ExperimentScale {
    fn design_scale(self) -> f64 {
        match self {
            ExperimentScale::Smoke => 0.015,
            ExperimentScale::Reduced => 0.04,
            ExperimentScale::Full => 0.1,
        }
    }
}

// ---------------------------------------------------------------------------
// ExptA-1 — Figure 5
// ---------------------------------------------------------------------------

/// One point of the Figure 5 sweep.
#[derive(Clone, Copy, Debug)]
pub struct A1Row {
    /// Window size (µm, square).
    pub bw_um: f64,
    /// Max x displacement (sites).
    pub lx: i64,
    /// Max y displacement (rows).
    pub ly: i64,
    /// Routed wirelength after one DistOpt pair + re-route (µm).
    pub rwl_um: f64,
    /// Optimizer runtime (ms).
    pub runtime_ms: u64,
}

/// ExptA-1: scalability sweep over window size and perturbation range on
/// the aes-like ClosedM1 design, one `DistOpt` pair per point (Figure 5).
#[must_use]
pub fn expt_a1(scale: ExperimentScale) -> Vec<A1Row> {
    let windows: &[f64] = match scale {
        ExperimentScale::Smoke => &[2.0, 4.0],
        ExperimentScale::Reduced => &[1.5, 2.0, 3.0, 5.0, 8.0],
        ExperimentScale::Full => &[2.0, 3.0, 5.0, 10.0, 16.0],
    };
    let ranges: &[(i64, i64)] = match scale {
        ExperimentScale::Smoke => &[(3, 1)],
        _ => &[(2, 0), (2, 1), (3, 1), (4, 1), (5, 1)],
    };
    let base =
        FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1).with_scale(scale.design_scale());
    let mut rows = Vec::new();
    for &bw in windows {
        for &(lx, ly) in ranges {
            let mut tc = build_testcase(&base);
            let mut cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(bw, lx, ly)]);
            // One iteration of Algorithm 1 = one DistOpt pair.
            cfg.max_inner_iters = 1;
            let row = optimize_and_measure(&mut tc, &cfg);
            rows.push(A1Row {
                bw_um: bw,
                lx,
                ly,
                rwl_um: row.fin.rwl.to_um(),
                runtime_ms: row.runtime_ms,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// ExptA-2 — Figure 6
// ---------------------------------------------------------------------------

/// One point of the Figure 6 α sweep.
#[derive(Clone, Copy, Debug)]
pub struct A2Row {
    /// α value.
    pub alpha: f64,
    /// Routed wirelength after optimization (µm).
    pub rwl_um: f64,
    /// #dM1 after optimization.
    pub dm1: usize,
    /// Alignable pairs in the optimized placement.
    pub alignments: usize,
}

/// ExptA-2: sensitivity of RWL and #dM1 to α (Figure 6).
#[must_use]
pub fn expt_a2(scale: ExperimentScale, arch: CellArch) -> Vec<A2Row> {
    let alphas: &[f64] = match scale {
        ExperimentScale::Smoke => &[0.0, 1200.0],
        _ => &[0.0, 150.0, 300.0, 600.0, 1200.0, 2400.0, 6000.0],
    };
    let base = FlowConfig::new(DesignProfile::Aes, arch).with_scale(scale.design_scale());
    let mut rows = Vec::new();
    for &alpha in alphas {
        let mut tc = build_testcase(&base);
        let cfg = arch_config(arch)
            .with_alpha(alpha)
            .with_sequence(vec![ParamSet::new(3.0, 4, 1)]);
        let row = optimize_and_measure(&mut tc, &cfg);
        rows.push(A2Row {
            alpha,
            rwl_um: row.fin.rwl.to_um(),
            dm1: row.fin.dm1,
            alignments: row.fin.alignments,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// ExptA-3 — Figure 7
// ---------------------------------------------------------------------------

/// One optimization sequence of ExptA-3.
#[derive(Clone, Debug)]
pub struct A3Row {
    /// Sequence number (1–5, as in the paper).
    pub id: usize,
    /// Human-readable sequence description.
    pub label: String,
    /// Routed wirelength after the full sequence (µm).
    pub rwl_um: f64,
    /// Total runtime (ms).
    pub runtime_ms: u64,
}

/// The paper's five optimization sequences, window sizes scaled 4× down
/// with the designs (20 µm → 5 µm, 10 µm → 2.5 µm).
#[must_use]
pub fn paper_sequences() -> Vec<(usize, String, Vec<ParamSet>)> {
    let seqs: Vec<Vec<(f64, i64, i64)>> = vec![
        vec![(5.0, 4, 1)],
        vec![(2.5, 3, 1), (2.5, 4, 0), (5.0, 4, 0)],
        vec![(2.5, 3, 1), (5.0, 3, 1), (5.0, 3, 0)],
        vec![(2.5, 3, 1), (5.0, 3, 0)],
        vec![(2.5, 3, 1), (2.5, 3, 0), (5.0, 3, 1), (5.0, 3, 0)],
    ];
    seqs.into_iter()
        .enumerate()
        .map(|(i, seq)| {
            let label = seq
                .iter()
                .map(|(b, lx, ly)| format!("({b}, {lx}, {ly})"))
                .collect::<Vec<_>>()
                .join(" -> ");
            (
                i + 1,
                label,
                seq.into_iter()
                    .map(|(b, lx, ly)| ParamSet::new(b, lx, ly))
                    .collect(),
            )
        })
        .collect()
}

/// ExptA-3: quality/runtime of the five optimization sequences (Figure 7).
#[must_use]
pub fn expt_a3(scale: ExperimentScale) -> Vec<A3Row> {
    let base =
        FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1).with_scale(scale.design_scale());
    let sequences = match scale {
        ExperimentScale::Smoke => paper_sequences().into_iter().take(2).collect::<Vec<_>>(),
        _ => paper_sequences(),
    };
    let mut rows = Vec::new();
    for (id, label, seq) in sequences {
        let mut tc = build_testcase(&base);
        let cfg = Vm1Config::closedm1().with_sequence(seq);
        let start = Stopwatch::start();
        let row = optimize_and_measure(&mut tc, &cfg);
        let _ = start;
        rows.push(A3Row {
            id,
            label,
            rwl_um: row.fin.rwl.to_um(),
            runtime_ms: row.runtime_ms,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// ExptB — Table 2
// ---------------------------------------------------------------------------

/// ExptB: the Table 2 rows for one architecture (α = 1200 for ClosedM1,
/// 1000 for OpenM1, as selected in ExptA-2).
#[must_use]
pub fn expt_b(scale: ExperimentScale, arch: CellArch) -> Vec<ExperimentRow> {
    let profiles = match scale {
        ExperimentScale::Smoke => vec![DesignProfile::M0],
        _ => DesignProfile::ALL.to_vec(),
    };
    let mut rows = Vec::new();
    for profile in profiles {
        let fc = FlowConfig::new(profile, arch).with_scale(scale.design_scale());
        let mut tc = build_testcase(&fc);
        let cfg = arch_config(arch);
        rows.push(optimize_and_measure(&mut tc, &cfg));
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 8 — DRVs vs utilization
// ---------------------------------------------------------------------------

/// One utilization point of Figure 8.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Row {
    /// Core utilization.
    pub util: f64,
    /// DRVs before optimization.
    pub drvs_orig: usize,
    /// DRVs after optimization.
    pub drvs_opt: usize,
    /// #dM1 after optimization.
    pub dm1_opt: usize,
}

/// ExptB-1 congestion study: raise the aes-like design's utilization to
/// induce hotspots and compare DRVs before/after optimization (Figure 8).
#[must_use]
pub fn expt_fig8(scale: ExperimentScale) -> Vec<Fig8Row> {
    let utils: &[f64] = match scale {
        ExperimentScale::Smoke => &[0.82],
        _ => &[0.80, 0.81, 0.82, 0.83, 0.84],
    };
    let mut rows = Vec::new();
    for &util in utils {
        let fc = FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1)
            .with_scale(scale.design_scale())
            .with_utilization(util);
        let mut tc = build_testcase(&fc);
        let cfg = Vm1Config::closedm1();
        let (init, _) = measure(&tc, &cfg);
        let _ = vm1_core::Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
        let (fin, _) = measure(&tc, &cfg);
        rows.push(Fig8Row {
            util,
            drvs_orig: init.drvs,
            drvs_opt: fin.drvs,
            dm1_opt: fin.dm1,
        });
    }
    rows
}

fn arch_config(arch: CellArch) -> Vm1Config {
    match arch {
        CellArch::OpenM1 => Vm1Config::openm1(),
        _ => Vm1Config::closedm1(),
    }
}

// ---------------------------------------------------------------------------
// Ablation: placer-awareness × router-awareness
// ---------------------------------------------------------------------------

/// One cell of the 2×2 ablation matrix.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Whether the vertical-M1-aware placer ran.
    pub placer_aware: bool,
    /// Whether the router exploits dM1 at all.
    pub router_aware: bool,
    /// #dM1 in the final routing.
    pub dm1: usize,
    /// Routed wirelength (µm).
    pub rwl_um: f64,
    /// V12 count.
    pub via12: usize,
}

/// Ablation of the paper's §1.1 premise: "both the detailed placer and
/// the router must comprehend vertical alignment in order to maximally
/// exploit direct vertical M1 routing". Runs the 2×2 matrix
/// {optimizer on/off} × {dM1-aware routing on/off} on the aes-like
/// ClosedM1 design.
#[must_use]
pub fn expt_ablation(scale: ExperimentScale) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for placer_aware in [false, true] {
        for router_aware in [false, true] {
            let mut fc = FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1)
                .with_scale(scale.design_scale());
            fc.router.enable_dm1 = router_aware;
            let mut tc = build_testcase(&fc);
            let cfg = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 4, 1)]);
            if placer_aware {
                let _ = vm1_core::Vm1Optimizer::new(cfg.clone()).run(&mut tc.design);
            }
            let (snap, _) = measure(&tc, &cfg);
            rows.push(AblationRow {
                placer_aware,
                router_aware,
                dm1: snap.dm1,
                rwl_um: snap.rwl.to_um(),
                via12: snap.via12,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Timing-driven extension (paper future work ii)
// ---------------------------------------------------------------------------

/// Comparison row of the timing-criticality-weighted objective.
#[derive(Clone, Copy, Debug)]
pub struct TimingDrivenRow {
    /// Criticality boost used (0 = the paper's uniform β).
    pub boost: f64,
    /// Final worst negative slack (ns, paper convention).
    pub wns_ns: f64,
    /// Final #dM1.
    pub dm1: usize,
    /// Final routed wirelength (µm).
    pub rwl_um: f64,
}

/// Runs the optimizer with uniform β versus timing-criticality-weighted
/// β_n (the paper's future-work extension) at a clock tightened below the
/// initial critical path, and reports the resulting WNS.
#[must_use]
pub fn expt_timing_driven(scale: ExperimentScale) -> Vec<TimingDrivenRow> {
    let boosts: &[f64] = match scale {
        ExperimentScale::Smoke => &[0.0, 4.0],
        _ => &[0.0, 2.0, 4.0, 8.0],
    };
    let fc =
        FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1).with_scale(scale.design_scale());
    let mut rows = Vec::new();
    for &boost in boosts {
        let mut tc = build_testcase(&fc);
        // Tighten the clock so slack becomes scarce and the weighting
        // matters.
        tc.clock_ps *= 0.97;
        let base = Vm1Config::closedm1().with_sequence(vec![ParamSet::new(3.0, 4, 1)]);
        let cfg = if boost > 0.0 {
            crate::with_timing_driven_weights(&tc, base, boost)
        } else {
            base
        };
        let row = optimize_and_measure(&mut tc, &cfg);
        rows.push(TimingDrivenRow {
            boost,
            wns_ns: row.fin.wns_ns,
            dm1: row.fin.dm1,
            rwl_um: row.fin.rwl.to_um(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequences_match_section_5_2() {
        let seqs = paper_sequences();
        assert_eq!(seqs.len(), 5);
        // Sequence 1 is the preferred (20, 4, 1), scaled to (5, 4, 1).
        assert_eq!(seqs[0].2, vec![ParamSet::new(5.0, 4, 1)]);
        // Sequence 5 has four stages.
        assert_eq!(seqs[4].2.len(), 4);
        assert!(seqs[1].1.contains("->"));
    }

    #[test]
    fn smoke_a2_alpha_zero_vs_paper_alpha() {
        let rows = expt_a2(ExperimentScale::Smoke, CellArch::ClosedM1);
        assert_eq!(rows.len(), 2);
        // More α ⇒ at least as many alignments.
        assert!(rows[1].alignments >= rows[0].alignments);
    }
}
