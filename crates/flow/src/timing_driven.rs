//! Timing-criticality-weighted optimization — the paper's future-work
//! item (ii): "extension of our placement objective function to consider
//! other design criteria, including timing criticality".
//!
//! Nets with little slack get a larger β_n, so the MILP trades alignment
//! bonuses against *weighted* wirelength and avoids stretching critical
//! nets to create alignments on non-critical ones.

use crate::Testcase;
use vm1_core::Vm1Config;
use vm1_route::route;
use vm1_timing::net_slacks;

/// Computes per-net weight multipliers from STA slacks:
/// `w_n = 1 + boost · criticality_n` with
/// `criticality = clamp(1 − slack / clock, 0, 1)`.
///
/// Nets with no timing endpoint (clock, dangling) get weight 1.
///
/// # Panics
///
/// Panics on a cyclic netlist (cannot happen for generated designs).
#[must_use]
pub fn net_criticality_weights(tc: &Testcase, boost: f64) -> Vec<f64> {
    let r = route(&tc.design, &tc.router);
    let slacks = net_slacks(&tc.design, Some(&r), tc.clock_ps).expect("acyclic netlist"); // lint: allow(documented `# Panics` contract)
    slacks
        .iter()
        .map(|&s| {
            if !s.is_finite() {
                1.0
            } else {
                let crit = (1.0 - s / tc.clock_ps).clamp(0.0, 1.0);
                1.0 + boost * crit
            }
        })
        .collect()
}

/// Installs criticality weights computed from the testcase's current state
/// into an optimizer config.
#[must_use]
pub fn with_timing_driven_weights(tc: &Testcase, cfg: Vm1Config, boost: f64) -> Vm1Config {
    cfg.with_net_weights(net_criticality_weights(tc, boost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_testcase, FlowConfig};
    use vm1_netlist::generator::DesignProfile;
    use vm1_tech::CellArch;

    fn tc() -> Testcase {
        build_testcase(
            &FlowConfig::new(DesignProfile::M0, CellArch::ClosedM1)
                .with_scale(0.015)
                .with_seed(9),
        )
    }

    #[test]
    fn weights_are_bounded_and_cover_all_nets() {
        let tc = tc();
        let w = net_criticality_weights(&tc, 3.0);
        assert_eq!(w.len(), tc.design.num_nets());
        for &x in &w {
            assert!((1.0..=4.0).contains(&x), "weight {x}");
        }
    }

    #[test]
    fn critical_nets_get_larger_weights() {
        let tc = tc();
        let w = net_criticality_weights(&tc, 3.0);
        let max = w.iter().copied().fold(0.0, f64::max);
        let min = w.iter().copied().fold(f64::INFINITY, f64::min);
        // The calibrated clock leaves ~0 slack on the critical path and
        // plenty elsewhere, so the weights must spread.
        assert!(max > min + 0.5, "weights must differentiate: {min}..{max}");
    }

    #[test]
    fn zero_boost_gives_uniform_weights() {
        let tc = tc();
        let w = net_criticality_weights(&tc, 0.0);
        assert!(w.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn config_installation() {
        let tc = tc();
        let cfg = with_timing_driven_weights(&tc, Vm1Config::closedm1(), 2.0);
        assert!(cfg.net_weights.is_some());
        let (id, _) = tc.design.nets().next().unwrap();
        assert!(cfg.net_weight(id) >= 1.0);
    }
}
