//! Opt-in audit mode for the experiment flows.
//!
//! The experiment binaries accept `--audit` (parsed by `vm1-bench`); when
//! enabled, every measurement and every optimizer run inside this crate
//! passes the design through the [`vm1_core::audit_design`] placement
//! verifier (overlap, site/row alignment, fixed-cell and dM1-recount
//! checks). A violation aborts the experiment immediately instead of
//! silently producing tables from a corrupt placement.
//!
//! The flag is a process-wide switch rather than a parameter threaded
//! through every experiment function: the experiment drivers construct
//! testcases internally, and audit mode deliberately observes *all* of
//! them without changing any experiment signature.

use std::sync::atomic::{AtomicBool, Ordering};
use vm1_core::{audit_design, Vm1Config};
use vm1_netlist::Design;

static AUDIT_MODE: AtomicBool = AtomicBool::new(false);

/// Enables or disables audit mode for all subsequent flow calls in this
/// process.
pub fn set_audit_mode(on: bool) {
    AUDIT_MODE.store(on, Ordering::Relaxed);
}

/// Whether audit mode is currently enabled.
#[must_use]
pub fn audit_mode() -> bool {
    AUDIT_MODE.load(Ordering::Relaxed)
}

/// Audits `design` if audit mode is on; aborts the process with a
/// diagnostic on any violation.
///
/// # Panics
///
/// Panics when audit mode is enabled and the design fails the placement
/// or dM1-recount invariants — that is the point of the mode.
pub(crate) fn audit_checkpoint(design: &Design, cfg: &Vm1Config, stage: &str) {
    if !audit_mode() {
        return;
    }
    let report = audit_design(design, cfg);
    assert!(
        report.is_clean(),
        "audit failed at `{stage}` on design `{}`: {}",
        design.name(),
        report.summary()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_mode_toggles() {
        assert!(!audit_mode());
        set_audit_mode(true);
        assert!(audit_mode());
        set_audit_mode(false);
        assert!(!audit_mode());
    }
}
