//! ASCII visualization of placements and vertical M1 alignments.
//!
//! Renders the core as one text row per placement row (top row printed
//! first, like a layout viewer): `.` free site, `#` occupied site, `|`
//! an M1 track column used by an alignable pin pair (a potential dM1).
//! Wide designs are column-compressed to `max_width` characters.

use vm1_core::{alignable_pairs, Vm1Config};
use vm1_netlist::Design;

/// Renders the design as ASCII art, at most `max_width` characters wide.
///
/// # Panics
///
/// Panics if `max_width < 8`.
#[must_use]
pub fn render_placement(design: &Design, cfg: &Vm1Config, max_width: usize) -> String {
    assert!(max_width >= 8, "max_width too small");
    let sites = design.sites_per_row as usize;
    let rows = design.num_rows as usize;
    let scale = sites.div_ceil(max_width).max(1);
    let width = sites.div_ceil(scale);

    // Occupancy per (row, site).
    let mut occ = vec![vec![false; sites]; rows];
    for (_, inst) in design.insts() {
        let w = design.library().cell(inst.cell).width_sites;
        if inst.row < 0 || inst.row as usize >= rows {
            continue;
        }
        for s in inst.site..(inst.site + w).min(design.sites_per_row) {
            if s >= 0 {
                occ[inst.row as usize][s as usize] = true;
            }
        }
    }

    // Columns carrying an aligned pair (ClosedM1 semantics; for OpenM1 we
    // mark the overlap mid-column).
    let tech = design.library().tech();
    let mut aligned_cols: Vec<Vec<bool>> = vec![vec![false; sites]; rows];
    for &(a, b, _) in &alignable_pairs(design, cfg).pairs {
        if let Some(_ov) = vm1_core::pair_aligned(design, cfg, a, b) {
            let pa = design.pin_position(a);
            let pb = design.pin_position(b);
            let col = tech
                .x_to_site((pa.x + pb.x) / 2)
                .clamp(0, design.sites_per_row - 1);
            let (r0, r1) = (
                tech.y_to_row(pa.y.min(pb.y)).clamp(0, design.num_rows - 1),
                tech.y_to_row(pa.y.max(pb.y)).clamp(0, design.num_rows - 1),
            );
            for r in r0..=r1 {
                aligned_cols[r as usize][col as usize] = true;
            }
        }
    }

    let mut out = String::with_capacity((width + 1) * rows);
    for r in (0..rows).rev() {
        for c0 in 0..width {
            let lo = c0 * scale;
            let hi = ((c0 + 1) * scale).min(sites);
            let any_aligned = (lo..hi).any(|s| aligned_cols[r][s]);
            let any_occ = (lo..hi).any(|s| occ[r][s]);
            out.push(if any_aligned {
                '|'
            } else if any_occ {
                '#'
            } else {
                '.'
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vm1_geom::Orient;
    use vm1_tech::{CellArch, Library};

    fn demo() -> (Design, Vm1Config) {
        let lib = Library::synthetic_7nm(CellArch::ClosedM1);
        let mut d = Design::new("t", lib, 3, 20);
        let inv = d.library().cell_index("INV_X1").unwrap();
        let a = d.add_inst("a", inv);
        let b = d.add_inst("b", inv);
        let n = d.add_net("n");
        d.connect(a, "ZN", n);
        d.connect(b, "A", n);
        d.move_inst(a, 5, 0, Orient::North);
        d.move_inst(b, 6, 1, Orient::North); // aligned
        (d, Vm1Config::closedm1())
    }

    #[test]
    fn renders_rows_and_occupancy() {
        let (d, cfg) = demo();
        let art = render_placement(&d, &cfg, 40);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), 20);
        // Top line is row 2 (empty), bottom is row 0 (cell a).
        assert!(lines[0].chars().all(|c| c == '.'));
        assert!(lines[2].contains('#'));
    }

    #[test]
    fn marks_aligned_columns() {
        let (d, cfg) = demo();
        let art = render_placement(&d, &cfg, 40);
        assert!(art.contains('|'), "aligned pair must be marked:\n{art}");
    }

    #[test]
    fn compresses_wide_designs() {
        let (d, cfg) = demo();
        let art = render_placement(&d, &cfg, 10);
        for line in art.lines() {
            assert!(line.len() <= 10);
        }
    }

    #[test]
    #[should_panic(expected = "max_width")]
    fn tiny_width_panics() {
        let (d, cfg) = demo();
        let _ = render_placement(&d, &cfg, 4);
    }
}
