//! `vm1dp` — command-line front end to the vertical-M1 detailed placement
//! flow, operating on VM1DEF files.
//!
//! ```text
//! vm1dp gen    --profile aes --arch closedm1 --scale 0.03 --seed 42 -o design.def
//! vm1dp opt    -i design.def --arch closedm1 --alpha 1200 -o optimized.def \
//!              --solver dfs --metrics-out metrics.json --audit
//! vm1dp report -i optimized.def --arch closedm1
//! vm1dp audit  -i optimized.def --arch closedm1
//! vm1dp certify -i design.def --arch closedm1 -o optimized.def
//! vm1dp analyze --root . --format json --metrics-out analyze.json
//! ```
//!
//! `--metrics-out` exports the run's telemetry (solver counters, stage
//! wall times, objective trajectory); the format follows the file
//! extension (`.csv` → CSV, anything else → JSON).
//!
//! `audit` (or `--audit` on `gen`/`opt`, applied to the result) runs the
//! static audit layer — placement invariants, the independent dM1
//! recount, and the MILP model lint on sampled windows — and exits with
//! a structured code:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | audit clean                               |
//! | 1    | I/O or runtime error                      |
//! | 2    | usage error                               |
//! | 3    | placement invariant violation             |
//! | 4    | dM1 recount disagrees with the objective  |
//! | 5    | MILP model lint error                     |
//! | 6    | solve certificate rejected by the checker |
//! | 7    | static-analysis findings (`analyze`)      |
//!
//! When several classes fail, the smallest failing code wins.
//!
//! `analyze` runs the `vm1-analyze` determinism & concurrency lints over
//! the workspace sources under `--root` (default `.`), prints the
//! findings as text or JSON (`--format json`), records the
//! `analyze_findings` / `analyze_waived` counters into `--metrics-out`,
//! and exits 7 when any unwaived finding remains.
//!
//! `certify` runs the optimization with the MILP engine in
//! proof-carrying mode: every window solve records a branch-and-bound
//! certificate that the independent exact-arithmetic checker
//! (`vm1-certify`) replays before the assignment is committed. `opt
//! --audit --solver milp` certifies the same way as part of the audit.

use std::process::exit;
use std::sync::Arc;
use vm1_core::problem::{Overrides, WindowProblem};
use vm1_core::window::WindowGrid;
use vm1_core::{SchedPolicy, SolverKind, Vm1Config, Vm1Optimizer};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::io::{read_def, write_def};
use vm1_netlist::Design;
use vm1_obs::{Counter, MetricsHandle, Telemetry};
use vm1_place::{greedy_refine, place, PlaceConfig, RowMap};
use vm1_route::{route, RouterConfig};
use vm1_tech::{CellArch, Library};
use vm1_timing::{analyze, min_clock_period, power};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing subcommand")
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "opt" => cmd_opt(&opts),
        "report" => cmd_report(&opts),
        "audit" => cmd_audit(&opts),
        "certify" => cmd_certify(&opts),
        "analyze" => cmd_analyze(&opts),
        "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

struct Opts {
    profile: DesignProfile,
    arch: CellArch,
    scale: f64,
    seed: u64,
    alpha: f64,
    solver: Option<SolverKind>,
    threads: Option<usize>,
    sched: Option<SchedPolicy>,
    input: Option<String>,
    output: Option<String>,
    metrics_out: Option<String>,
    audit: bool,
    root: Option<String>,
    format_json: bool,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            profile: DesignProfile::Aes,
            arch: CellArch::ClosedM1,
            scale: 0.03,
            seed: 42,
            alpha: f64::NAN,
            solver: None,
            threads: None,
            sched: None,
            input: None,
            output: None,
            metrics_out: None,
            audit: false,
            root: None,
            format_json: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                    .clone()
            };
            match a.as_str() {
                "--profile" => {
                    o.profile = match val("--profile").as_str() {
                        "m0" => DesignProfile::M0,
                        "aes" => DesignProfile::Aes,
                        "jpeg" => DesignProfile::Jpeg,
                        "vga" => DesignProfile::Vga,
                        other => usage(&format!("unknown profile {other}")),
                    }
                }
                "--arch" => {
                    o.arch = match val("--arch").as_str() {
                        "closedm1" => CellArch::ClosedM1,
                        "openm1" => CellArch::OpenM1,
                        "conv12t" => CellArch::Conv12T,
                        other => usage(&format!("unknown arch {other}")),
                    }
                }
                "--scale" => {
                    o.scale = val("--scale")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --scale"));
                }
                "--seed" => {
                    o.seed = val("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed"));
                }
                "--alpha" => {
                    o.alpha = val("--alpha")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --alpha"));
                }
                "--solver" => {
                    o.solver = Some(match val("--solver").as_str() {
                        "dfs" => SolverKind::Dfs,
                        "milp" => SolverKind::Milp,
                        "greedy" => SolverKind::Greedy,
                        other => usage(&format!("unknown solver {other}")),
                    });
                }
                "--threads" => {
                    let t: usize = val("--threads")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --threads"));
                    if t == 0 {
                        usage("--threads must be positive");
                    }
                    o.threads = Some(t);
                }
                "--sched" => {
                    o.sched = Some(match val("--sched").as_str() {
                        "worksteal" => SchedPolicy::WorkSteal,
                        "staticchunk" => SchedPolicy::StaticChunk,
                        other => usage(&format!("unknown sched policy {other}")),
                    });
                }
                "-i" | "--input" => o.input = Some(val("-i")),
                "-o" | "--output" => o.output = Some(val("-o")),
                "--metrics-out" => o.metrics_out = Some(val("--metrics-out")),
                "--audit" => o.audit = true,
                "--root" => o.root = Some(val("--root")),
                "--format" => {
                    o.format_json = match val("--format").as_str() {
                        "json" => true,
                        "text" => false,
                        other => usage(&format!("unknown format {other}")),
                    }
                }
                other => usage(&format!("unknown option {other}")),
            }
        }
        o
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: vm1dp <gen|opt|report|audit|certify|analyze> [--profile m0|aes|jpeg|vga] [--arch closedm1|openm1|conv12t]\n\
         \x20            [--scale F] [--seed N] [--alpha F] [--solver dfs|milp|greedy]\n\
         \x20            [--threads N] [--sched worksteal|staticchunk]\n\
         \x20            [-i FILE] [-o FILE] [--metrics-out FILE(.json|.csv)] [--audit]\n\
         \x20            [--root DIR] [--format text|json]\n\
         \n\
         --threads sets the optimizer's persistent worker pool size and\n\
         --sched its window scheduling policy; results are bit-identical\n\
         for every combination (only wall-clock and the scheduler gauges\n\
         in --metrics-out change).\n\
         \n\
         certify optimizes with the MILP engine in proof-carrying mode: every\n\
         window solve is replayed by the exact-arithmetic certificate checker.\n\
         \n\
         analyze runs the vm1-analyze determinism & concurrency lints over\n\
         the workspace sources under --root (default `.`).\n\
         \n\
         audit/certify/analyze exit codes (smallest failing class wins):\n\
         \x20  0 clean   1 I/O error   2 usage   3 placement violation\n\
         \x20  4 dM1 recount mismatch   5 MILP model lint error\n\
         \x20  6 solve certificate rejected   7 static-analysis findings"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn library(arch: CellArch) -> Library {
    Library::synthetic_7nm(arch)
}

fn load(opts: &Opts) -> Design {
    let path = opts
        .input
        .as_deref()
        .unwrap_or_else(|| usage("-i required"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(1);
    });
    read_def(&text, &library(opts.arch)).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        exit(1);
    })
}

fn save(design: &Design, opts: &Opts) {
    let path = opts
        .output
        .as_deref()
        .unwrap_or_else(|| usage("-o required"));
    std::fs::write(path, write_def(design)).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        exit(1);
    });
    println!("wrote {path}");
}

/// Applies the `--threads` / `--sched` pool options to a config.
fn apply_parallel(mut cfg: Vm1Config, opts: &Opts) -> Vm1Config {
    if let Some(t) = opts.threads {
        cfg = cfg.with_threads(t);
    }
    if let Some(s) = opts.sched {
        cfg = cfg.with_sched(s);
    }
    cfg
}

fn audit_config(opts: &Opts) -> Vm1Config {
    let mut cfg = match opts.arch {
        CellArch::OpenM1 => Vm1Config::openm1(),
        _ => Vm1Config::closedm1(),
    };
    if !opts.alpha.is_nan() {
        cfg = cfg.with_alpha(opts.alpha);
    }
    cfg
}

/// Runs the full static audit on `design` and returns the process exit
/// code: 0 clean, 3 placement invariant violation, 4 dM1 recount
/// mismatch, 5 MILP model lint error (smallest failing class wins).
/// Findings are printed and recorded through `metrics`.
fn run_audit(design: &Design, opts: &Opts, metrics: &MetricsHandle) -> i32 {
    let cfg = audit_config(opts);
    let report = vm1_core::audit_design_with(design, &cfg, metrics);
    println!(
        "audit placement : {} checks, {} violations",
        report.placement.checks(),
        report.placement.violations().len()
    );
    println!(
        "audit dM1       : recount {} vs objective {} ({})",
        report.recounted_dm1,
        report.reported_dm1,
        if report.dm1_consistent() {
            "consistent"
        } else {
            "MISMATCH"
        }
    );
    if !report.is_clean() {
        print!("{}", report.summary());
    }

    // Model lint over a sample of window MILPs: the first parameter
    // set's window geometry on the unshifted grid, up to 8 windows with
    // at least two movable cells each.
    let mut lint_errors = 0usize;
    let mut lint_warnings = 0usize;
    let mut sampled = 0usize;
    if let Some(u) = cfg.sequence.first() {
        let tech = design.library().tech();
        let site = tech.site_width.nm() as f64;
        let row = tech.row_height.nm() as f64;
        let bw_sites = ((u.bw_um * 1000.0 / site).round() as i64).max(4);
        let bh_rows = ((u.bh_um * 1000.0 / row).round() as i64).max(1);
        let rowmap = RowMap::build(design);
        let overrides = Overrides::new();
        let grid = WindowGrid::partition(design, 0, 0, bw_sites, bh_rows);
        for win in &grid.windows {
            if sampled >= 8 {
                break;
            }
            let mut movable = WindowProblem::movable_in_window(design, &rowmap, win, &overrides);
            if movable.len() < 2 {
                continue;
            }
            // Mirror the solver's batching: lint the model of the first
            // batch, with the rest contributing fixed occupancy.
            movable.truncate(cfg.max_cells_per_milp);
            let prob = WindowProblem::build(
                design, &rowmap, *win, &movable, u.lx, u.ly, false, &cfg, &overrides,
            );
            let (model, _) = vm1_core::milp::build_milp(&prob);
            let lint = vm1_milp::audit::audit_with(&model, metrics);
            lint_errors += lint.count(vm1_milp::AuditSeverity::Error);
            lint_warnings += lint.count(vm1_milp::AuditSeverity::Warning);
            for f in lint
                .findings()
                .iter()
                .filter(|f| f.kind.severity() == vm1_milp::AuditSeverity::Error)
            {
                println!("{f}");
            }
            sampled += 1;
        }
    }
    println!(
        "audit model lint: {sampled} window models sampled, {lint_errors} errors, {lint_warnings} warnings"
    );

    if !report.placement.is_clean() {
        3
    } else if !report.dm1_consistent() {
        4
    } else if lint_errors > 0 {
        5
    } else {
        println!("audit clean");
        0
    }
}

fn write_metrics_out(report: &vm1_obs::MetricsReport, opts: &Opts) {
    if let Some(path) = &opts.metrics_out {
        let payload = if path.ends_with(".csv") {
            report.to_csv()
        } else {
            report.to_json()
        };
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        });
        println!("wrote {path}");
    }
}

fn cmd_gen(opts: &Opts) {
    let lib = library(opts.arch);
    let mut design = GeneratorConfig::profile(opts.profile)
        .with_scale(opts.scale)
        .generate(&lib, opts.seed);
    place(&mut design, &PlaceConfig::default(), opts.seed);
    let _refine = greedy_refine(&mut design, 3, 2);
    design.validate_placement().expect("legal placement");
    println!(
        "generated {}: {} instances, {} nets, {} rows x {} sites",
        design.name(),
        design.num_insts(),
        design.num_nets(),
        design.num_rows,
        design.sites_per_row
    );
    save(&design, opts);
    if opts.audit {
        let code = run_audit(&design, opts, &MetricsHandle::disabled());
        if code != 0 {
            exit(code);
        }
    }
}

fn cmd_audit(opts: &Opts) {
    let design = load(opts);
    let sink = Arc::new(Telemetry::new());
    let metrics = MetricsHandle::of(sink.clone());
    let code = run_audit(&design, opts, &metrics);
    write_metrics_out(&sink.report(), opts);
    exit(code);
}

/// Prints the proof-carrying-solve counters and returns the structured
/// exit code for them: 0 when every recorded certificate verified, 6
/// when the exact-arithmetic checker rejected at least one.
fn cert_code(report: &vm1_obs::MetricsReport) -> i32 {
    let recorded = report.counter(Counter::CertRecorded);
    let verified = report.counter(Counter::CertVerified);
    let rejected = report.counter(Counter::CertRejected);
    if recorded > 0 {
        println!(
            "certify: {recorded} certificates recorded, {verified} verified, {rejected} REJECTED"
        );
    }
    if rejected > 0 {
        6
    } else {
        0
    }
}

fn cmd_opt(opts: &Opts) {
    let mut design = load(opts);
    let mut cfg = match opts.arch {
        CellArch::OpenM1 => Vm1Config::openm1(),
        _ => Vm1Config::closedm1(),
    };
    if !opts.alpha.is_nan() {
        cfg = cfg.with_alpha(opts.alpha);
    }
    if let Some(kind) = opts.solver {
        cfg = cfg.with_solver(kind);
    }
    cfg = apply_parallel(cfg, opts);
    // Under --audit, MILP window solves run in proof-carrying mode: each
    // one is certified by vm1-certify before the assignment commits.
    cfg = cfg.with_certify(opts.audit);
    let sink = Arc::new(Telemetry::new());
    let stats = Vm1Optimizer::new(cfg)
        .with_metrics(sink.clone())
        .run(&mut design);
    println!(
        "objective {:.0} -> {:.0}; alignments {} -> {}; HPWL {} -> {} nm; {} cells changed in {} ms",
        stats.initial_obj,
        stats.final_obj,
        stats.initial_alignments,
        stats.final_alignments,
        stats.initial_hpwl,
        stats.final_hpwl,
        stats.cells_changed,
        stats.runtime_ms
    );
    let audit_code = if opts.audit {
        run_audit(&design, opts, &MetricsHandle::of(sink.clone()))
    } else {
        0
    };
    let report = sink.report();
    let cert = cert_code(&report);
    print!("{}", vm1_flow::format_metrics_summary(&report));
    write_metrics_out(&report, opts);
    save(&design, opts);
    if audit_code != 0 {
        exit(audit_code);
    }
    if cert != 0 {
        exit(cert);
    }
}

/// `vm1dp certify`: optimize with the MILP engine in proof-carrying
/// mode. Every window solve records a branch-and-bound certificate that
/// the independent exact-arithmetic checker replays; the assignment only
/// commits if the certificate is accepted. Exits 6 if any certificate
/// is rejected. `-o` is optional — without it the command is a pure
/// verification run.
fn cmd_certify(opts: &Opts) {
    if matches!(opts.solver, Some(k) if k != SolverKind::Milp) {
        usage("certify requires the milp solver");
    }
    let mut design = load(opts);
    let mut cfg = match opts.arch {
        CellArch::OpenM1 => Vm1Config::openm1(),
        _ => Vm1Config::closedm1(),
    };
    if !opts.alpha.is_nan() {
        cfg = cfg.with_alpha(opts.alpha);
    }
    cfg = apply_parallel(cfg, opts)
        .with_solver(SolverKind::Milp)
        .with_certify(true);
    let sink = Arc::new(Telemetry::new());
    let stats = Vm1Optimizer::new(cfg)
        .with_metrics(sink.clone())
        .run(&mut design);
    println!(
        "objective {:.0} -> {:.0}; alignments {} -> {}; {} cells changed in {} ms",
        stats.initial_obj,
        stats.final_obj,
        stats.initial_alignments,
        stats.final_alignments,
        stats.cells_changed,
        stats.runtime_ms
    );
    let report = sink.report();
    let cert = cert_code(&report);
    if report.counter(Counter::CertRecorded) == 0 {
        println!("certify: no MILP solves were required (nothing to certify)");
    }
    write_metrics_out(&report, opts);
    if opts.output.is_some() {
        save(&design, opts);
    }
    if cert != 0 {
        exit(cert);
    }
    println!("certify clean");
}

/// `vm1dp analyze`: run the `vm1-analyze` determinism & concurrency
/// lints over the workspace sources. Findings print as text or JSON
/// (`--format json`); the `analyze_findings` / `analyze_waived` counters
/// are recorded into `--metrics-out`. Exits 7 when any unwaived finding
/// remains, 1 on I/O errors.
fn cmd_analyze(opts: &Opts) {
    let root = opts.root.as_deref().unwrap_or(".");
    let report = vm1_analyze::analyze_workspace(std::path::Path::new(root)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    if opts.format_json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    let unwaived = report.unwaived().count() as u64;
    let waived = report.waived().count() as u64;
    if opts.metrics_out.is_some() {
        let sink = Arc::new(Telemetry::new());
        let metrics = MetricsHandle::of(sink.clone());
        metrics.add(Counter::AnalyzeFindings, unwaived);
        metrics.add(Counter::AnalyzeWaived, waived);
        write_metrics_out(&sink.report(), opts);
    }
    if unwaived > 0 {
        exit(7);
    }
}

fn cmd_report(opts: &Opts) {
    let design = load(opts);
    let r = route(&design, &RouterConfig::default());
    let clock = min_clock_period(&design, Some(&r)).expect("acyclic") * 1.02;
    let t = analyze(&design, Some(&r), clock).expect("acyclic");
    let p = power(&design, Some(&r), clock);
    println!(
        "design    : {} ({} insts, {} nets)",
        design.name(),
        design.num_insts(),
        design.num_nets()
    );
    println!("HPWL      : {:.1} um", design.total_hpwl().to_um());
    println!("routed WL : {:.1} um", r.metrics.routed_wl.to_um());
    println!("M1 WL     : {:.1} um", r.metrics.m1_wl().to_um());
    println!("#dM1      : {}", r.metrics.num_dm1);
    println!("#via12    : {}", r.metrics.via12());
    println!("#DRV      : {}", r.metrics.drvs);
    println!("clock     : {clock:.1} ps (calibrated)");
    println!("WNS       : {:.3} ns", t.wns_ns_paper());
    println!("power     : {:.3} mW", p.total_mw());
}
