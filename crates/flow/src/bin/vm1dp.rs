//! `vm1dp` — command-line front end to the vertical-M1 detailed placement
//! flow, operating on VM1DEF files.
//!
//! ```text
//! vm1dp gen    --profile aes --arch closedm1 --scale 0.03 --seed 42 -o design.def
//! vm1dp opt    -i design.def --arch closedm1 --alpha 1200 -o optimized.def \
//!              --solver dfs --metrics-out metrics.json
//! vm1dp report -i optimized.def --arch closedm1
//! ```
//!
//! `--metrics-out` exports the run's telemetry (solver counters, stage
//! wall times, objective trajectory); the format follows the file
//! extension (`.csv` → CSV, anything else → JSON).

use std::process::exit;
use std::sync::Arc;
use vm1_core::{SolverKind, Vm1Config, Vm1Optimizer};
use vm1_netlist::generator::{DesignProfile, GeneratorConfig};
use vm1_netlist::io::{read_def, write_def};
use vm1_netlist::Design;
use vm1_obs::Telemetry;
use vm1_place::{greedy_refine, place, PlaceConfig};
use vm1_route::{route, RouterConfig};
use vm1_tech::{CellArch, Library};
use vm1_timing::{analyze, min_clock_period, power};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage("missing subcommand")
    };
    let opts = Opts::parse(&args[1..]);
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "opt" => cmd_opt(&opts),
        "report" => cmd_report(&opts),
        "--help" | "-h" => usage(""),
        other => usage(&format!("unknown subcommand {other}")),
    }
}

struct Opts {
    profile: DesignProfile,
    arch: CellArch,
    scale: f64,
    seed: u64,
    alpha: f64,
    solver: Option<SolverKind>,
    input: Option<String>,
    output: Option<String>,
    metrics_out: Option<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Opts {
        let mut o = Opts {
            profile: DesignProfile::Aes,
            arch: CellArch::ClosedM1,
            scale: 0.03,
            seed: 42,
            alpha: f64::NAN,
            solver: None,
            input: None,
            output: None,
            metrics_out: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut val = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
                    .clone()
            };
            match a.as_str() {
                "--profile" => {
                    o.profile = match val("--profile").as_str() {
                        "m0" => DesignProfile::M0,
                        "aes" => DesignProfile::Aes,
                        "jpeg" => DesignProfile::Jpeg,
                        "vga" => DesignProfile::Vga,
                        other => usage(&format!("unknown profile {other}")),
                    }
                }
                "--arch" => {
                    o.arch = match val("--arch").as_str() {
                        "closedm1" => CellArch::ClosedM1,
                        "openm1" => CellArch::OpenM1,
                        "conv12t" => CellArch::Conv12T,
                        other => usage(&format!("unknown arch {other}")),
                    }
                }
                "--scale" => {
                    o.scale = val("--scale")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --scale"))
                }
                "--seed" => {
                    o.seed = val("--seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --seed"))
                }
                "--alpha" => {
                    o.alpha = val("--alpha")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --alpha"))
                }
                "--solver" => {
                    o.solver = Some(match val("--solver").as_str() {
                        "dfs" => SolverKind::Dfs,
                        "milp" => SolverKind::Milp,
                        "greedy" => SolverKind::Greedy,
                        other => usage(&format!("unknown solver {other}")),
                    })
                }
                "-i" | "--input" => o.input = Some(val("-i")),
                "-o" | "--output" => o.output = Some(val("-o")),
                "--metrics-out" => o.metrics_out = Some(val("--metrics-out")),
                other => usage(&format!("unknown option {other}")),
            }
        }
        o
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: vm1dp <gen|opt|report> [--profile m0|aes|jpeg|vga] [--arch closedm1|openm1|conv12t]\n\
         \x20            [--scale F] [--seed N] [--alpha F] [--solver dfs|milp|greedy]\n\
         \x20            [-i FILE] [-o FILE] [--metrics-out FILE(.json|.csv)]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn library(arch: CellArch) -> Library {
    Library::synthetic_7nm(arch)
}

fn load(opts: &Opts) -> Design {
    let path = opts
        .input
        .as_deref()
        .unwrap_or_else(|| usage("-i required"));
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        exit(1);
    });
    read_def(&text, &library(opts.arch)).unwrap_or_else(|e| {
        eprintln!("error: cannot parse {path}: {e}");
        exit(1);
    })
}

fn save(design: &Design, opts: &Opts) {
    let path = opts
        .output
        .as_deref()
        .unwrap_or_else(|| usage("-o required"));
    std::fs::write(path, write_def(design)).unwrap_or_else(|e| {
        eprintln!("error: cannot write {path}: {e}");
        exit(1);
    });
    println!("wrote {path}");
}

fn cmd_gen(opts: &Opts) {
    let lib = library(opts.arch);
    let mut design = GeneratorConfig::profile(opts.profile)
        .with_scale(opts.scale)
        .generate(&lib, opts.seed);
    place(&mut design, &PlaceConfig::default(), opts.seed);
    greedy_refine(&mut design, 3, 2);
    design.validate_placement().expect("legal placement");
    println!(
        "generated {}: {} instances, {} nets, {} rows x {} sites",
        design.name(),
        design.num_insts(),
        design.num_nets(),
        design.num_rows,
        design.sites_per_row
    );
    save(&design, opts);
}

fn cmd_opt(opts: &Opts) {
    let mut design = load(opts);
    let mut cfg = match opts.arch {
        CellArch::OpenM1 => Vm1Config::openm1(),
        _ => Vm1Config::closedm1(),
    };
    if !opts.alpha.is_nan() {
        cfg = cfg.with_alpha(opts.alpha);
    }
    if let Some(kind) = opts.solver {
        cfg = cfg.with_solver(kind);
    }
    let sink = Arc::new(Telemetry::new());
    let stats = Vm1Optimizer::new(cfg)
        .with_metrics(sink.clone())
        .run(&mut design);
    println!(
        "objective {:.0} -> {:.0}; alignments {} -> {}; HPWL {} -> {} nm; {} cells changed in {} ms",
        stats.initial_obj,
        stats.final_obj,
        stats.initial_alignments,
        stats.final_alignments,
        stats.initial_hpwl,
        stats.final_hpwl,
        stats.cells_changed,
        stats.runtime_ms
    );
    let report = sink.report();
    print!("{}", vm1_flow::format_metrics_summary(&report));
    if let Some(path) = &opts.metrics_out {
        let payload = if path.ends_with(".csv") {
            report.to_csv()
        } else {
            report.to_json()
        };
        std::fs::write(path, payload).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        });
        println!("wrote {path}");
    }
    save(&design, opts);
}

fn cmd_report(opts: &Opts) {
    let design = load(opts);
    let r = route(&design, &RouterConfig::default());
    let clock = min_clock_period(&design, Some(&r)).expect("acyclic") * 1.02;
    let t = analyze(&design, Some(&r), clock).expect("acyclic");
    let p = power(&design, Some(&r), clock);
    println!(
        "design    : {} ({} insts, {} nets)",
        design.name(),
        design.num_insts(),
        design.num_nets()
    );
    println!("HPWL      : {:.1} um", design.total_hpwl().to_um());
    println!("routed WL : {:.1} um", r.metrics.routed_wl.to_um());
    println!("M1 WL     : {:.1} um", r.metrics.m1_wl().to_um());
    println!("#dM1      : {}", r.metrics.num_dm1);
    println!("#via12    : {}", r.metrics.via12());
    println!("#DRV      : {}", r.metrics.drvs);
    println!("clock     : {:.1} ps (calibrated)", clock);
    println!("WNS       : {:.3} ns", t.wns_ns_paper());
    println!("power     : {:.3} mW", p.total_mw());
}
