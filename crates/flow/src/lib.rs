//! End-to-end flows and experiments for the vm1dp workspace.
//!
//! Mirrors the paper's evaluation flow: synthesize a testcase (synthetic
//! netlist at one of the four design profiles), place it, route it, take
//! the **Init** measurements, run the vertical-M1 detailed-placement
//! optimization ([`vm1_core::Vm1Optimizer`]), re-route, and take the
//! **Final** measurements — the columns of Table 2. Every
//! [`optimize_and_measure`] run is instrumented end to end: its
//! [`ExperimentRow::metrics`] telemetry report can be rendered with
//! [`format_metrics_summary`] or exported as JSON/CSV.
//!
//! The [`experiments`] module regenerates every table and figure of the
//! paper's §5 (see DESIGN.md for the per-experiment index):
//!
//! | artifact | function |
//! |---|---|
//! | Figure 5 (window/perturbation sweep) | [`experiments::expt_a1`] |
//! | Figure 6 (α sensitivity) | [`experiments::expt_a2`] |
//! | Figure 7 (optimization sequences) | [`experiments::expt_a3`] |
//! | Table 2 (ClosedM1 + OpenM1 designs) | [`experiments::expt_b`] |
//! | Figure 8 (DRVs vs utilization) | [`experiments::expt_fig8`] |
//!
//! # Examples
//!
//! ```no_run
//! use vm1_flow::{build_testcase, optimize_and_measure, FlowConfig};
//! use vm1_netlist::generator::DesignProfile;
//! use vm1_tech::CellArch;
//!
//! let cfg = FlowConfig::new(DesignProfile::Aes, CellArch::ClosedM1).with_scale(0.02);
//! let mut tc = build_testcase(&cfg);
//! let row = optimize_and_measure(&mut tc, &vm1_core::Vm1Config::closedm1());
//! println!("{}", row.table_line());
//! ```

#![warn(missing_docs)]

mod audit_mode;
pub mod experiments;
mod flow;
mod report;
mod timing_driven;
pub mod viz;

pub use audit_mode::{audit_mode, set_audit_mode};
pub use flow::{build_testcase, measure, measure_with, optimize_and_measure, FlowConfig, Testcase};
pub use report::{format_metrics_summary, format_table2, ExperimentRow, Snapshot};
pub use timing_driven::{net_criticality_weights, with_timing_driven_weights};
